//! The 14 TPC-W web interactions as page handlers.
//!
//! Query shapes follow TPC-W's character: ten pages are indexed point
//! lookups or small writes (*quick*), Best Sellers / New Products /
//! Execute Search scan and aggregate large tables (*lengthy*), and
//! Admin Confirm updates the hot `item` table, taking its write lock
//! (the paper's §4.2.1 contention case).

use crate::schema::SUBJECTS;
use staged_core::{AppError, PageOutcome};
use staged_db::{DbValue, PooledConnection, QueryResult};
use staged_http::Request;
use staged_sync::atomic::{AtomicI64, Ordering};
use staged_templates::{Context, Value};
use std::collections::BTreeMap;

/// Shared mutable identifiers and scale facts the handlers need.
#[derive(Debug)]
pub(crate) struct TpcwState {
    pub items: i64,
    /// Recent-order window for Best Sellers (TPC-W's "3333 most recent
    /// orders", scaled with the database).
    pub bestseller_window: i64,
    pub next_order_id: AtomicI64,
    pub next_order_line_id: AtomicI64,
    pub next_cart_id: AtomicI64,
    pub next_cart_line_id: AtomicI64,
    pub next_customer_id: AtomicI64,
}

impl TpcwState {
    fn take(counter: &AtomicI64) -> i64 {
        counter.fetch_add(1, Ordering::Relaxed)
    }
}

type PageResult = Result<PageOutcome, AppError>;

fn map(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn author_name(fname: &DbValue, lname: &DbValue) -> Value {
    Value::from(format!("{fname} {lname}"))
}

fn value_of(v: &DbValue) -> Value {
    match v {
        DbValue::Null => Value::Null,
        DbValue::Int(i) => Value::Int(*i),
        DbValue::Float(f) => Value::Float(*f),
        DbValue::Text(s) => Value::Str(s.clone()),
    }
}

/// Builds the template item map from a `(i_id, i_title, i_cost,
/// i_thumbnail, a_fname, a_lname, …)` result row.
fn item_row(row: &[DbValue]) -> Value {
    map(vec![
        ("id", value_of(&row[0])),
        ("title", value_of(&row[1])),
        ("cost", value_of(&row[2])),
        ("thumbnail", value_of(&row[3])),
        ("author", author_name(&row[4], &row[5])),
    ])
}

fn item_rows(result: &QueryResult) -> Value {
    Value::List(result.rows.iter().map(|r| item_row(r)).collect())
}

fn subjects_value() -> Value {
    Value::List(SUBJECTS.iter().map(|s| Value::from(*s)).collect())
}

fn base_ctx(title: &str, req: &Request) -> Context {
    let mut ctx = Context::new();
    ctx.insert("title", title);
    ctx.insert("c_id", req.param_u64("c_id").unwrap_or(0));
    ctx
}

/// `GET /home?c_id=` — the TPC-W home interaction: customer greeting
/// plus five promotional items, all indexed lookups (quick).
pub(crate) fn home(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let mut ctx = base_ctx("Home", req);
    let c_id = req.param_u64("c_id").unwrap_or(0) as i64;
    if c_id > 0 {
        let r = db.execute(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
            &[DbValue::Int(c_id)],
        )?;
        if let Some(row) = r.first() {
            ctx.insert(
                "customer",
                map(vec![
                    ("fname", value_of(&row[0])),
                    ("lname", value_of(&row[1])),
                ]),
            );
        }
    }
    let mut promos = Vec::with_capacity(5);
    for k in 0..5i64 {
        let i_id = (c_id * 17 + k * 31).rem_euclid(state.items) + 1;
        let r = db.execute(
            "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
             FROM item i JOIN author a ON i.i_a_id = a.a_id WHERE i.i_id = ?",
            &[DbValue::Int(i_id)],
        )?;
        if let Some(row) = r.first() {
            promos.push(item_row(row));
        }
    }
    ctx.insert("promotions", Value::List(promos));
    ctx.insert("subjects", subjects_value());
    Ok(PageOutcome::template("home.html", ctx))
}

/// `GET /new_products?subject=` — subject listing ordered by
/// publication date: an index probe over ~items/23 rows plus a sort
/// (lengthy at scale).
pub(crate) fn new_products(_state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let subject = req.param("subject").unwrap_or("ARTS").to_string();
    let r = db.execute(
        "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
         FROM item i JOIN author a ON i.i_a_id = a.a_id \
         WHERE i.i_subject = ? ORDER BY i.i_pub_date DESC, i.i_title LIMIT 50",
        &[DbValue::from(subject.as_str())],
    )?;
    let mut ctx = base_ctx("New Products", req);
    ctx.insert("subject", subject);
    ctx.insert("items", item_rows(&r));
    Ok(PageOutcome::template("new_products.html", ctx))
}

/// `GET /best_sellers?subject=` — aggregates the recent-order window of
/// `order_line`: a large scan plus GROUP BY (the heaviest read, lengthy).
pub(crate) fn best_sellers(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let subject = req.param("subject").unwrap_or("ARTS").to_string();
    // TPC-W's "3333 most recent orders" window: MAX over orders is a
    // full scan, like the benchmark's subquery.
    let max_o = db
        .execute("SELECT MAX(o_id) FROM orders", &[])?
        .single_int()
        .unwrap_or(0);
    let window_start = max_o - state.bestseller_window;
    let r = db.execute(
        "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname, \
         SUM(ol.ol_qty) AS total \
         FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id \
         JOIN author a ON i.i_a_id = a.a_id \
         WHERE ol.ol_o_id > ? AND i.i_subject = ? \
         GROUP BY i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
         ORDER BY total DESC LIMIT 50",
        &[DbValue::Int(window_start), DbValue::from(subject.as_str())],
    )?;
    let mut ctx = base_ctx("Best Sellers", req);
    ctx.insert("subject", subject);
    ctx.insert("items", item_rows(&r));
    Ok(PageOutcome::template("best_sellers.html", ctx))
}

/// `GET /product_detail?i_id=` — a primary-key lookup (quick).
pub(crate) fn product_detail(
    _state: &TpcwState,
    req: &Request,
    db: &PooledConnection,
) -> PageResult {
    let i_id = req.param_u64("i_id").unwrap_or(1) as i64;
    let r = db.execute(
        "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname, \
         i.i_subject, i.i_srp \
         FROM item i JOIN author a ON i.i_a_id = a.a_id WHERE i.i_id = ?",
        &[DbValue::Int(i_id)],
    )?;
    let row = r
        .first()
        .ok_or_else(|| AppError::handler(format!("no such item: {i_id}")))?;
    let mut item = match item_row(row) {
        Value::Map(m) => m,
        _ => unreachable!("item_row returns a map"),
    };
    item.insert("subject".to_string(), value_of(&row[6]));
    item.insert("srp".to_string(), value_of(&row[7]));
    let stock = db
        .execute(
            "SELECT st_qty FROM stock WHERE st_i_id = ?",
            &[DbValue::Int(i_id)],
        )?
        .single_int()
        .unwrap_or(0);
    item.insert("stock".to_string(), Value::Int(stock));
    item.insert("in_stock".to_string(), Value::Bool(stock > 0));
    let mut ctx = base_ctx("Product Detail", req);
    ctx.insert("item", Value::Map(item));
    Ok(PageOutcome::template("product_detail.html", ctx))
}

/// `GET /search_request` — renders the search form (no queries, quick).
pub(crate) fn search_request(
    _state: &TpcwState,
    req: &Request,
    _db: &PooledConnection,
) -> PageResult {
    let mut ctx = base_ctx("Search", req);
    ctx.insert("subjects", subjects_value());
    Ok(PageOutcome::template("search_request.html", ctx))
}

/// `GET /execute_search?type=&search=` — `LIKE` scans for title/author
/// searches (lengthy); subject searches use the index.
pub(crate) fn execute_search(
    _state: &TpcwState,
    req: &Request,
    db: &PooledConnection,
) -> PageResult {
    let kind = req.param("type").unwrap_or("title").to_string();
    let query = req.param("search").unwrap_or("").to_string();
    let pattern = format!("%{query}%");
    let r = match kind.as_str() {
        "author" => db.execute(
            "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
             FROM author a JOIN item i ON i.i_a_id = a.a_id \
             WHERE a.a_lname LIKE ? ORDER BY i.i_title LIMIT 50",
            &[DbValue::from(pattern.as_str())],
        )?,
        "subject" => db.execute(
            "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
             FROM item i JOIN author a ON i.i_a_id = a.a_id \
             WHERE i.i_subject = ? ORDER BY i.i_title LIMIT 50",
            &[DbValue::from(query.as_str())],
        )?,
        _ => db.execute(
            "SELECT i.i_id, i.i_title, i.i_cost, i.i_thumbnail, a.a_fname, a.a_lname \
             FROM item i JOIN author a ON i.i_a_id = a.a_id \
             WHERE i.i_title LIKE ? ORDER BY i.i_title LIMIT 50",
            &[DbValue::from(pattern.as_str())],
        )?,
    };
    let mut ctx = base_ctx("Search Results", req);
    ctx.insert("kind", kind);
    ctx.insert("query", query);
    ctx.insert("items", item_rows(&r));
    Ok(PageOutcome::template("execute_search.html", ctx))
}

/// Reads a cart's lines joined with item details; returns the template
/// list and the pre-discount total.
fn cart_lines(db: &PooledConnection, sc_id: i64) -> Result<(Value, f64), AppError> {
    let r = db.execute(
        "SELECT i.i_title, scl.scl_qty, i.i_cost \
         FROM shopping_cart_line scl JOIN item i ON scl.scl_i_id = i.i_id \
         WHERE scl.scl_sc_id = ?",
        &[DbValue::Int(sc_id)],
    )?;
    let mut total = 0.0;
    let lines: Vec<Value> = r
        .rows
        .iter()
        .map(|row| {
            let qty = row[1].as_int().unwrap_or(0);
            let cost = row[2].as_f64().unwrap_or(0.0);
            let subtotal = cost * qty as f64;
            total += subtotal;
            map(vec![
                ("title", value_of(&row[0])),
                ("qty", Value::Int(qty)),
                ("cost", Value::Float(cost)),
                ("subtotal", Value::Float(subtotal)),
            ])
        })
        .collect();
    Ok((Value::List(lines), total))
}

/// `GET /shopping_cart?c_id=&sc_id=&i_id=&qty=` — creates the cart on
/// first visit, adds/updates a line, then lists the cart (indexed
/// lookups plus small writes; quick).
pub(crate) fn shopping_cart(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let mut sc_id = req.param_u64("sc_id").unwrap_or(0) as i64;
    if sc_id == 0 {
        sc_id = TpcwState::take(&state.next_cart_id);
        db.execute(
            "INSERT INTO shopping_cart (sc_id, sc_date) VALUES (?, ?)",
            &[DbValue::Int(sc_id), DbValue::Int(735_000)],
        )?;
    }
    if let Some(i_id) = req.param_u64("i_id") {
        let i_id = i_id as i64;
        let qty = req.param_u64("qty").unwrap_or(1) as i64;
        let existing = db.execute(
            "SELECT scl_id, scl_qty FROM shopping_cart_line \
             WHERE scl_sc_id = ? AND scl_i_id = ?",
            &[DbValue::Int(sc_id), DbValue::Int(i_id)],
        )?;
        match existing.first() {
            Some(row) => {
                let scl_id = row[0].as_int().expect("scl_id is an integer");
                db.execute(
                    "UPDATE shopping_cart_line SET scl_qty = scl_qty + ? WHERE scl_id = ?",
                    &[DbValue::Int(qty), DbValue::Int(scl_id)],
                )?;
            }
            None => {
                let scl_id = TpcwState::take(&state.next_cart_line_id);
                db.execute(
                    "INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, scl_qty) \
                     VALUES (?, ?, ?, ?)",
                    &[
                        DbValue::Int(scl_id),
                        DbValue::Int(sc_id),
                        DbValue::Int(i_id),
                        DbValue::Int(qty),
                    ],
                )?;
            }
        }
    }
    let (lines, total) = cart_lines(db, sc_id)?;
    let mut ctx = base_ctx("Shopping Cart", req);
    ctx.insert("sc_id", sc_id);
    ctx.insert("lines", lines);
    ctx.insert("total", total);
    Ok(PageOutcome::template("shopping_cart.html", ctx))
}

/// `GET /customer_registration?c_id=&sc_id=` — greets a returning
/// customer or renders the registration form (quick).
pub(crate) fn customer_registration(
    _state: &TpcwState,
    req: &Request,
    db: &PooledConnection,
) -> PageResult {
    let c_id = req.param_u64("c_id").unwrap_or(0) as i64;
    let mut ctx = base_ctx("Registration", req);
    ctx.insert("sc_id", req.param_u64("sc_id").unwrap_or(0));
    if c_id > 0 {
        let r = db.execute(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
            &[DbValue::Int(c_id)],
        )?;
        if let Some(row) = r.first() {
            ctx.insert(
                "customer",
                map(vec![
                    ("fname", value_of(&row[0])),
                    ("lname", value_of(&row[1])),
                ]),
            );
        }
    }
    Ok(PageOutcome::template("customer_registration.html", ctx))
}

/// `GET /buy_request?c_id=&sc_id=` — order confirmation page: customer,
/// address, and cart summary (indexed lookups; quick). Registers a new
/// customer when `c_id` is 0.
pub(crate) fn buy_request(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let mut c_id = req.param_u64("c_id").unwrap_or(0) as i64;
    if c_id == 0 {
        c_id = TpcwState::take(&state.next_customer_id);
        let fname = req.param("fname").unwrap_or("New");
        let lname = req.param("lname").unwrap_or("Customer");
        db.execute(
            "INSERT INTO customer (c_id, c_uname, c_fname, c_lname, c_addr_id, c_phone, \
             c_email, c_since, c_discount) VALUES (?, ?, ?, ?, 1, '555-0000', ?, 735000, 0.0)",
            &[
                DbValue::Int(c_id),
                DbValue::from(format!("user{c_id}")),
                DbValue::from(fname),
                DbValue::from(lname),
                DbValue::from(format!("user{c_id}@example.com")),
            ],
        )?;
    }
    let customer = db.execute(
        "SELECT c_fname, c_lname, c_addr_id, c_discount FROM customer WHERE c_id = ?",
        &[DbValue::Int(c_id)],
    )?;
    let row = customer
        .first()
        .ok_or_else(|| AppError::handler(format!("no such customer: {c_id}")))?;
    let discount = row[3].as_f64().unwrap_or(0.0);
    let addr_id = row[2].as_int().unwrap_or(1);
    let mut ctx = base_ctx("Confirm Order", req);
    ctx.insert("c_id", c_id);
    ctx.insert(
        "customer",
        map(vec![
            ("fname", value_of(&row[0])),
            ("lname", value_of(&row[1])),
        ]),
    );
    let addr = db.execute(
        "SELECT addr_street, addr_city, addr_zip FROM address WHERE addr_id = ?",
        &[DbValue::Int(addr_id)],
    )?;
    if let Some(a) = addr.first() {
        ctx.insert(
            "address",
            map(vec![
                ("street", value_of(&a[0])),
                ("city", value_of(&a[1])),
                ("zip", value_of(&a[2])),
            ]),
        );
    }
    let sc_id = req.param_u64("sc_id").unwrap_or(0) as i64;
    let (lines, total) = cart_lines(db, sc_id)?;
    ctx.insert("sc_id", sc_id);
    ctx.insert("lines", lines);
    ctx.insert("discount", (discount * 100.0).round() as i64);
    ctx.insert("total", total * (1.0 - discount));
    Ok(PageOutcome::template("buy_request.html", ctx))
}

/// `GET /buy_confirm?c_id=&sc_id=` — places the order: inserts `orders`
/// / `order_line` / `cc_xacts` rows, decrements item stock, and empties
/// the cart (several small writes; quick).
pub(crate) fn buy_confirm(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let c_id = req.param_u64("c_id").unwrap_or(1) as i64;
    let sc_id = req.param_u64("sc_id").unwrap_or(0) as i64;
    let cart = db.execute(
        "SELECT scl.scl_i_id, scl.scl_qty, i.i_cost \
         FROM shopping_cart_line scl JOIN item i ON scl.scl_i_id = i.i_id \
         WHERE scl.scl_sc_id = ?",
        &[DbValue::Int(sc_id)],
    )?;
    let o_id = TpcwState::take(&state.next_order_id);
    let total: f64 = cart
        .rows
        .iter()
        .map(|r| r[2].as_f64().unwrap_or(0.0) * r[1].as_int().unwrap_or(0) as f64)
        .sum();
    db.execute(
        "INSERT INTO orders (o_id, o_c_id, o_date, o_total, o_status) \
         VALUES (?, ?, 735000, ?, 'PENDING')",
        &[
            DbValue::Int(o_id),
            DbValue::Int(c_id),
            DbValue::Float(total),
        ],
    )?;
    for row in &cart.rows {
        let i_id = row[0].as_int().expect("item id is an integer");
        let qty = row[1].as_int().unwrap_or(1);
        let ol_id = TpcwState::take(&state.next_order_line_id);
        db.execute(
            "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) \
             VALUES (?, ?, ?, ?, 0.0)",
            &[
                DbValue::Int(ol_id),
                DbValue::Int(o_id),
                DbValue::Int(i_id),
                DbValue::Int(qty),
            ],
        )?;
        // TPC-W restocks when stock runs low; keep stock positive. The
        // decrement hits the dedicated stock table, not the hot item
        // table (see schema.rs).
        db.execute(
            "UPDATE stock SET st_qty = st_qty - ? WHERE st_i_id = ? AND st_qty >= ?",
            &[DbValue::Int(qty), DbValue::Int(i_id), DbValue::Int(qty)],
        )?;
    }
    let cc_type = ["VISA", "MASTERCARD", "AMEX"][(o_id % 3) as usize];
    db.execute(
        "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_amount, cx_date) \
         VALUES (?, ?, ?, 735000)",
        &[
            DbValue::Int(o_id),
            DbValue::from(cc_type),
            DbValue::Float(total),
        ],
    )?;
    db.execute(
        "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?",
        &[DbValue::Int(sc_id)],
    )?;
    let mut ctx = base_ctx("Order Placed", req);
    ctx.insert("order_id", o_id);
    ctx.insert("line_count", cart.rows.len());
    ctx.insert("total", total);
    ctx.insert("cc_type", cc_type);
    Ok(PageOutcome::template("buy_confirm.html", ctx))
}

/// `GET /order_inquiry?c_id=` — renders the inquiry form (quick).
pub(crate) fn order_inquiry(
    _state: &TpcwState,
    req: &Request,
    _db: &PooledConnection,
) -> PageResult {
    Ok(PageOutcome::template(
        "order_inquiry.html",
        base_ctx("Order Inquiry", req),
    ))
}

/// `GET /order_display?c_id=` — the customer's most recent order with
/// its lines (indexed lookups; quick).
pub(crate) fn order_display(
    _state: &TpcwState,
    req: &Request,
    db: &PooledConnection,
) -> PageResult {
    let c_id = req.param_u64("c_id").unwrap_or(1) as i64;
    let mut ctx = base_ctx("Order Display", req);
    let last = db.execute(
        "SELECT MAX(o_id) FROM orders WHERE o_c_id = ?",
        &[DbValue::Int(c_id)],
    )?;
    let o_id = last.single_int().unwrap_or(0);
    if o_id > 0 {
        let order = db.execute(
            "SELECT o_id, o_total, o_status FROM orders WHERE o_id = ?",
            &[DbValue::Int(o_id)],
        )?;
        if let Some(row) = order.first() {
            ctx.insert(
                "order",
                map(vec![
                    ("id", value_of(&row[0])),
                    ("total", value_of(&row[1])),
                    ("status", value_of(&row[2])),
                ]),
            );
        }
        let cust = db.execute(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
            &[DbValue::Int(c_id)],
        )?;
        if let Some(row) = cust.first() {
            ctx.insert(
                "customer",
                map(vec![
                    ("fname", value_of(&row[0])),
                    ("lname", value_of(&row[1])),
                ]),
            );
        }
        let lines = db.execute(
            "SELECT i.i_title, ol.ol_qty \
             FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id \
             WHERE ol.ol_o_id = ?",
            &[DbValue::Int(o_id)],
        )?;
        ctx.insert(
            "lines",
            Value::List(
                lines
                    .rows
                    .iter()
                    .map(|r| map(vec![("title", value_of(&r[0])), ("qty", value_of(&r[1]))]))
                    .collect(),
            ),
        );
    }
    Ok(PageOutcome::template("order_display.html", ctx))
}

/// `GET /admin_request?i_id=` — the item-edit form (PK lookup; quick).
pub(crate) fn admin_request(
    _state: &TpcwState,
    req: &Request,
    db: &PooledConnection,
) -> PageResult {
    let i_id = req.param_u64("i_id").unwrap_or(1) as i64;
    let r = db.execute(
        "SELECT i_id, i_title, i_cost, i_thumbnail FROM item WHERE i_id = ?",
        &[DbValue::Int(i_id)],
    )?;
    let row = r
        .first()
        .ok_or_else(|| AppError::handler(format!("no such item: {i_id}")))?;
    let mut ctx = base_ctx("Admin: Edit Item", req);
    ctx.insert(
        "item",
        map(vec![
            ("id", value_of(&row[0])),
            ("title", value_of(&row[1])),
            ("cost", value_of(&row[2])),
            ("thumbnail", value_of(&row[3])),
        ]),
    );
    Ok(PageOutcome::template("admin_request.html", ctx))
}

/// `GET /admin_confirm?i_id=&cost=&image=` — the TPC-W admin response:
/// recomputes the item's five related items from recent co-purchases
/// (scan + aggregate), then **updates the hot `item` table**, taking
/// its write lock — the page whose response time the paper shows
/// *growing* under the modified server because everyone else got
/// faster (§4.2.1).
pub(crate) fn admin_confirm(state: &TpcwState, req: &Request, db: &PooledConnection) -> PageResult {
    let i_id = req.param_u64("i_id").unwrap_or(1) as i64;
    let cost: f64 = req
        .param("cost")
        .and_then(|c| c.parse().ok())
        .unwrap_or(9.99);
    let image = req.param("image").unwrap_or("/img/thumb_1.gif").to_string();
    // Recent-order window (full scan of orders, like the TPC-W
    // subquery).
    let max_o = db
        .execute("SELECT MAX(o_id) FROM orders", &[])?
        .single_int()
        .unwrap_or(0);
    let window_start = max_o - state.bestseller_window * 3;
    // Items bought together with this one, by co-purchase volume.
    let related = db.execute(
        "SELECT ol2.ol_i_id, SUM(ol2.ol_qty) AS total \
         FROM order_line ol JOIN order_line ol2 ON ol.ol_o_id = ol2.ol_o_id \
         WHERE ol.ol_i_id = ? AND ol2.ol_i_id != ? AND ol.ol_o_id > ? \
         GROUP BY ol2.ol_i_id ORDER BY total DESC LIMIT 5",
        &[
            DbValue::Int(i_id),
            DbValue::Int(i_id),
            DbValue::Int(window_start),
        ],
    )?;
    let mut rel: Vec<i64> = related.rows.iter().filter_map(|r| r[0].as_int()).collect();
    while rel.len() < 5 {
        rel.push((i_id + rel.len() as i64) % state.items + 1);
    }
    db.execute(
        "UPDATE item SET i_cost = ?, i_thumbnail = ?, i_pub_date = 735000, \
         i_related1 = ?, i_related2 = ?, i_related3 = ?, i_related4 = ?, i_related5 = ? \
         WHERE i_id = ?",
        &[
            DbValue::Float(cost),
            DbValue::from(image.as_str()),
            DbValue::Int(rel[0]),
            DbValue::Int(rel[1]),
            DbValue::Int(rel[2]),
            DbValue::Int(rel[3]),
            DbValue::Int(rel[4]),
            DbValue::Int(i_id),
        ],
    )?;
    let r = db.execute(
        "SELECT i_title, i_cost FROM item WHERE i_id = ?",
        &[DbValue::Int(i_id)],
    )?;
    let row = r
        .first()
        .ok_or_else(|| AppError::handler(format!("no such item: {i_id}")))?;
    let mut ctx = base_ctx("Admin: Item Updated", req);
    ctx.insert(
        "item",
        map(vec![
            ("title", value_of(&row[0])),
            ("cost", value_of(&row[1])),
        ]),
    );
    ctx.insert(
        "related",
        Value::List(rel.into_iter().map(Value::Int).collect()),
    );
    Ok(PageOutcome::template("admin_response.html", ctx))
}
