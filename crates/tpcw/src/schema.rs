//! The TPC-W bookstore schema.

use staged_db::{Database, DbError};

/// The `CREATE TABLE` / `CREATE INDEX` statements for the TPC-W
/// bookstore, in creation order.
pub(crate) const SCHEMA_SQL: &[&str] = &[
    "CREATE TABLE country (co_id INT PRIMARY KEY, co_name TEXT)",
    "CREATE TABLE address (addr_id INT PRIMARY KEY, addr_street TEXT, addr_city TEXT, \
     addr_zip TEXT, addr_co_id INT)",
    "CREATE TABLE customer (c_id INT PRIMARY KEY, c_uname TEXT, c_fname TEXT, c_lname TEXT, \
     c_addr_id INT, c_phone TEXT, c_email TEXT, c_since INT, c_discount FLOAT)",
    "CREATE INDEX ON customer (c_uname)",
    "CREATE TABLE author (a_id INT PRIMARY KEY, a_fname TEXT, a_lname TEXT)",
    "CREATE INDEX ON author (a_lname)",
    "CREATE TABLE item (i_id INT PRIMARY KEY, i_title TEXT, i_a_id INT, i_subject TEXT, \
     i_pub_date INT, i_cost FLOAT, i_srp FLOAT, i_thumbnail TEXT, \
     i_related1 INT, i_related2 INT, i_related3 INT, i_related4 INT, i_related5 INT)",
    // Stock lives in its own table so the only writer of the hot `item`
    // table is the admin-confirm page — the paper's lock-contention
    // scenario (its MySQL used row-level locking for the stock
    // decrement; a separate table is the table-lock-engine equivalent).
    "CREATE TABLE stock (st_i_id INT PRIMARY KEY, st_qty INT)",
    // No index on i_subject: like the paper's MySQL (where subject
    // listings filesort tens of thousands of rows), New Products and
    // subject searches must scan `item` — they are three of the four
    // pages the paper reports as inherently slow (§4.2.1).
    "CREATE INDEX ON item (i_a_id)",
    "CREATE TABLE orders (o_id INT PRIMARY KEY, o_c_id INT, o_date INT, o_total FLOAT, \
     o_status TEXT)",
    "CREATE INDEX ON orders (o_c_id)",
    "CREATE TABLE order_line (ol_id INT PRIMARY KEY, ol_o_id INT, ol_i_id INT, ol_qty INT, \
     ol_discount FLOAT)",
    "CREATE INDEX ON order_line (ol_o_id)",
    "CREATE INDEX ON order_line (ol_i_id)",
    "CREATE TABLE cc_xacts (cx_o_id INT PRIMARY KEY, cx_type TEXT, cx_amount FLOAT, \
     cx_date INT)",
    "CREATE TABLE shopping_cart (sc_id INT PRIMARY KEY, sc_date INT)",
    "CREATE TABLE shopping_cart_line (scl_id INT PRIMARY KEY, scl_sc_id INT, scl_i_id INT, \
     scl_qty INT)",
    "CREATE INDEX ON shopping_cart_line (scl_sc_id)",
];

/// The 23 TPC-W book subjects.
pub(crate) const SUBJECTS: &[&str] = &[
    "ARTS",
    "BIOGRAPHIES",
    "BUSINESS",
    "CHILDREN",
    "COMPUTERS",
    "COOKING",
    "HEALTH",
    "HISTORY",
    "HOME",
    "HUMOR",
    "LITERATURE",
    "MYSTERY",
    "NON-FICTION",
    "PARENTING",
    "POLITICS",
    "REFERENCE",
    "RELIGION",
    "ROMANCE",
    "SELF-HELP",
    "SCIENCE-NATURE",
    "SCIENCE-FICTION",
    "SPORTS",
    "TRAVEL",
];

/// Creates the empty TPC-W schema (tables and indexes).
///
/// # Errors
///
/// [`DbError::TableExists`] if run twice on the same database, or any
/// other execution error.
pub fn create_schema(db: &Database) -> Result<(), DbError> {
    for sql in SCHEMA_SQL {
        db.execute(sql, &[])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_tables() {
        let db = Database::new();
        create_schema(&db).unwrap();
        let names = db.table_names();
        for expected in [
            "address",
            "author",
            "cc_xacts",
            "country",
            "customer",
            "item",
            "order_line",
            "orders",
            "shopping_cart",
            "shopping_cart_line",
            "stock",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn double_creation_fails_cleanly() {
        let db = Database::new();
        create_schema(&db).unwrap();
        assert!(matches!(create_schema(&db), Err(DbError::TableExists(_))));
    }

    #[test]
    fn twenty_three_subjects() {
        assert_eq!(SUBJECTS.len(), 23);
    }
}
