//! A TPC-W online-bookstore benchmark built on the staged-web stack.
//!
//! The paper evaluates its scheduling method with "the standard TPC-W
//! benchmark implemented with the Django web templates" — an
//! implementation the authors wrote from scratch (455 lines of Python,
//! 704 lines of templates) because existing TPC-W codebases predate the
//! template style. This crate is the same artefact for the Rust stack:
//!
//! * the full **bookstore schema** (customer / address / country /
//!   author / item / orders / order_line / cc_xacts / shopping_cart /
//!   shopping_cart_line) with the TPC-W-shaped indexes;
//! * a deterministic, **scalable population generator**
//!   ([`ScaleConfig`]; the paper's one-million-item database scales down
//!   ×100 by default, preserving the quick/lengthy query dichotomy);
//! * all **14 web interactions** as [`staged_core::App`] routes, each
//!   returning an unrendered template (the paper's modified return
//!   statement) — the quick pages are indexed point lookups, while Best
//!   Sellers / New Products / Execute Search scan and aggregate, and
//!   Admin Confirm takes the item-table write lock (the paper's four
//!   slow pages);
//! * Django-style **templates** for every page;
//! * the **browsing-mix workload generator**: closed-loop emulated
//!   browsers with scaled 0.7–7 s think times, per-page response-time
//!   measurement (Table 3) and completion counts (Table 4).
//!
//! # Examples
//!
//! ```
//! use staged_tpcw::{build_app, populate, ScaleConfig};
//! use staged_db::Database;
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::new());
//! let scale = ScaleConfig::tiny();
//! populate(&db, &scale);
//! let app = build_app(&db, &scale);
//! assert_eq!(app.route_paths().len(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod pages;
mod populate;
mod report;
mod scale;
mod schema;
mod templates;
mod workload;

pub use app::build_app;
pub use populate::{populate, PopulationSummary};
pub use report::{PageReport, WorkloadReport};
pub use scale::ScaleConfig;
pub use schema::create_schema;
pub use templates::install_templates;
pub use workload::{run_workload, WorkloadConfig, PAGES};
