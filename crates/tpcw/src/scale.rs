//! Benchmark scaling parameters.

use std::time::Duration;

/// Sizes and time scaling for the TPC-W database and workload.
///
/// The paper's configuration is one million items, 2.88 million
/// customers, and 2.59 million orders against a dedicated database
/// host, with 0.7–7 s think times and hour-long runs. [`ScaleConfig`]
/// scales all of that down while preserving the ratios TPC-W fixes
/// (2.88 customers and 2.59 orders per item) and the behaviour the
/// scheduling method depends on: indexed lookups stay orders of
/// magnitude cheaper than the scan/aggregate pages.
///
/// # Examples
///
/// ```
/// use staged_tpcw::ScaleConfig;
///
/// let s = ScaleConfig::default();
/// assert_eq!(s.items, 10_000);
/// assert_eq!(s.customers, 28_800);
/// assert_eq!(s.orders, 25_900);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Number of books (paper: 1 000 000; default ×100 down).
    pub items: usize,
    /// Number of customers (paper: 2 880 000).
    pub customers: usize,
    /// Number of historical orders (paper: 2 590 000).
    pub orders: usize,
    /// Authors (TPC-W: items ÷ 4).
    pub authors: usize,
    /// Mean order lines per order (TPC-W: ~3).
    pub lines_per_order: usize,
    /// Static images to generate (item thumbnails etc.).
    pub images: usize,
    /// Bytes per generated image.
    pub image_bytes: usize,
    /// Think time range for emulated browsers (paper: 0.7–7 s; the
    /// default is scaled ×10 for experiment runs, `tiny()` uses ×1000
    /// for fast tests).
    pub think_min: Duration,
    /// Upper bound of the think range.
    pub think_max: Duration,
    /// Static sub-requests an emulated browser issues per page view
    /// (embedded images; the paper's Figure 10a shows static requests
    /// dominating raw counts ~10:1).
    pub images_per_page: usize,
    /// Emulated per-kilobyte template rendering cost (the paper's
    /// CPython/Django engine; see `AppBuilder::render_weight_per_kb`).
    pub render_weight_per_kb: Duration,
    /// Emulated per-response static service overhead.
    pub static_weight: Duration,
    /// RNG seed for deterministic population and workloads.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            items: 10_000,
            customers: 28_800,
            orders: 25_900,
            authors: 2_500,
            lines_per_order: 3,
            images: 1_000,
            image_bytes: 2_048,
            // ×10 time scale: the paper's 0.7–7 s think times.
            think_min: Duration::from_millis(70),
            think_max: Duration::from_millis(700),
            images_per_page: 10,
            render_weight_per_kb: Duration::from_millis(3),
            static_weight: Duration::from_millis(1),
            seed: 0x7bc0_57a9,
        }
    }
}

impl ScaleConfig {
    /// A minimal configuration for unit and integration tests
    /// (hundreds of rows, sub-second population).
    pub fn tiny() -> Self {
        ScaleConfig {
            items: 100,
            customers: 288,
            orders: 259,
            authors: 25,
            lines_per_order: 3,
            images: 20,
            image_bytes: 256,
            images_per_page: 3,
            render_weight_per_kb: Duration::ZERO,
            static_weight: Duration::ZERO,
            // ×1000 time scale so tests finish in milliseconds.
            think_min: Duration::from_micros(700),
            think_max: Duration::from_millis(7),
            ..ScaleConfig::default()
        }
    }

    /// A mid-size configuration for quick local experiments.
    pub fn small() -> Self {
        ScaleConfig {
            items: 1_000,
            customers: 2_880,
            orders: 2_590,
            authors: 250,
            images: 200,
            ..ScaleConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any population count is zero or `think_min > think_max`.
    pub fn validate(&self) {
        assert!(self.items > 0, "need at least one item");
        assert!(self.customers > 0, "need at least one customer");
        assert!(self.orders > 0, "need at least one order");
        assert!(self.authors > 0, "need at least one author");
        assert!(self.images > 0, "need at least one image");
        assert!(
            self.think_min <= self.think_max,
            "think_min must not exceed think_max"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_tpcw_ratios() {
        let s = ScaleConfig::default();
        // TPC-W fixes 2.88 customers and 2.59 orders per item.
        assert!((s.customers as f64 / s.items as f64 - 2.88).abs() < 1e-9);
        assert!((s.orders as f64 / s.items as f64 - 2.59).abs() < 1e-9);
        s.validate();
    }

    #[test]
    fn presets_validate() {
        ScaleConfig::tiny().validate();
        ScaleConfig::small().validate();
    }

    #[test]
    #[should_panic(expected = "need at least one item")]
    fn zero_items_rejected() {
        let mut s = ScaleConfig::tiny();
        s.items = 0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "think_min must not exceed think_max")]
    fn inverted_think_range_rejected() {
        let mut s = ScaleConfig::tiny();
        s.think_min = Duration::from_secs(1);
        s.think_max = Duration::from_millis(1);
        s.validate();
    }
}
