//! The Django-style presentation templates for all 14 TPC-W pages.
//!
//! These mirror the paper's template half of its TPC-W implementation
//! ("704 lines of template code (most of which is pure HTML)"): plain
//! HTML skeletons with variable tags, loops, and includes.

use staged_templates::{TemplateError, TemplateStore};

const HEADER: &str = r#"<html>
<head>
  <title>{{ title }} - TPC-W Bookstore</title>
  <link rel="stylesheet" href="/css/site.css">
</head>
<body>
<table width="100%"><tr>
  <td><a href="/home?c_id={{ c_id|default:0 }}"><img src="/img/thumb_0.gif" alt="logo"></a></td>
  <td><h1>{{ title }}</h1></td>
  <td align="right">
    <a href="/search_request?c_id={{ c_id|default:0 }}">Search</a> |
    <a href="/shopping_cart?c_id={{ c_id|default:0 }}">Cart</a> |
    <a href="/order_inquiry?c_id={{ c_id|default:0 }}">Your Orders</a>
  </td>
</tr></table>
<hr>
"#;

const FOOTER: &str = r#"<hr>
<p align="center"><small>TPC-W benchmark bookstore &mdash; generated content.</small></p>
</body>
</html>
"#;

const ITEM_ROW: &str = r#"<tr>
  <td><img src="{{ item.thumbnail }}" alt="cover" width="50"></td>
  <td><a href="/product_detail?i_id={{ item.id }}&c_id={{ c_id|default:0 }}">{{ item.title }}</a></td>
  <td>{{ item.author }}</td>
  <td align="right">${{ item.cost|floatformat:2 }}</td>
</tr>
"#;

const HOME: &str = r#"{% include "header.html" %}
{% if customer %}
  <h2 align="center">Welcome back, {{ customer.fname }} {{ customer.lname }}!</h2>
{% else %}
  <h2 align="center">Welcome to the TPC-W Bookstore</h2>
{% endif %}
<h3>Promotional items</h3>
<table>
{% for item in promotions %}{% include "item_row.html" %}{% endfor %}
</table>
<h3>Browse subjects</h3>
<ul>
{% for subject in subjects %}
  <li><a href="/new_products?subject={{ subject|urlencode }}&c_id={{ c_id|default:0 }}">{{ subject|title }}</a></li>
{% endfor %}
</ul>
{% include "footer.html" %}"#;

const NEW_PRODUCTS: &str = r#"{% include "header.html" %}
<h2>New releases in {{ subject|title }}</h2>
<table>
{% for item in items %}{% include "item_row.html" %}{% empty %}
<tr><td>No items in this subject.</td></tr>
{% endfor %}
</table>
<p>{{ items|length }} title{{ items|length|pluralize }} listed.</p>
{% include "footer.html" %}"#;

const BEST_SELLERS: &str = r#"{% include "header.html" %}
<h2>Best sellers in {{ subject|title }}</h2>
<table>
<tr><th></th><th>Title</th><th>Author</th><th>Price</th></tr>
{% for item in items %}{% include "item_row.html" %}{% empty %}
<tr><td>No recent sales in this subject.</td></tr>
{% endfor %}
</table>
{% include "footer.html" %}"#;

const PRODUCT_DETAIL: &str = r#"{% include "header.html" %}
<table><tr>
<td><img src="{{ item.thumbnail }}" alt="cover" width="200"></td>
<td>
  <h2>{{ item.title }}</h2>
  <p>by {{ item.author }}</p>
  <p>Subject: {{ item.subject|title }}</p>
  <p>Suggested retail: <strike>${{ item.srp|floatformat:2 }}</strike>
     Our price: <b>${{ item.cost|floatformat:2 }}</b>
     {% if item.in_stock %}<em>In stock ({{ item.stock }})</em>{% else %}<em>Backordered</em>{% endif %}</p>
  <form action="/shopping_cart" method="get">
    <input type="hidden" name="c_id" value="{{ c_id|default:0 }}">
    <input type="hidden" name="i_id" value="{{ item.id }}">
    <input type="submit" value="Add to cart">
  </form>
  <p><a href="/admin_request?i_id={{ item.id }}&c_id={{ c_id|default:0 }}">Edit (admin)</a></p>
</td>
</tr></table>
{% include "footer.html" %}"#;

const SEARCH_REQUEST: &str = r#"{% include "header.html" %}
<h2>Search the store</h2>
<form action="/execute_search" method="get">
  <input type="hidden" name="c_id" value="{{ c_id|default:0 }}">
  <select name="type">
    <option value="title">Title</option>
    <option value="author">Author</option>
    <option value="subject">Subject</option>
  </select>
  <input type="text" name="search">
  <input type="submit" value="Search">
</form>
<p>Popular subjects:</p>
<ul>
{% for subject in subjects|slice:":8" %}
  <li><a href="/execute_search?type=subject&search={{ subject|urlencode }}">{{ subject|title }}</a></li>
{% endfor %}
</ul>
{% include "footer.html" %}"#;

const EXECUTE_SEARCH: &str = r#"{% include "header.html" %}
<h2>Results for {{ kind }}: &ldquo;{{ query }}&rdquo;</h2>
<table>
{% for item in items %}{% include "item_row.html" %}{% empty %}
<tr><td>No matches.</td></tr>
{% endfor %}
</table>
<p>{{ items|length }} result{{ items|length|pluralize }}.</p>
{% include "footer.html" %}"#;

const SHOPPING_CART: &str = r#"{% include "header.html" %}
<h2>Your shopping cart</h2>
<table>
<tr><th>Title</th><th>Qty</th><th>Each</th><th>Subtotal</th></tr>
{% for line in lines %}
<tr>
  <td>{{ line.title }}</td>
  <td>{{ line.qty }}</td>
  <td align="right">${{ line.cost|floatformat:2 }}</td>
  <td align="right">${{ line.subtotal|floatformat:2 }}</td>
</tr>
{% empty %}
<tr><td>Your cart is empty.</td></tr>
{% endfor %}
</table>
<p>Total: <b>${{ total|floatformat:2 }}</b></p>
<form action="/buy_request" method="get">
  <input type="hidden" name="c_id" value="{{ c_id|default:0 }}">
  <input type="hidden" name="sc_id" value="{{ sc_id }}">
  <input type="submit" value="Checkout">
</form>
{% include "footer.html" %}"#;

const CUSTOMER_REGISTRATION: &str = r#"{% include "header.html" %}
{% if customer %}
  <h2>Welcome back, {{ customer.fname }}!</h2>
  <p>Proceed to <a href="/buy_request?c_id={{ c_id }}&sc_id={{ sc_id }}">checkout</a>.</p>
{% else %}
  <h2>Register</h2>
  <form action="/buy_request" method="get">
    <p>First name <input name="fname"> Last name <input name="lname"></p>
    <input type="hidden" name="sc_id" value="{{ sc_id }}">
    <input type="submit" value="Register and continue">
  </form>
{% endif %}
{% include "footer.html" %}"#;

const BUY_REQUEST: &str = r#"{% include "header.html" %}
<h2>Confirm your order</h2>
<p>Shipping to: {{ customer.fname }} {{ customer.lname }}, {{ address.street }},
   {{ address.city }} {{ address.zip }}</p>
<table>
{% for line in lines %}
<tr><td>{{ line.title }}</td><td>{{ line.qty }}</td>
    <td align="right">${{ line.subtotal|floatformat:2 }}</td></tr>
{% endfor %}
</table>
<p>Order total (with {{ discount }}% member discount): <b>${{ total|floatformat:2 }}</b></p>
<form action="/buy_confirm" method="get">
  <input type="hidden" name="c_id" value="{{ c_id }}">
  <input type="hidden" name="sc_id" value="{{ sc_id }}">
  <input type="submit" value="Place order">
</form>
{% include "footer.html" %}"#;

const BUY_CONFIRM: &str = r#"{% include "header.html" %}
<h2>Thank you for your order!</h2>
<p>Order <b>#{{ order_id }}</b> has been placed.</p>
<p>{{ line_count }} line item{{ line_count|pluralize }}, total
   <b>${{ total|floatformat:2 }}</b>, charged to {{ cc_type }}.</p>
<p><a href="/order_display?c_id={{ c_id }}">View your order</a></p>
{% include "footer.html" %}"#;

const ORDER_INQUIRY: &str = r#"{% include "header.html" %}
<h2>Order inquiry</h2>
<form action="/order_display" method="get">
  <p>Username: <input name="uname" value="user{{ c_id|default:1 }}"></p>
  <input type="hidden" name="c_id" value="{{ c_id|default:0 }}">
  <input type="submit" value="Display last order">
</form>
{% include "footer.html" %}"#;

const ORDER_DISPLAY: &str = r#"{% include "header.html" %}
{% if order %}
  <h2>Order #{{ order.id }} ({{ order.status }})</h2>
  <p>Placed by {{ customer.fname }} {{ customer.lname }}; total
     <b>${{ order.total|floatformat:2 }}</b>.</p>
  <table>
  <tr><th>Title</th><th>Qty</th></tr>
  {% for line in lines %}
  <tr><td>{{ line.title }}</td><td>{{ line.qty }}</td></tr>
  {% endfor %}
  </table>
{% else %}
  <h2>No orders found</h2>
{% endif %}
{% include "footer.html" %}"#;

const ADMIN_REQUEST: &str = r#"{% include "header.html" %}
<h2>Edit item: {{ item.title }}</h2>
<form action="/admin_confirm" method="get">
  <input type="hidden" name="i_id" value="{{ item.id }}">
  <input type="hidden" name="c_id" value="{{ c_id|default:0 }}">
  <p>New cost: <input name="cost" value="{{ item.cost|floatformat:2 }}"></p>
  <p>New image: <input name="image" value="{{ item.thumbnail }}"></p>
  <input type="submit" value="Update item">
</form>
{% include "footer.html" %}"#;

const ADMIN_RESPONSE: &str = r#"{% include "header.html" %}
<h2>Item updated</h2>
<p>{{ item.title }} now costs <b>${{ item.cost|floatformat:2 }}</b>.</p>
<p>Related items recomputed from recent sales:</p>
<ol>
{% for r in related %}<li>item #{{ r }}</li>{% endfor %}
</ol>
{% include "footer.html" %}"#;

/// Installs every TPC-W template (pages plus shared includes) into a
/// store.
///
/// # Errors
///
/// A [`TemplateError::Parse`] if any template source fails to compile
/// (a programming error caught by tests).
pub fn install_templates(store: &TemplateStore) -> Result<(), TemplateError> {
    let all: &[(&str, &str)] = &[
        ("header.html", HEADER),
        ("footer.html", FOOTER),
        ("item_row.html", ITEM_ROW),
        ("home.html", HOME),
        ("new_products.html", NEW_PRODUCTS),
        ("best_sellers.html", BEST_SELLERS),
        ("product_detail.html", PRODUCT_DETAIL),
        ("search_request.html", SEARCH_REQUEST),
        ("execute_search.html", EXECUTE_SEARCH),
        ("shopping_cart.html", SHOPPING_CART),
        ("customer_registration.html", CUSTOMER_REGISTRATION),
        ("buy_request.html", BUY_REQUEST),
        ("buy_confirm.html", BUY_CONFIRM),
        ("order_inquiry.html", ORDER_INQUIRY),
        ("order_display.html", ORDER_DISPLAY),
        ("admin_request.html", ADMIN_REQUEST),
        ("admin_response.html", ADMIN_RESPONSE),
    ];
    for (name, source) in all {
        store.insert(*name, source)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_templates::{Context, Value};

    #[test]
    fn all_templates_compile() {
        let store = TemplateStore::new();
        install_templates(&store).unwrap();
        assert_eq!(store.len(), 17);
    }

    #[test]
    fn home_renders_with_data() {
        let store = TemplateStore::new();
        install_templates(&store).unwrap();
        let mut ctx = Context::new();
        ctx.insert("title", "Home");
        ctx.insert("c_id", 5);
        let mut customer = std::collections::BTreeMap::new();
        customer.insert("fname".to_string(), Value::from("Ada"));
        customer.insert("lname".to_string(), Value::from("Lovelace"));
        ctx.insert("customer", Value::Map(customer));
        let mut item = std::collections::BTreeMap::new();
        item.insert("id".to_string(), Value::from(1));
        item.insert("title".to_string(), Value::from("Dune"));
        item.insert("author".to_string(), Value::from("F. Herbert"));
        item.insert("cost".to_string(), Value::Float(9.99));
        item.insert("thumbnail".to_string(), Value::from("/img/thumb_1.gif"));
        ctx.insert("promotions", Value::from(vec![Value::Map(item)]));
        ctx.insert(
            "subjects",
            Value::from(vec![Value::from("SCIENCE-FICTION")]),
        );
        let html = store.render("home.html", &ctx).unwrap();
        assert!(html.contains("Welcome back, Ada Lovelace!"));
        assert!(html.contains("Dune"));
        assert!(html.contains("$9.99"));
        assert!(html.contains("Science-fiction"));
        assert!(html.contains("</html>"));
    }

    #[test]
    fn cart_empty_branch() {
        let store = TemplateStore::new();
        install_templates(&store).unwrap();
        let mut ctx = Context::new();
        ctx.insert("title", "Cart");
        ctx.insert("lines", Value::List(vec![]));
        ctx.insert("total", Value::Float(0.0));
        ctx.insert("sc_id", 1);
        let html = store.render("shopping_cart.html", &ctx).unwrap();
        assert!(html.contains("Your cart is empty."));
        assert!(html.contains("$0.00"));
    }
}
