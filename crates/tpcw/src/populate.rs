//! Deterministic database and static-content population.

use crate::scale::ScaleConfig;
use crate::schema::{create_schema, SUBJECTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use staged_db::{Database, DbValue};
use staged_http::StaticFiles;

/// Counts of what [`populate`] created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PopulationSummary {
    /// Books inserted.
    pub items: usize,
    /// Customers inserted.
    pub customers: usize,
    /// Orders inserted.
    pub orders: usize,
    /// Order lines inserted.
    pub order_lines: usize,
    /// Largest order id (buy-confirm continues from here).
    pub max_order_id: i64,
}

const FIRST_NAMES: &[&str] = &[
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "Tony", "Fran", "John",
    "Radia", "Vint", "Tim", "Margaret", "Niklaus", "Dennis",
];
const LAST_NAMES: &[&str] = &[
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport", "Hoare", "Allen",
    "Backus", "Perlman", "Cerf", "Lee", "Hamilton", "Wirth", "Ritchie",
];
const TITLE_WORDS: &[&str] = &[
    "Secret", "Garden", "Winter", "Empire", "Shadow", "River", "Broken", "Crown", "Silent",
    "Storm", "Golden", "Journey", "Lost", "City", "Ancient", "Light", "Iron", "Dream", "Crimson",
    "Forest", "Distant", "Star", "Hidden", "Voyage", "Endless", "Night",
];

fn title_for(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=4);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]);
    }
    words.join(" ")
}

/// Populates the schema **and** creates it first; returns the summary.
/// Everything is derived from `scale.seed`, so two runs with the same
/// configuration produce identical databases.
///
/// # Panics
///
/// Panics on any database error (population runs before serving starts;
/// a failure is a programming error) or if `scale` is inconsistent.
pub fn populate(db: &Database, scale: &ScaleConfig) -> PopulationSummary {
    scale.validate();
    create_schema(db).expect("schema creation on a fresh database");
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // Countries.
    for (i, name) in [
        "United States",
        "Canada",
        "United Kingdom",
        "Germany",
        "Japan",
    ]
    .iter()
    .enumerate()
    {
        db.execute(
            "INSERT INTO country (co_id, co_name) VALUES (?, ?)",
            &[DbValue::from(i + 1), DbValue::from(*name)],
        )
        .expect("insert country");
    }

    // Authors.
    for a_id in 1..=scale.authors {
        let fname = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let lname = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        db.execute(
            "INSERT INTO author (a_id, a_fname, a_lname) VALUES (?, ?, ?)",
            &[
                DbValue::from(a_id),
                DbValue::from(fname),
                DbValue::from(lname),
            ],
        )
        .expect("insert author");
    }

    // Items.
    for i_id in 1..=scale.items {
        let a_id = rng.gen_range(1..=scale.authors);
        let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
        let srp: f64 = rng.gen_range(5.0..120.0);
        let cost = srp * rng.gen_range(0.5..1.0);
        let related = |rng: &mut StdRng| rng.gen_range(1..=scale.items) as i64;
        db.execute(
            "INSERT INTO item (i_id, i_title, i_a_id, i_subject, i_pub_date, i_cost, i_srp, \
             i_thumbnail, i_related1, i_related2, i_related3, i_related4, i_related5) \
             VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            &[
                DbValue::from(i_id),
                DbValue::from(title_for(&mut rng)),
                DbValue::from(a_id),
                DbValue::from(subject),
                DbValue::from(rng.gen_range(1_970 * 366..2_009 * 366) as i64),
                DbValue::Float((cost * 100.0).round() / 100.0),
                DbValue::Float((srp * 100.0).round() / 100.0),
                DbValue::from(format!("/img/thumb_{}.gif", i_id % scale.images)),
                DbValue::Int(related(&mut rng)),
                DbValue::Int(related(&mut rng)),
                DbValue::Int(related(&mut rng)),
                DbValue::Int(related(&mut rng)),
                DbValue::Int(related(&mut rng)),
            ],
        )
        .expect("insert item");
        db.execute(
            "INSERT INTO stock (st_i_id, st_qty) VALUES (?, ?)",
            &[
                DbValue::from(i_id),
                DbValue::from(rng.gen_range(10..1_000) as i64),
            ],
        )
        .expect("insert stock");
    }

    // Customers and their addresses.
    for c_id in 1..=scale.customers {
        db.execute(
            "INSERT INTO address (addr_id, addr_street, addr_city, addr_zip, addr_co_id) \
             VALUES (?, ?, ?, ?, ?)",
            &[
                DbValue::from(c_id),
                DbValue::from(format!("{} Main St", rng.gen_range(1..9999))),
                DbValue::from("Williamsburg"),
                DbValue::from(format!("{:05}", rng.gen_range(10000..99999))),
                DbValue::from(rng.gen_range(1..=5) as i64),
            ],
        )
        .expect("insert address");
        let fname = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let lname = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        db.execute(
            "INSERT INTO customer (c_id, c_uname, c_fname, c_lname, c_addr_id, c_phone, \
             c_email, c_since, c_discount) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            &[
                DbValue::from(c_id),
                DbValue::from(format!("user{c_id}")),
                DbValue::from(fname),
                DbValue::from(lname),
                DbValue::from(c_id),
                DbValue::from(format!("555-{:04}", c_id % 10_000)),
                DbValue::from(format!("user{c_id}@example.com")),
                DbValue::from(rng.gen_range(700_000..735_000) as i64),
                DbValue::Float(f64::from(rng.gen_range(0..30)) / 100.0),
            ],
        )
        .expect("insert customer");
    }

    // Orders, order lines, and credit-card transactions.
    let mut ol_id: usize = 0;
    for o_id in 1..=scale.orders {
        let c_id = rng.gen_range(1..=scale.customers);
        let total: f64 = rng.gen_range(10.0..500.0);
        db.execute(
            "INSERT INTO orders (o_id, o_c_id, o_date, o_total, o_status) \
             VALUES (?, ?, ?, ?, ?)",
            &[
                DbValue::from(o_id),
                DbValue::from(c_id),
                DbValue::from(730_000 + o_id as i64),
                DbValue::Float((total * 100.0).round() / 100.0),
                DbValue::from(["PENDING", "PROCESSING", "SHIPPED"][rng.gen_range(0..3)]),
            ],
        )
        .expect("insert order");
        let lines = rng.gen_range(1..=scale.lines_per_order * 2 - 1);
        for _ in 0..lines {
            ol_id += 1;
            db.execute(
                "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) \
                 VALUES (?, ?, ?, ?, ?)",
                &[
                    DbValue::from(ol_id),
                    DbValue::from(o_id),
                    DbValue::from(rng.gen_range(1..=scale.items) as i64),
                    DbValue::from(rng.gen_range(1..=5) as i64),
                    DbValue::Float(0.0),
                ],
            )
            .expect("insert order line");
        }
        db.execute(
            "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_amount, cx_date) \
             VALUES (?, ?, ?, ?)",
            &[
                DbValue::from(o_id),
                DbValue::from(["VISA", "MASTERCARD", "AMEX"][rng.gen_range(0..3)]),
                DbValue::Float((total * 100.0).round() / 100.0),
                DbValue::from(730_000 + o_id as i64),
            ],
        )
        .expect("insert cc transaction");
    }

    PopulationSummary {
        items: scale.items,
        customers: scale.customers,
        orders: scale.orders,
        order_lines: ol_id,
        max_order_id: scale.orders as i64,
    }
}

/// Generates the in-memory static image store the bookstore pages
/// reference (`/img/thumb_<n>.gif`), deterministic in `scale.seed`.
pub(crate) fn build_statics(scale: &ScaleConfig) -> StaticFiles {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x0057_471c);
    let mut statics = StaticFiles::in_memory();
    for n in 0..scale.images {
        let mut bytes = Vec::with_capacity(scale.image_bytes);
        bytes.extend_from_slice(b"GIF89a");
        while bytes.len() < scale.image_bytes {
            bytes.push(rng.gen());
        }
        statics.insert(&format!("/img/thumb_{n}.gif"), bytes);
    }
    statics.insert("/css/site.css", b"body { font-family: serif; }".to_vec());
    statics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populates_expected_counts() {
        let db = Database::new();
        let scale = ScaleConfig::tiny();
        let summary = populate(&db, &scale);
        assert_eq!(db.table_len("item").unwrap(), scale.items);
        assert_eq!(db.table_len("stock").unwrap(), scale.items);
        assert_eq!(db.table_len("customer").unwrap(), scale.customers);
        assert_eq!(db.table_len("address").unwrap(), scale.customers);
        assert_eq!(db.table_len("orders").unwrap(), scale.orders);
        assert_eq!(db.table_len("cc_xacts").unwrap(), scale.orders);
        assert_eq!(db.table_len("order_line").unwrap(), summary.order_lines);
        assert!(summary.order_lines >= scale.orders);
        assert_eq!(summary.max_order_id, scale.orders as i64);
    }

    #[test]
    fn population_is_deterministic() {
        let scale = ScaleConfig::tiny();
        let db1 = Database::new();
        populate(&db1, &scale);
        let db2 = Database::new();
        populate(&db2, &scale);
        for sql in [
            "SELECT i_title, i_subject FROM item WHERE i_id = 42",
            "SELECT c_fname, c_lname FROM customer WHERE c_id = 7",
            "SELECT ol_i_id FROM order_line WHERE ol_o_id = 13 ORDER BY ol_id",
        ] {
            assert_eq!(
                db1.execute(sql, &[]).unwrap(),
                db2.execute(sql, &[]).unwrap(),
                "{sql}"
            );
        }
    }

    #[test]
    fn item_references_are_valid() {
        let db = Database::new();
        let scale = ScaleConfig::tiny();
        populate(&db, &scale);
        // Every item's author exists (join loses no rows).
        let joined = db
            .execute(
                "SELECT COUNT(*) FROM item i JOIN author a ON i.i_a_id = a.a_id",
                &[],
            )
            .unwrap();
        assert_eq!(joined.single_int(), Some(scale.items as i64));
        // Related items are within range.
        let bad = db
            .execute(
                "SELECT COUNT(*) FROM item WHERE i_related1 < 1 OR i_related1 > ?",
                &[DbValue::from(scale.items)],
            )
            .unwrap();
        assert_eq!(bad.single_int(), Some(0));
    }

    #[test]
    fn statics_contain_referenced_thumbnails() {
        let scale = ScaleConfig::tiny();
        let statics = build_statics(&scale);
        assert_eq!(statics.len_hint(), Some(scale.images + 1)); // + site.css
        let (mime, content) = statics.lookup("/img/thumb_0.gif").unwrap();
        assert_eq!(mime, "image/gif");
        assert_eq!(content.len(), scale.image_bytes);
        assert!(statics.lookup("/css/site.css").is_some());
    }
}
