//! Assembles the TPC-W bookstore [`App`].

use crate::pages::{self, TpcwState};
use crate::populate::build_statics;
use crate::scale::ScaleConfig;
use crate::templates::install_templates;
use staged_core::App;
use staged_db::Database;
use staged_sync::atomic::AtomicI64;
use staged_templates::TemplateStore;
use std::sync::Arc;

/// Builds the complete bookstore application against a **populated**
/// database: 14 dynamic routes, all templates, and the static image
/// store. ID counters (orders, carts, customers, …) continue from the
/// populated maxima.
///
/// # Panics
///
/// Panics if the database is missing the TPC-W schema (call
/// [`crate::populate`] first).
pub fn build_app(db: &Database, scale: &ScaleConfig) -> App {
    let max = |sql: &str| -> i64 {
        db.execute(sql, &[])
            .expect("TPC-W schema must be populated before build_app")
            .single_int()
            .unwrap_or(0)
    };
    let state = Arc::new(TpcwState {
        items: scale.items as i64,
        bestseller_window: ((scale.orders / 777).max(1)) as i64,
        next_order_id: AtomicI64::new(max("SELECT MAX(o_id) FROM orders") + 1),
        next_order_line_id: AtomicI64::new(max("SELECT MAX(ol_id) FROM order_line") + 1),
        next_cart_id: AtomicI64::new(max("SELECT MAX(sc_id) FROM shopping_cart") + 1),
        next_cart_line_id: AtomicI64::new(max("SELECT MAX(scl_id) FROM shopping_cart_line") + 1),
        next_customer_id: AtomicI64::new(max("SELECT MAX(c_id) FROM customer") + 1),
    });

    let templates = Arc::new(TemplateStore::new());
    install_templates(&templates).expect("bundled templates compile");

    macro_rules! page {
        ($builder:expr, $path:literal, $name:literal, $handler:path) => {{
            let state = Arc::clone(&state);
            $builder.route($path, $name, move |req, db| $handler(&state, req, db))
        }};
    }

    let builder = App::builder()
        .templates(templates)
        .static_files(build_statics(scale))
        .render_weight_per_kb(scale.render_weight_per_kb)
        .static_weight(scale.static_weight);
    let builder = page!(builder, "/home", "home", pages::home);
    let builder = page!(
        builder,
        "/new_products",
        "new_products",
        pages::new_products
    );
    let builder = page!(
        builder,
        "/best_sellers",
        "best_sellers",
        pages::best_sellers
    );
    let builder = page!(
        builder,
        "/product_detail",
        "product_detail",
        pages::product_detail
    );
    let builder = page!(
        builder,
        "/search_request",
        "search_request",
        pages::search_request
    );
    let builder = page!(
        builder,
        "/execute_search",
        "execute_search",
        pages::execute_search
    );
    let builder = page!(
        builder,
        "/shopping_cart",
        "shopping_cart",
        pages::shopping_cart
    );
    let builder = page!(
        builder,
        "/customer_registration",
        "customer_registration",
        pages::customer_registration
    );
    let builder = page!(builder, "/buy_request", "buy_request", pages::buy_request);
    let builder = page!(builder, "/buy_confirm", "buy_confirm", pages::buy_confirm);
    let builder = page!(
        builder,
        "/order_inquiry",
        "order_inquiry",
        pages::order_inquiry
    );
    let builder = page!(
        builder,
        "/order_display",
        "order_display",
        pages::order_display
    );
    let builder = page!(
        builder,
        "/admin_request",
        "admin_request",
        pages::admin_request
    );
    let builder = page!(
        builder,
        "/admin_confirm",
        "admin_response",
        pages::admin_confirm
    );
    // Read-only browsing pages may be served from the staged server's
    // stale-render cache during a database outage. Mutating pages
    // (cart, checkout, registration, admin confirm) must never be — a
    // stale "order confirmed" would be a lie.
    builder
        .stale_cacheable("/home")
        .stale_cacheable("/new_products")
        .stale_cacheable("/best_sellers")
        .stale_cacheable("/product_detail")
        .stale_cacheable("/search_request")
        .stale_cacheable("/execute_search")
        .stale_cacheable("/order_inquiry")
        .stale_cacheable("/order_display")
        .stale_cacheable("/admin_request")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::populate;

    #[test]
    fn builds_all_fourteen_routes() {
        let db = Database::new();
        let scale = ScaleConfig::tiny();
        populate(&db, &scale);
        let app = build_app(&db, &scale);
        let paths = app.route_paths();
        assert_eq!(paths.len(), 14);
        for p in [
            "/home",
            "/new_products",
            "/best_sellers",
            "/product_detail",
            "/search_request",
            "/execute_search",
            "/shopping_cart",
            "/customer_registration",
            "/buy_request",
            "/buy_confirm",
            "/order_inquiry",
            "/order_display",
            "/admin_request",
            "/admin_confirm",
        ] {
            assert!(paths.contains(&p.to_string()), "missing route {p}");
        }
        assert_eq!(app.templates().len(), 17);
        assert!(app.statics().lookup("/img/thumb_0.gif").is_some());
    }
}
