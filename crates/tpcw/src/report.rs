//! Workload results: per-page response times and completion counts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// One page's client-side measurements (one row of the paper's Tables
/// 3 and 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageReport {
    /// Route key (e.g. `best_sellers`).
    pub route: String,
    /// Paper-style display name (e.g. `TPC-W best sellers`).
    pub name: String,
    /// Completed web interactions (Table 4).
    pub count: u64,
    /// Mean web-interaction response time in milliseconds (Table 3,
    /// where the paper reports seconds at its unscaled time base).
    pub mean_ms: f64,
    /// Approximate 95th-percentile response time in milliseconds
    /// (bucket resolution; tail behaviour the mean hides).
    pub p95_ms: f64,
    /// Failed interactions (connection errors or non-2xx responses).
    pub errors: u64,
}

/// The full result of one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Per-page rows, sorted by display name (the paper's table order).
    pub pages: Vec<PageReport>,
    /// Measurement interval in seconds.
    pub duration_secs: f64,
    /// Emulated browsers.
    pub ebs: usize,
    /// Total completed web interactions across all pages.
    pub total_interactions: u64,
    /// Total failed interactions.
    pub total_errors: u64,
    /// Interactions the server shed with `503` (also in
    /// `total_errors`).
    pub total_sheds: u64,
    /// Mean response time across all successful interactions, ms.
    pub overall_mean_ms: f64,
    /// Approximate median response time across all successful
    /// interactions, ms (bucket resolution).
    pub overall_p50_ms: f64,
    /// Approximate 99th-percentile response time across all successful
    /// interactions, ms (the overload benchmarks' tail metric).
    pub overall_p99_ms: f64,
}

impl WorkloadReport {
    /// Interactions per minute (the paper's throughput unit).
    pub fn interactions_per_minute(&self) -> f64 {
        if self.duration_secs == 0.0 {
            return 0.0;
        }
        self.total_interactions as f64 * 60.0 / self.duration_secs
    }

    /// Goodput: successfully served interactions per second (shed and
    /// failed interactions excluded).
    pub fn goodput_per_second(&self) -> f64 {
        if self.duration_secs == 0.0 {
            return 0.0;
        }
        self.total_interactions as f64 / self.duration_secs
    }

    /// Fraction of attempted interactions the server shed with `503`.
    pub fn shed_rate(&self) -> f64 {
        let attempted = self.total_interactions + self.total_errors;
        if attempted == 0 {
            return 0.0;
        }
        self.total_sheds as f64 / attempted as f64
    }

    /// The report row for a route, if present.
    pub fn page(&self, route: &str) -> Option<&PageReport> {
        self.pages.iter().find(|p| p.route == route)
    }

    /// Mean response time for a route.
    pub fn mean_ms(&self, route: &str) -> Option<f64> {
        self.page(route).map(|p| p.mean_ms)
    }

    /// Renders the paper's Table 3 + Table 4 for an unmodified /
    /// modified pair of runs.
    pub fn comparison_table(unmodified: &Self, modified: &Self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>12} {:>12}   {:>10} {:>10}\n",
            "web page name", "unmod (ms)", "mod (ms)", "unmod (n)", "mod (n)"
        ));
        out.push_str(&"-".repeat(88));
        out.push('\n');
        for u in &unmodified.pages {
            let m = modified.page(&u.route);
            out.push_str(&format!(
                "{:<36} {:>12.2} {:>12.2}   {:>10} {:>10}\n",
                u.name,
                u.mean_ms,
                m.map(|p| p.mean_ms).unwrap_or(f64::NAN),
                u.count,
                m.map(|p| p.count).unwrap_or(0),
            ));
        }
        out.push_str(&"-".repeat(88));
        out.push('\n');
        let gain = if unmodified.total_interactions > 0 {
            (modified.total_interactions as f64 / unmodified.total_interactions as f64 - 1.0)
                * 100.0
        } else {
            f64::NAN
        };
        out.push_str(&format!(
            "{:<36} {:>12} {:>12}   {:>10} {:>10}\n",
            "TOTAL (web interactions)",
            "",
            "",
            unmodified.total_interactions,
            modified.total_interactions,
        ));
        out.push_str(&format!("overall throughput change: {gain:+.1}%\n"));
        out
    }
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<36} {:>10} {:>12} {:>10} {:>8}",
            "web page name", "count", "mean (ms)", "p95 (ms)", "errors"
        )?;
        for p in &self.pages {
            writeln!(
                f,
                "{:<36} {:>10} {:>12.2} {:>10.1} {:>8}",
                p.name, p.count, p.mean_ms, p.p95_ms, p.errors
            )?;
        }
        writeln!(
            f,
            "total: {} interactions in {:.1}s ({:.0}/min), {} errors ({} shed)",
            self.total_interactions,
            self.duration_secs,
            self.interactions_per_minute(),
            self.total_errors,
            self.total_sheds
        )?;
        writeln!(
            f,
            "overall: mean {:.2} ms, p50 {:.1} ms, p99 {:.1} ms",
            self.overall_mean_ms, self.overall_p50_ms, self.overall_p99_ms
        )
    }
}

/// Converts a mean duration to the milliseconds field.
pub(crate) fn to_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(count: u64, ms: f64) -> WorkloadReport {
        WorkloadReport {
            pages: vec![PageReport {
                route: "home".into(),
                name: "TPC-W home interaction".into(),
                count,
                mean_ms: ms,
                p95_ms: ms * 2.0,
                errors: 0,
            }],
            duration_secs: 30.0,
            ebs: 10,
            total_interactions: count,
            total_errors: 0,
            total_sheds: 0,
            overall_mean_ms: ms,
            overall_p50_ms: ms,
            overall_p99_ms: ms * 3.0,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report(600, 5.0);
        assert!((r.interactions_per_minute() - 1200.0).abs() < 1e-9);
        assert_eq!(r.mean_ms("home"), Some(5.0));
        assert_eq!(r.mean_ms("zap"), None);
    }

    #[test]
    fn comparison_table_shows_gain() {
        let unmod = report(1000, 50.0);
        let modded = report(1313, 2.0);
        let table = WorkloadReport::comparison_table(&unmod, &modded);
        assert!(table.contains("TPC-W home interaction"));
        assert!(table.contains("+31.3%"));
    }

    #[test]
    fn display_renders() {
        let text = report(10, 1.5).to_string();
        assert!(text.contains("home interaction"));
        assert!(text.contains("10"));
    }

    #[test]
    fn to_ms_converts() {
        assert!((to_ms(Duration::from_millis(1500)) - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_and_shed_rate() {
        let mut r = report(600, 5.0);
        assert!((r.goodput_per_second() - 20.0).abs() < 1e-9);
        assert_eq!(r.shed_rate(), 0.0);
        r.total_errors = 150;
        r.total_sheds = 150;
        assert!((r.shed_rate() - 0.2).abs() < 1e-9);
        assert!(r.to_string().contains("(150 shed)"));
    }
}
