//! Cross-type metrics scenarios: the measurement pipeline the
//! evaluation harness runs on.

use staged_metrics::{Counter, Gauge, Histogram, Stopwatch, Summary, TimeSeries};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A miniature of the server's completion pipeline: many workers record
/// latencies and bump counters; the aggregates must be exact.
#[test]
fn concurrent_measurement_pipeline_is_exact() {
    let latency = Arc::new(Summary::new());
    let histogram = Arc::new(Histogram::new());
    let completed = Arc::new(Counter::new());
    let in_flight = Arc::new(Gauge::new());

    let handles: Vec<_> = (0..8)
        .map(|worker| {
            let latency = Arc::clone(&latency);
            let histogram = Arc::clone(&histogram);
            let completed = Arc::clone(&completed);
            let in_flight = Arc::clone(&in_flight);
            thread::spawn(move || {
                for i in 0..250u64 {
                    in_flight.increment();
                    let sample = Duration::from_micros(worker * 250 + i);
                    latency.record(sample);
                    histogram.record(sample);
                    completed.increment();
                    in_flight.decrement();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(completed.value(), 2000);
    assert_eq!(in_flight.value(), 0);
    let snap = latency.snapshot();
    assert_eq!(snap.count, 2000);
    // Sum of 0..2000 µs.
    assert_eq!(snap.sum_micros, (0..2000u128).sum::<u128>());
    assert_eq!(snap.min_micros, 0);
    assert_eq!(snap.max_micros, 1999);
    assert_eq!(histogram.count(), 2000);
    assert_eq!(histogram.max(), Duration::from_micros(1999));
    // p50 within bucket resolution of the true median (~1000µs).
    let p50 = histogram.quantile(0.5);
    assert!(p50 >= Duration::from_micros(512) && p50 <= Duration::from_micros(2048));
}

/// Stopwatch + TimeSeries as used by the throughput figures: events
/// recorded across a warm-up restart land in the right window.
#[test]
fn warmup_restart_discards_rampup_events() {
    let series = TimeSeries::new(Duration::from_millis(10));
    for _ in 0..50 {
        series.increment(); // ramp-up traffic
    }
    assert_eq!(series.total(), 50.0);
    series.restart(); // measurement begins
    let sw = Stopwatch::start();
    for _ in 0..30 {
        series.increment();
    }
    assert!(sw.elapsed() < Duration::from_secs(1));
    assert_eq!(series.total(), 30.0, "ramp-up events must be discarded");
}

/// Histograms and summaries agree on count and mean for identical
/// streams (histogram mean is exact, not bucketed).
#[test]
fn histogram_and_summary_agree() {
    let h = Histogram::new();
    let s = Summary::new();
    for us in [3u64, 17, 1000, 42, 99999, 7] {
        h.record(Duration::from_micros(us));
        s.record(Duration::from_micros(us));
    }
    assert_eq!(h.count(), s.count());
    assert_eq!(h.mean(), s.snapshot().mean());
    assert_eq!(h.min(), Duration::from_micros(3));
    assert_eq!(h.max(), Duration::from_micros(99999));
}

/// Counter reset is atomic with respect to concurrent increments: no
/// events are double-counted or lost across a reset boundary.
#[test]
fn counter_reset_loses_nothing() {
    let c = Arc::new(Counter::new());
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..10_000 {
                    c.increment();
                }
            })
        })
        .collect();
    let mut harvested = 0u64;
    for _ in 0..50 {
        harvested += c.reset();
        thread::yield_now();
    }
    for w in writers {
        w.join().unwrap();
    }
    harvested += c.reset();
    assert_eq!(harvested, 40_000);
}
