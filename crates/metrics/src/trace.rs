//! Per-request, per-stage tracing with pooled allocation.
//!
//! Every request admitted by the staged server carries a [`Trace`]: a
//! fixed-capacity event log (enqueue/dequeue/stage-done timestamps,
//! the classifier's decision, shed/stale/breaker events) backed by a
//! `Box` recycled through a freelist, so steady-state tracing does not
//! allocate on the hot path. When the request reaches a terminal state
//! the trace is *finished* — explicitly on send/shed/expiry, or by
//! `Drop` if the job was discarded (queue closed, worker panicked) —
//! which guarantees exactly one terminal event per trace, the invariant
//! the shedding property test pins.
//!
//! Finished traces fold into a [`TraceHub`]: outcome counters and a
//! request-duration histogram registered in the [`Registry`], plus a
//! bounded ring of the N slowest served traces for tail-latency
//! forensics, dumpable as JSON via `GET /debug/traces`.
//!
//! # Examples
//!
//! ```
//! use staged_metrics::{Registry, Stage, TraceHub, TraceOutcome};
//!
//! let registry = Registry::new();
//! let hub = TraceHub::new(&registry, 4);
//! let mut trace = hub.start();
//! trace.enqueued(Stage::Parse);
//! trace.dequeued();
//! trace.stage_done();
//! trace.finish(TraceOutcome::Served, Some("home"));
//! assert_eq!(hub.outstanding(), 0);
//! assert_eq!(registry.value("trace_outcomes_total", &[("outcome", "served")]), Some(1.0));
//! ```

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::registry::Registry;
use staged_sync::atomic::{AtomicUsize, Ordering};
use staged_sync::{OrderedMutex, Rank};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Rank of the trace freelist (DESIGN.md §10): metrics band, below the
/// histogram rank; never held while taking any other lock.
const TRACE_POOL_RANK: Rank = Rank::new(412);

/// Rank of the slowest-trace ring: metrics band, distinct from the
/// freelist so hold-one-take-other is still ascending if ever needed.
const TRACE_RING_RANK: Rank = Rank::new(414);

/// Fixed per-trace event capacity. A request crosses at most four pools
/// (parse → classify → dynamic → render), each contributing enqueue /
/// dequeue / done, plus a handful of annotations; 24 slots leave slack
/// for keep-alive restarts. Overflow drops events silently rather than
/// allocating.
const MAX_EVENTS: usize = 24;

/// Upper bound on recycled trace boxes kept in the freelist. Bounds
/// memory if a burst creates many concurrent traces that then all
/// finish.
const FREELIST_CAP: usize = 1024;

/// The pipeline stage a trace event is attributed to (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Header-parsing pool.
    Parse,
    /// Static-content pool.
    Static,
    /// General (quick) dynamic pool.
    General,
    /// Lengthy dynamic pool.
    Lengthy,
    /// Render pool.
    Render,
    /// Render pool reserved for lengthy pages (split-render mode).
    RenderLengthy,
}

impl Stage {
    /// Stable label used in JSON dumps and metric label values.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Static => "static",
            Stage::General => "general",
            Stage::Lengthy => "lengthy",
            Stage::Render => "render",
            Stage::RenderLengthy => "render-lengthy",
        }
    }
}

/// One kind of event on a trace's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Pushed onto a stage's queue.
    Enqueued,
    /// Popped off the queue by a worker.
    Dequeued,
    /// Stage handler finished (the gap to the next `Enqueued` is
    /// hand-off cost; the gap from the last `StageDone` to the terminal
    /// outcome is response-write time).
    StageDone,
    /// Classifier routed the page to the general (quick) pool.
    ClassifiedQuick,
    /// Classifier routed the page to the lengthy pool.
    ClassifiedLengthy,
    /// Rejected at a full queue or by overload control.
    Shed,
    /// Served a stale cached render (degradation ladder).
    StaleServed,
    /// Fell through the ladder to a 503 (breaker open, no stale copy).
    Unavailable,
    /// The per-request clock (re)started — emitted by
    /// [`Trace::mark_start`] once the request line arrives, so
    /// keep-alive think time never counts against the request.
    Started,
}

impl TraceEvent {
    /// Stable label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            TraceEvent::Enqueued => "enqueued",
            TraceEvent::Dequeued => "dequeued",
            TraceEvent::StageDone => "stage_done",
            TraceEvent::ClassifiedQuick => "classified_quick",
            TraceEvent::ClassifiedLengthy => "classified_lengthy",
            TraceEvent::Shed => "shed",
            TraceEvent::StaleServed => "stale_served",
            TraceEvent::Unavailable => "unavailable",
            TraceEvent::Started => "started",
        }
    }
}

/// The terminal state of a trace. Every trace reaches exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// A response was written (including stale and error pages).
    Served,
    /// Rejected by overload control (503 + Retry-After).
    Shed,
    /// Deadline expired before completion.
    Expired,
    /// The job was discarded without an explicit finish — queue closed,
    /// worker panicked, or connection died. Applied by `Drop`.
    Dropped,
    /// A health/metrics probe; counted separately and never ring-eligible.
    Probe,
}

impl TraceOutcome {
    const ALL: [TraceOutcome; 5] = [
        TraceOutcome::Served,
        TraceOutcome::Shed,
        TraceOutcome::Expired,
        TraceOutcome::Dropped,
        TraceOutcome::Probe,
    ];

    /// Stable label used for the `outcome` metric label and JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            TraceOutcome::Served => "served",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Expired => "expired",
            TraceOutcome::Dropped => "dropped",
            TraceOutcome::Probe => "probe",
        }
    }

    fn index(self) -> usize {
        match self {
            TraceOutcome::Served => 0,
            TraceOutcome::Shed => 1,
            TraceOutcome::Expired => 2,
            TraceOutcome::Dropped => 3,
            TraceOutcome::Probe => 4,
        }
    }
}

#[derive(Clone, Copy)]
struct Event {
    kind: TraceEvent,
    stage: Option<Stage>,
    at_micros: u64,
}

struct TraceData {
    started: Instant,
    events: [Event; MAX_EVENTS],
    len: usize,
    /// Current stage, set by `enqueued`; later events inherit it.
    stage: Option<Stage>,
    /// Page name; empty means unknown. Reused `String` so recycled
    /// traces only reallocate when a longer name arrives.
    page: String,
}

impl TraceData {
    fn fresh() -> Box<TraceData> {
        Box::new(TraceData {
            started: Instant::now(),
            events: [Event {
                kind: TraceEvent::Started,
                stage: None,
                at_micros: 0,
            }; MAX_EVENTS],
            len: 0,
            stage: None,
            page: String::new(),
        })
    }

    fn reset(&mut self) {
        self.started = Instant::now();
        self.len = 0;
        self.stage = None;
        self.page.clear();
    }

    fn push(&mut self, kind: TraceEvent) {
        if self.len < MAX_EVENTS {
            self.events[self.len] = Event {
                kind,
                stage: self.stage,
                at_micros: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            };
            self.len += 1;
        }
    }
}

/// A finished trace admitted to the slow ring; owns its event copy.
struct CompletedTrace {
    total_micros: u64,
    page: Option<String>,
    events: Vec<Event>,
}

struct HubInner {
    // The boxes ARE the pooled allocations: a recycled `Box<TraceData>`
    // moves between the freelist and a live `Trace` by pointer, where
    // an unboxed freelist would copy the fixed event array on every
    // checkout.
    #[allow(clippy::vec_box)]
    freelist: OrderedMutex<Vec<Box<TraceData>>>,
    ring: OrderedMutex<Vec<CompletedTrace>>,
    ring_capacity: usize,
    outstanding: AtomicUsize,
    outcomes: [Arc<Counter>; 5],
    duration: Arc<Histogram>,
}

/// The aggregation point for finished [`Trace`]s; see the [module
/// docs](self). Cheap to clone (one `Arc`).
#[derive(Clone)]
pub struct TraceHub {
    inner: Arc<HubInner>,
}

impl std::fmt::Debug for TraceHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHub")
            .field("outstanding", &self.outstanding())
            .field("ring_capacity", &self.inner.ring_capacity)
            .finish()
    }
}

impl TraceHub {
    /// Creates a hub keeping the `ring_capacity` slowest served traces,
    /// registering `trace_outcomes_total{outcome=…}` counters and the
    /// `request_duration_seconds` histogram in `registry`.
    pub fn new(registry: &Registry, ring_capacity: usize) -> TraceHub {
        let outcomes = TraceOutcome::ALL.map(|outcome| {
            registry.counter("trace_outcomes_total", &[("outcome", outcome.label())])
        });
        let duration = registry.histogram("request_duration_seconds", &[]);
        TraceHub {
            inner: Arc::new(HubInner {
                freelist: OrderedMutex::new(TRACE_POOL_RANK, "metrics.trace_pool", Vec::new()),
                ring: OrderedMutex::new(TRACE_RING_RANK, "metrics.trace_ring", Vec::new()),
                ring_capacity,
                outstanding: AtomicUsize::new(0),
                outcomes,
                duration,
            }),
        }
    }

    /// Begins a trace for a newly accepted request, reusing a recycled
    /// allocation when one is available.
    pub fn start(&self) -> Trace {
        let data = self.inner.freelist.lock().pop();
        let data = match data {
            Some(mut d) => {
                d.reset();
                d
            }
            None => TraceData::fresh(),
        };
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        Trace {
            hub: Arc::clone(&self.inner),
            data: Some(data),
        }
    }

    /// Number of traces started but not yet finished. Zero when the
    /// server is idle — the leak detector the shedding property test
    /// asserts on.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Number of traces currently held in the slow ring.
    pub fn ring_len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    /// Dumps the slow ring as JSON, slowest first:
    /// `{"traces":[{"total_us":…,"page":…,"events":[…]},…]}`.
    pub fn traces_json(&self) -> String {
        let mut completed: Vec<(u64, Option<String>, Vec<Event>)> = {
            let ring = self.inner.ring.lock();
            ring.iter()
                .map(|t| (t.total_micros, t.page.clone(), t.events.clone()))
                .collect()
        };
        completed.sort_by_key(|t| std::cmp::Reverse(t.0));
        let mut out = String::from("{\"traces\":[");
        for (i, (total, page, events)) in completed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"total_us\":{total},\"page\":");
            match page {
                Some(p) => {
                    let _ = write!(out, "\"{}\"", escape_json(p));
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"events\":[");
            for (j, e) in events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"event\":\"{}\",\"stage\":", e.kind.label());
                match e.stage {
                    Some(s) => {
                        let _ = write!(out, "\"{}\"", s.label());
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"at_us\":{}}}", e.at_micros);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl HubInner {
    fn finish(&self, mut data: Box<TraceData>, outcome: TraceOutcome) {
        let total = data.started.elapsed();
        self.outcomes[outcome.index()].increment();
        if outcome == TraceOutcome::Served {
            self.duration.record(total);
            self.offer_to_ring(&data, total);
        }
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut freelist = self.freelist.lock();
        if freelist.len() < FREELIST_CAP {
            data.reset();
            freelist.push(data);
        }
    }

    /// Admits `data` to the slow ring if it beats the current fastest
    /// resident (or the ring is not yet full). Only admitted candidates
    /// allocate — the common fast request copies nothing.
    fn offer_to_ring(&self, data: &TraceData, total: std::time::Duration) {
        if self.ring_capacity == 0 {
            return;
        }
        let total_micros = u64::try_from(total.as_micros()).unwrap_or(u64::MAX);
        {
            let ring = self.ring.lock();
            if ring.len() >= self.ring_capacity
                && ring.iter().all(|t| t.total_micros >= total_micros)
            {
                return;
            }
        }
        // Build the owned copy outside the lock; cheap relative to the
        // slow request that earned it.
        let completed = CompletedTrace {
            total_micros,
            page: if data.page.is_empty() {
                None
            } else {
                Some(data.page.clone())
            },
            events: data.events[..data.len].to_vec(),
        };
        let mut ring = self.ring.lock();
        if ring.len() < self.ring_capacity {
            ring.push(completed);
        } else if let Some(min_idx) = (0..ring.len()).min_by_key(|&i| ring[i].total_micros) {
            if ring[min_idx].total_micros < total_micros {
                ring[min_idx] = completed;
            }
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A per-request event log; created by [`TraceHub::start`], finished
/// exactly once — explicitly via [`Trace::finish`] or implicitly (as
/// [`TraceOutcome::Dropped`]) when dropped unfinished.
///
/// All recording methods are allocation-free: events land in a fixed
/// array inside a pooled `Box`.
pub struct Trace {
    hub: Arc<HubInner>,
    data: Option<Box<TraceData>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.data.as_ref().map_or(0, |d| d.len);
        f.debug_struct("Trace").field("events", &len).finish()
    }
}

impl Trace {
    fn push(&mut self, kind: TraceEvent) {
        if let Some(data) = self.data.as_mut() {
            data.push(kind);
        }
    }

    /// Records entry into `stage`'s queue; subsequent events are
    /// attributed to that stage.
    pub fn enqueued(&mut self, stage: Stage) {
        if let Some(data) = self.data.as_mut() {
            data.stage = Some(stage);
            data.push(TraceEvent::Enqueued);
        }
    }

    /// Records a worker picking the request up from the current stage's
    /// queue; the gap since [`Trace::enqueued`] is that stage's queue
    /// wait.
    pub fn dequeued(&mut self) {
        self.push(TraceEvent::Dequeued);
    }

    /// Records the current stage's handler finishing.
    pub fn stage_done(&mut self) {
        self.push(TraceEvent::StageDone);
    }

    /// Records the classifier's routing decision.
    pub fn classified(&mut self, lengthy: bool) {
        self.push(if lengthy {
            TraceEvent::ClassifiedLengthy
        } else {
            TraceEvent::ClassifiedQuick
        });
    }

    /// Records a free-form annotation ([`TraceEvent::Shed`],
    /// [`TraceEvent::StaleServed`], …) against the current stage.
    pub fn note(&mut self, event: TraceEvent) {
        self.push(event);
    }

    /// Restarts the per-request clock and rebases prior events to zero.
    ///
    /// The staged server calls this once the request line has arrived,
    /// mirroring the deadline semantics: on a keep-alive connection the
    /// trace object exists while the client *thinks*, and that idle time
    /// must not count as request latency or pollute the slow ring.
    pub fn mark_start(&mut self) {
        if let Some(data) = self.data.as_mut() {
            data.started = Instant::now();
            for e in &mut data.events[..data.len] {
                e.at_micros = 0;
            }
            data.push(TraceEvent::Started);
        }
    }

    /// Finishes the trace with `outcome`, attributing it to `page` when
    /// known. Consumes the trace; the backing allocation returns to the
    /// hub's freelist.
    pub fn finish(mut self, outcome: TraceOutcome, page: Option<&str>) {
        if let Some(mut data) = self.data.take() {
            if let Some(p) = page {
                data.page.clear();
                data.page.push_str(p);
            }
            self.hub.finish(data, outcome);
        }
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            self.hub.finish(data, TraceOutcome::Dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn hub() -> (Registry, TraceHub) {
        let registry = Registry::new();
        let hub = TraceHub::new(&registry, 3);
        (registry, hub)
    }

    fn outcome_count(registry: &Registry, outcome: &str) -> f64 {
        registry
            .value("trace_outcomes_total", &[("outcome", outcome)])
            .unwrap_or(-1.0)
    }

    #[test]
    fn explicit_finish_counts_outcome_and_duration() {
        let (registry, hub) = hub();
        let mut t = hub.start();
        t.enqueued(Stage::Parse);
        t.dequeued();
        t.stage_done();
        t.finish(TraceOutcome::Served, Some("home"));
        assert_eq!(outcome_count(&registry, "served"), 1.0);
        assert_eq!(registry.value("request_duration_seconds", &[]), Some(1.0));
        assert_eq!(hub.outstanding(), 0);
        assert_eq!(hub.ring_len(), 1);
    }

    #[test]
    fn drop_without_finish_is_a_terminal_dropped_event() {
        let (registry, hub) = hub();
        {
            let mut t = hub.start();
            t.enqueued(Stage::Static);
        }
        assert_eq!(outcome_count(&registry, "dropped"), 1.0);
        assert_eq!(hub.outstanding(), 0);
        assert_eq!(hub.ring_len(), 0, "dropped traces never enter the ring");
    }

    #[test]
    fn shed_and_probe_outcomes_skip_ring_and_duration() {
        let (registry, hub) = hub();
        let mut t = hub.start();
        t.enqueued(Stage::Parse);
        t.note(TraceEvent::Shed);
        t.finish(TraceOutcome::Shed, None);
        hub.start().finish(TraceOutcome::Probe, None);
        assert_eq!(outcome_count(&registry, "shed"), 1.0);
        assert_eq!(outcome_count(&registry, "probe"), 1.0);
        assert_eq!(registry.value("request_duration_seconds", &[]), Some(0.0));
        assert_eq!(hub.ring_len(), 0);
    }

    #[test]
    fn ring_keeps_the_slowest_n() {
        let (_registry, hub) = hub();
        for sleep_us in [4000u64, 1000, 3000, 2000, 5000] {
            let mut t = hub.start();
            t.enqueued(Stage::Parse);
            std::thread::sleep(Duration::from_micros(sleep_us));
            t.finish(TraceOutcome::Served, Some("p"));
        }
        assert_eq!(hub.ring_len(), 3);
        let json = hub.traces_json();
        // Slowest-first ordering, and the two fastest were evicted.
        let totals: Vec<u64> = json
            .split("\"total_us\":")
            .skip(1)
            .map(|s| s.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(totals.len(), 3);
        assert!(totals.windows(2).all(|w| w[0] >= w[1]), "{totals:?}");
        assert!(totals[2] >= 2500, "kept the slow ones: {totals:?}");
    }

    #[test]
    fn traces_json_shape() {
        let (_registry, hub) = hub();
        let mut t = hub.start();
        t.enqueued(Stage::Parse);
        t.dequeued();
        t.classified(true);
        t.finish(TraceOutcome::Served, Some("search"));
        let json = hub.traces_json();
        assert!(json.starts_with("{\"traces\":["), "{json}");
        assert!(json.contains("\"page\":\"search\""), "{json}");
        assert!(
            json.contains("{\"event\":\"enqueued\",\"stage\":\"parse\",\"at_us\":"),
            "{json}"
        );
        assert!(json.contains("\"event\":\"classified_lengthy\""), "{json}");
    }

    #[test]
    fn freelist_recycles_allocations() {
        let (_registry, hub) = hub();
        let t = hub.start();
        t.finish(TraceOutcome::Probe, None);
        // Second start must reuse the recycled box (freelist non-empty).
        let t2 = hub.start();
        assert_eq!(hub.inner.freelist.lock().len(), 0);
        t2.finish(TraceOutcome::Probe, None);
        assert_eq!(hub.inner.freelist.lock().len(), 1);
    }

    #[test]
    fn mark_start_rebases_prior_events() {
        let (_registry, hub) = hub();
        let mut t = hub.start();
        t.enqueued(Stage::Parse);
        std::thread::sleep(Duration::from_millis(2));
        t.mark_start();
        let data = t.data.as_ref().unwrap();
        assert!(data.events[..data.len].iter().all(|e| e.at_micros <= 1));
        t.finish(TraceOutcome::Served, None);
    }

    #[test]
    fn event_overflow_is_silent() {
        let (_registry, hub) = hub();
        let mut t = hub.start();
        for _ in 0..(MAX_EVENTS * 2) {
            t.dequeued();
        }
        assert_eq!(t.data.as_ref().unwrap().len, MAX_EVENTS);
        t.finish(TraceOutcome::Served, None);
    }

    #[test]
    fn empty_ring_dumps_empty_array() {
        let (_registry, hub) = hub();
        assert_eq!(hub.traces_json(), "{\"traces\":[]}");
    }
}
