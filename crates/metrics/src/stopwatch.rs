//! A small convenience timer.

use std::time::{Duration, Instant};

/// Measures elapsed wall-clock time.
///
/// The staged server uses stopwatches to measure the *data generation*
/// interval of each dynamic request (from queue acquisition until the
/// unrendered template is enqueued for rendering), which is the paper's
/// per-page service-time signal.
///
/// # Examples
///
/// ```
/// use staged_metrics::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The instant the stopwatch was started.
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Restarts the stopwatch and returns the elapsed time up to now.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.started;
        self.started = now;
        lap
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        thread::sleep(Duration::from_millis(5));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(4));
        assert!(sw.elapsed() < first);
    }

    #[test]
    fn default_is_started() {
        let sw = Stopwatch::default();
        assert!(sw.elapsed() < Duration::from_secs(10));
    }
}
