//! A named-metric registry with labels and a Prometheus text encoder.
//!
//! The registry is the one coherent observability surface the servers
//! expose: counters, gauges, and histograms are registered once (at
//! server start) under Prometheus-style names with label pairs, and the
//! whole registry renders as text exposition format (version 0.0.4) for
//! `GET /metrics`. There is deliberately no dependency: the encoder and
//! the [`validate_exposition`] checker are hand-rolled.
//!
//! Metric names must match `[a-z_]+(_total|_seconds|_bytes)?` — lower
//! case and underscores only, with the conventional unit/total suffixes.
//! Registration panics on an invalid name (a programmer error), and
//! `cargo xtask lint` enforces the same rule statically on call sites.
//!
//! # Examples
//!
//! ```
//! use staged_metrics::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total", &[("tier", "stale")]);
//! hits.increment();
//! registry.gauge_fn("queue_depth", &[("stage", "render")], || 3.0);
//!
//! let text = registry.encode_prometheus();
//! assert!(text.contains("cache_hits_total{tier=\"stale\"} 1"));
//! assert!(text.contains("queue_depth{stage=\"render\"} 3"));
//! staged_metrics::validate_exposition(&text).unwrap();
//! ```

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::snapshot::fmt_value;
use staged_sync::{OrderedMutex, Rank};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Rank of the registry's entry list (DESIGN.md §10): within the
/// metrics band (400–420) and *below* the histogram rank, so encoding
/// never takes a metric's own lock while holding the registry lock —
/// entries are cloned out (they are `Arc`s) and evaluated lock-free.
const REGISTRY_RANK: Rank = Rank::new(402);

/// A shareable "read the current gauge value" closure.
pub type GaugeRead = Arc<dyn Fn() -> f64 + Send + Sync>;

/// A shareable "read the current counter value" closure.
pub type CounterRead = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A closure producing `(label value, sample)` pairs for a metric whose
/// label set is only known at scrape time (e.g. per-page averages).
pub type Collect = Arc<dyn Fn() -> Vec<(String, f64)> + Send + Sync>;

enum Value {
    Counter(Arc<Counter>),
    CounterFn(CounterRead),
    GaugeFn(GaugeRead),
    Histogram(Arc<Histogram>),
    Collector {
        label: &'static str,
        collect: Collect,
    },
}

impl Value {
    fn type_label(&self) -> &'static str {
        match self {
            Value::Counter(_) | Value::CounterFn(_) => "counter",
            Value::GaugeFn(_) | Value::Collector { .. } => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    value: Value,
}

/// A registry of named metrics with labels; see the [module
/// docs](self) for the naming rules and an example.
///
/// Cheap to share behind an `Arc`; registration normally happens once at
/// server start, scrapes clone the (small) entry list and read every
/// metric without holding the registry lock.
pub struct Registry {
    entries: OrderedMutex<Vec<Arc<Entry>>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            entries: OrderedMutex::new(REGISTRY_RANK, "metrics.registry", Vec::new()),
        }
    }
}

/// Whether `name` matches `[a-z_]+(_total|_seconds|_bytes)?` — since
/// the suffix group is itself `[a-z_]+`, this is exactly "non-empty,
/// lowercase letters and underscores only".
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|b| b == b'_' || b.is_ascii_lowercase())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&self, name: &'static str, labels: &[(&'static str, &str)], value: Value) {
        assert!(
            valid_metric_name(name),
            "metric name {name:?} must match [a-z_]+(_total|_seconds|_bytes)?"
        );
        let entry = Arc::new(Entry {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
            value,
        });
        self.entries.lock().push(entry);
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<Arc<Entry>> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.name == name && labels_match(&e.labels, labels))
            .map(Arc::clone)
    }

    /// Registers (or retrieves) an owned counter under `name` + `labels`.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Counter> {
        if let Some(entry) = self.find(name, labels) {
            if let Value::Counter(c) = &entry.value {
                return Arc::clone(c);
            }
        }
        let c = Arc::new(Counter::new());
        self.insert(name, labels, Value::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a counter whose value is read through a closure — how
    /// pre-existing `Counter`s (pool stats, server stats) join the
    /// registry without being moved.
    pub fn counter_fn(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(name, labels, Value::CounterFn(Arc::new(read)));
    }

    /// Registers a gauge whose value is read through a closure (queue
    /// depths, `t_spare`/`t_reserve`, busy workers).
    pub fn gauge_fn(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        read: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.insert(name, labels, Value::GaugeFn(Arc::new(read)));
    }

    /// Registers (or retrieves) an owned histogram under `name` +
    /// `labels`.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Histogram> {
        if let Some(entry) = self.find(name, labels) {
            if let Value::Histogram(h) = &entry.value {
                return Arc::clone(h);
            }
        }
        let h = Arc::new(Histogram::new());
        self.insert(name, labels, Value::Histogram(Arc::clone(&h)));
        h
    }

    /// Registers an externally owned histogram (e.g. a queue's wait
    /// histogram or a pool's service histogram).
    pub fn register_histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.insert(name, labels, Value::Histogram(histogram));
    }

    /// Registers a gauge family whose label values are only known at
    /// scrape time: `collect` returns `(value of `label`, sample)`
    /// pairs — e.g. per-page service-time averages.
    pub fn gauge_collector(
        &self,
        name: &'static str,
        label: &'static str,
        collect: impl Fn() -> Vec<(String, f64)> + Send + Sync + 'static,
    ) {
        self.insert(
            name,
            &[],
            Value::Collector {
                label,
                collect: Arc::new(collect),
            },
        );
    }

    /// A clone of the entry list, so metric reads happen without the
    /// registry lock (gauge closures may take subsystem locks of any
    /// rank).
    fn cloned_entries(&self) -> Vec<Arc<Entry>> {
        self.entries.lock().iter().map(Arc::clone).collect()
    }

    /// Current value of the metric registered under `name` + `labels`:
    /// a counter's count, a gauge's reading, or a histogram's sample
    /// count. `None` when nothing matches.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let entry = self.find(name, labels)?;
        Some(match &entry.value {
            Value::Counter(c) => c.value() as f64,
            Value::CounterFn(read) => read() as f64,
            Value::GaugeFn(read) => read(),
            Value::Histogram(h) => h.count() as f64,
            Value::Collector { .. } => return None,
        })
    }

    /// The reader closure of a registered gauge, shareable and
    /// evaluated lock-free — the deprecated `ServerHandle::gauge_fn`
    /// path and the bench samplers use this.
    pub fn gauge_read(&self, name: &str, labels: &[(&str, &str)]) -> Option<GaugeRead> {
        let entry = self.find(name, labels)?;
        match &entry.value {
            Value::GaugeFn(read) => Some(Arc::clone(read)),
            _ => None,
        }
    }

    /// Distinct values of label `key` across entries named `name`, in
    /// registration order — e.g. the pool names under
    /// `pool_completed_total`.
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for entry in self.entries.lock().iter() {
            if entry.name != name {
                continue;
            }
            if let Some((_, v)) = entry.labels.iter().find(|(k, _)| *k == key) {
                if !out.iter().any(|seen| seen == v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Evaluated samples of every entry named `name`:
    /// `(label pairs, value)` in registration order. Collector entries
    /// expand to one sample per collected label value; histograms
    /// report their sample count.
    pub fn samples(&self, name: &str) -> Vec<(Vec<(&'static str, String)>, f64)> {
        let mut out = Vec::new();
        for entry in self.cloned_entries() {
            if entry.name != name {
                continue;
            }
            match &entry.value {
                Value::Counter(c) => out.push((entry.labels.clone(), c.value() as f64)),
                Value::CounterFn(read) => out.push((entry.labels.clone(), read() as f64)),
                Value::GaugeFn(read) => out.push((entry.labels.clone(), read())),
                Value::Histogram(h) => out.push((entry.labels.clone(), h.count() as f64)),
                Value::Collector { label, collect } => {
                    for (value, sample) in collect() {
                        out.push((vec![(*label, value)], sample));
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (version 0.0.4): a `# TYPE` line per family, then its samples;
    /// histograms expand to cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count`. Durations are in seconds.
    pub fn encode_prometheus(&self) -> String {
        let entries = self.cloned_entries();
        let mut out = String::with_capacity(entries.len() * 64);
        let mut done: Vec<&'static str> = Vec::new();
        for entry in &entries {
            if done.contains(&entry.name) {
                continue;
            }
            done.push(entry.name);
            let family: Vec<&Arc<Entry>> =
                entries.iter().filter(|e| e.name == entry.name).collect();
            let _ = writeln!(out, "# TYPE {} {}", entry.name, entry.value.type_label());
            for e in family {
                encode_entry(&mut out, e);
            }
        }
        out
    }
}

fn labels_match(entry: &[(&'static str, String)], wanted: &[(&str, &str)]) -> bool {
    entry.len() == wanted.len()
        && wanted
            .iter()
            .all(|(k, v)| entry.iter().any(|(ek, ev)| ek == k && ev == v))
}

/// Writes `{k="v",…}`; when `extra` is set it is appended as one more
/// pair (the histogram encoder's `le`).
fn write_label_set(
    out: &mut String,
    labels: &[(&'static str, String)],
    extra: Option<(&str, &str)>,
) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn encode_entry(out: &mut String, entry: &Entry) {
    match &entry.value {
        Value::Counter(c) => encode_sample(out, entry.name, &entry.labels, None, c.value() as f64),
        Value::CounterFn(read) => {
            encode_sample(out, entry.name, &entry.labels, None, read() as f64)
        }
        Value::GaugeFn(read) => encode_sample(out, entry.name, &entry.labels, None, read()),
        Value::Collector { label, collect } => {
            for (value, sample) in collect() {
                let labels = vec![(*label, value)];
                encode_sample(out, entry.name, &labels, None, sample);
            }
        }
        Value::Histogram(h) => {
            let buckets = h.cumulative();
            for (upper_micros, cumulative) in &buckets.cumulative {
                let le = format!("{}", *upper_micros as f64 / 1e6);
                let _ = write!(out, "{}_bucket", entry.name);
                write_label_set(out, &entry.labels, Some(("le", &le)));
                let _ = writeln!(out, " {cumulative}");
            }
            let _ = write!(out, "{}_bucket", entry.name);
            write_label_set(out, &entry.labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {}", buckets.count);
            let _ = write!(out, "{}_sum", entry.name);
            write_label_set(out, &entry.labels, None);
            let _ = writeln!(out, " {}", buckets.sum_micros as f64 / 1e6);
            let _ = write!(out, "{}_count", entry.name);
            write_label_set(out, &entry.labels, None);
            let _ = writeln!(out, " {}", buckets.count);
        }
    }
}

fn encode_sample(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    extra: Option<(&str, &str)>,
    value: f64,
) {
    out.push_str(name);
    write_label_set(out, labels, extra);
    let _ = writeln!(out, " {}", fmt_value(value));
}

/// A hand-rolled exposition-format checker: verifies every line is a
/// well-formed comment or sample, every sample's family has a `# TYPE`
/// declared before it, label braces balance, and values parse. Returns
/// the number of sample lines.
///
/// Used by the CI scrape check (boot server → `GET /metrics` → parse),
/// deliberately without a Prometheus client dependency.
///
/// # Errors
///
/// Returns `Err` with a `line N: …` message on the first malformed line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.trim_start().splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            match keyword {
                "TYPE" => {
                    let name = parts.next().ok_or(format!("line {n}: TYPE without name"))?;
                    let kind = parts.next().ok_or(format!("line {n}: TYPE without kind"))?;
                    if !valid_sample_name(name) {
                        return Err(format!("line {n}: bad metric name {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"]
                        .contains(&kind.trim())
                    {
                        return Err(format!("line {n}: bad TYPE kind {kind:?}"));
                    }
                    typed.push((name.to_string(), kind.trim().to_string()));
                }
                "HELP" => {}
                other => return Err(format!("line {n}: unknown comment keyword {other:?}")),
            }
            continue;
        }
        let (name, value) = parse_sample(line).ok_or(format!("line {n}: malformed sample"))?;
        if !valid_sample_name(&name) {
            return Err(format!("line {n}: bad sample name {name:?}"));
        }
        let family_ok = typed.iter().any(|(t, kind)| {
            t == &name
                || (kind == "histogram"
                    && [
                        format!("{t}_bucket"),
                        format!("{t}_sum"),
                        format!("{t}_count"),
                    ]
                    .contains(&name))
        });
        if !family_ok {
            return Err(format!("line {n}: sample {name:?} has no # TYPE"));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: bad value {value:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Sample names may additionally contain the `_bucket`/`_sum`/`_count`
/// machinery, still `[a-z_]` plus digits are forbidden by our rule.
fn valid_sample_name(name: &str) -> bool {
    valid_metric_name(name)
}

/// Splits a sample line into `(name-with-family, value)`, checking the
/// label block (if any) is `{k="v",…}` with balanced quotes.
fn parse_sample(line: &str) -> Option<(String, String)> {
    let (head, value) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}')?;
            if close < brace {
                return None;
            }
            let labels = &line[brace + 1..close];
            if !labels.is_empty() {
                for pair in split_label_pairs(labels) {
                    let eq = pair.find('=')?;
                    let (k, v) = pair.split_at(eq);
                    let v = v.strip_prefix('=')?;
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return None;
                    }
                }
            }
            (&line[..brace], line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ')?;
            (&line[..space], line[space + 1..].trim())
        }
    };
    if head.is_empty() || value.is_empty() || value.contains(' ') {
        return None;
    }
    Some((head.trim().to_string(), value.to_string()))
}

/// Splits `k="v",k2="v2"` on commas outside quotes.
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in labels.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&labels[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn names_are_validated() {
        assert!(valid_metric_name("pool_completed_total"));
        assert!(valid_metric_name("queue_depth"));
        assert!(!valid_metric_name("queue-depth"));
        assert!(!valid_metric_name("Queue_depth"));
        assert!(!valid_metric_name("queue0"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn invalid_name_panics_at_registration() {
        Registry::new().counter_fn("has-dash", &[], || 0);
    }

    #[test]
    fn counter_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("requests_total", &[("class", "static")]);
        let b = r.counter("requests_total", &[("class", "static")]);
        a.increment();
        assert_eq!(b.value(), 1);
        let other = r.counter("requests_total", &[("class", "dynamic")]);
        assert_eq!(other.value(), 0);
    }

    #[test]
    fn value_reads_every_kind() {
        let r = Registry::new();
        r.counter("hits_total", &[]).add(7);
        r.counter_fn("reads_total", &[("kind", "fn")], || 9);
        r.gauge_fn("depth", &[], || 2.5);
        let h = r.histogram("wait_seconds", &[]);
        h.record(Duration::from_millis(1));
        assert_eq!(r.value("hits_total", &[]), Some(7.0));
        assert_eq!(r.value("reads_total", &[("kind", "fn")]), Some(9.0));
        assert_eq!(r.value("depth", &[]), Some(2.5));
        assert_eq!(r.value("wait_seconds", &[]), Some(1.0));
        assert_eq!(r.value("missing", &[]), None);
        assert_eq!(r.value("hits_total", &[("k", "v")]), None);
    }

    #[test]
    fn label_values_preserve_registration_order() {
        let r = Registry::new();
        for pool in ["header", "static", "general"] {
            r.counter_fn("pool_completed_total", &[("pool", pool)], || 0);
        }
        assert_eq!(
            r.label_values("pool_completed_total", "pool"),
            vec!["header", "static", "general"]
        );
    }

    #[test]
    fn gauge_read_is_shareable() {
        let r = Registry::new();
        r.gauge_fn("depth", &[("stage", "render")], || 4.0);
        let read = r.gauge_read("depth", &[("stage", "render")]).unwrap();
        assert_eq!(read(), 4.0);
        assert!(r.gauge_read("depth", &[]).is_none());
    }

    #[test]
    fn collector_expands_at_scrape_time() {
        let r = Registry::new();
        r.gauge_collector("page_service_seconds", "page", || {
            vec![("home".to_string(), 0.25), ("search".to_string(), 1.5)]
        });
        let text = r.encode_prometheus();
        assert!(
            text.contains("page_service_seconds{page=\"home\"} 0.25"),
            "{text}"
        );
        assert!(
            text.contains("page_service_seconds{page=\"search\"} 1.5"),
            "{text}"
        );
        let samples = r.samples("page_service_seconds");
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn exposition_is_valid_and_typed() {
        let r = Registry::new();
        r.counter("requests_total", &[("class", "static")]).add(3);
        r.gauge_fn("queue_depth", &[("stage", "header")], || 1.0);
        let h = r.histogram("wait_seconds", &[("stage", "header")]);
        h.record(Duration::from_micros(30));
        h.record(Duration::from_millis(2));
        let text = r.encode_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("# TYPE wait_seconds histogram"), "{text}");
        assert!(
            text.contains("wait_seconds_bucket{stage=\"header\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("wait_seconds_count{stage=\"header\"} 2"),
            "{text}"
        );
        let samples = validate_exposition(&text).expect("valid exposition");
        assert!(samples >= 4, "got {samples} samples:\n{text}");
    }

    #[test]
    fn families_group_even_when_interleaved() {
        let r = Registry::new();
        r.counter_fn("alpha_total", &[("a", "1")], || 1);
        r.gauge_fn("beta", &[], || 2.0);
        r.counter_fn("alpha_total", &[("a", "2")], || 3);
        let text = r.encode_prometheus();
        let type_lines = text.matches("# TYPE alpha_total").count();
        assert_eq!(type_lines, 1, "{text}");
        // Both alpha samples appear under the one TYPE header.
        let type_pos = text.find("# TYPE alpha_total").unwrap();
        let beta_type = text.find("# TYPE beta").unwrap();
        let a1 = text.find("alpha_total{a=\"1\"}").unwrap();
        let a2 = text.find("alpha_total{a=\"2\"}").unwrap();
        assert!(type_pos < a1 && a1 < a2, "{text}");
        assert!(a2 < beta_type || beta_type < type_pos, "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(validate_exposition("no_type_line 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{unclosed 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_exposition("# TYPE Bad counter\n").is_err());
        assert!(validate_exposition("# TYPE x flavour\n").is_err());
        assert_eq!(
            validate_exposition("# TYPE x counter\nx 1\nx{l=\"v\"} 2"),
            Ok(2)
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.gauge_fn("depth", &[("stage", "with\"quote")], || 1.0);
        let text = r.encode_prometheus();
        assert!(text.contains("stage=\"with\\\"quote\""), "{text}");
        validate_exposition(&text).unwrap();
    }
}
