//! Exact running summaries (count / mean / min / max) of duration samples.

use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use staged_sync::{OrderedMutex, Rank};
use std::fmt;
use std::time::Duration;

/// Rank of a summary's state (DESIGN.md §10): metrics locks are
/// innermost — any subsystem may record while holding its own locks.
const SUMMARY_RANK: Rank = Rank::new(410);

/// An exact running summary of duration samples.
///
/// Unlike [`Histogram`](crate::Histogram), `Summary` keeps no
/// distribution — just count, sum, min and max — so the mean is exact.
/// Table 3 of the paper reports per-page *average* response times, which
/// is precisely what this type produces.
///
/// # Examples
///
/// ```
/// use staged_metrics::Summary;
/// use std::time::Duration;
///
/// let s = Summary::new();
/// s.record(Duration::from_millis(10));
/// s.record(Duration::from_millis(30));
/// assert_eq!(s.snapshot().mean(), Duration::from_millis(20));
/// ```
#[derive(Debug)]
pub struct Summary {
    inner: OrderedMutex<SummarySnapshot>,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            inner: OrderedMutex::new(SUMMARY_RANK, "metrics.summary", SummarySnapshot::default()),
        }
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let micros = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
        let mut s = self.inner.lock();
        if s.count == 0 {
            s.min_micros = micros;
            s.max_micros = micros;
        } else {
            s.min_micros = s.min_micros.min(micros);
            s.max_micros = s.max_micros.max(micros);
        }
        s.count += 1;
        s.sum_micros += u128::from(micros);
    }

    /// Returns an owned snapshot of the current state.
    pub fn snapshot(&self) -> SummarySnapshot {
        *self.inner.lock()
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Clears the summary.
    pub fn reset(&self) {
        *self.inner.lock() = SummarySnapshot::default();
    }
}

/// An owned snapshot of a [`Summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SummarySnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u128,
    /// Smallest sample in microseconds (0 when empty).
    pub min_micros: u64,
    /// Largest sample in microseconds (0 when empty).
    pub max_micros: u64,
}

impl SummarySnapshot {
    /// Exact mean; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let mean = self.sum_micros / u128::from(self.count);
        Duration::from_micros(u64::try_from(mean).unwrap_or(u64::MAX))
    }

    /// Mean expressed in (fractional) seconds, for table output.
    pub fn mean_secs(&self) -> f64 {
        self.mean().as_secs_f64()
    }

    /// Mean expressed in (fractional) milliseconds, for table output.
    pub fn mean_millis(&self) -> f64 {
        self.mean().as_secs_f64() * 1e3
    }
}

impl Snapshot for SummarySnapshot {
    fn fields(&self, emit: &mut dyn FnMut(&'static str, f64)) {
        emit("count", self.count as f64);
        emit("sum_micros", self.sum_micros as f64);
        emit("min_micros", self.min_micros as f64);
        emit("max_micros", self.max_micros as f64);
    }
}

impl fmt::Display for SummarySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.3}ms", self.count, self.mean_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), Duration::ZERO);
    }

    #[test]
    fn exact_mean() {
        let s = Summary::new();
        for us in [100u64, 200, 600] {
            s.record(Duration::from_micros(us));
        }
        assert_eq!(s.snapshot().mean(), Duration::from_micros(300));
        assert_eq!(s.snapshot().min_micros, 100);
        assert_eq!(s.snapshot().max_micros, 600);
    }

    #[test]
    fn mean_units() {
        let s = Summary::new();
        s.record(Duration::from_millis(1500));
        let snap = s.snapshot();
        assert!((snap.mean_secs() - 1.5).abs() < 1e-9);
        assert!((snap.mean_millis() - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn reset_empties() {
        let s = Summary::new();
        s.record(Duration::from_secs(1));
        s.reset();
        assert_eq!(s.count(), 0);
    }
}
