//! A log-bucketed latency histogram.

use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use staged_sync::{OrderedMutex, Rank};
use std::fmt;
use std::time::Duration;

/// Rank of a histogram's bucket array (DESIGN.md §10): metrics locks
/// are innermost — any subsystem may record while holding its own
/// locks.
const HISTOGRAM_RANK: Rank = Rank::new(420);

/// Number of histogram buckets. Bucket `i` covers durations whose
/// microsecond value has `i` significant bits, i.e. `[2^(i-1), 2^i)` µs,
/// with bucket 0 holding sub-microsecond samples. 48 buckets cover about
/// nine years, which is comfortably more than any request takes.
const BUCKETS: usize = 48;

#[derive(Debug)]
struct Inner {
    counts: [u64; BUCKETS],
    count: u64,
    sum_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counts: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: 0,
            max_micros: 0,
        }
    }
}

/// A concurrent, log-bucketed histogram of [`Duration`] samples.
///
/// Designed for recording request latencies: recording is a short
/// critical section, and quantiles are approximate (bucket-resolution,
/// within 2× of the true value) which is plenty for the shapes the paper
/// reports (order-of-magnitude differences between page classes).
///
/// # Examples
///
/// ```
/// use staged_metrics::Histogram;
/// use std::time::Duration;
///
/// let h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.mean() >= Duration::from_millis(20));
/// ```
#[derive(Debug)]
pub struct Histogram {
    inner: OrderedMutex<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: OrderedMutex::new(HISTOGRAM_RANK, "metrics.histogram", Inner::default()),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let micros = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        let mut inner = self.inner.lock();
        inner.counts[bucket] += 1;
        if inner.count == 0 {
            inner.min_micros = micros;
            inner.max_micros = micros;
        } else {
            inner.min_micros = inner.min_micros.min(micros);
            inner.max_micros = inner.max_micros.max(micros);
        }
        inner.count += 1;
        inner.sum_micros += u128::from(micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Arithmetic mean of all samples; zero if empty.
    pub fn mean(&self) -> Duration {
        let inner = self.inner.lock();
        if inner.count == 0 {
            return Duration::ZERO;
        }
        let mean = inner.sum_micros / u128::from(inner.count);
        Duration::from_micros(u64::try_from(mean).unwrap_or(u64::MAX))
    }

    /// Smallest recorded sample; zero if empty.
    pub fn min(&self) -> Duration {
        let inner = self.inner.lock();
        if inner.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(inner.min_micros)
        }
    }

    /// Largest recorded sample; zero if empty.
    pub fn max(&self) -> Duration {
        let inner = self.inner.lock();
        if inner.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(inner.max_micros)
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), at bucket resolution.
    ///
    /// Returns the upper bound of the bucket containing the `q`-th
    /// sample, clamped to the exact observed `[min, max]` range, so the
    /// true value is within a factor of two below the returned duration.
    ///
    /// Edge behavior is exact, not bucket-approximate:
    ///
    /// * an **empty histogram** returns [`Duration::ZERO`] for every `q`;
    /// * **`q = 0.0`** returns the exact minimum recorded sample;
    /// * **`q = 1.0`** returns the exact maximum recorded sample.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0.0, 1.0]` (including NaN).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let inner = self.inner.lock();
        if inner.count == 0 {
            return Duration::ZERO;
        }
        if q == 0.0 {
            return Duration::from_micros(inner.min_micros);
        }
        if q == 1.0 {
            return Duration::from_micros(inner.max_micros);
        }
        let rank = ((inner.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in inner.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { 1u64 << i };
                return Duration::from_micros(upper.clamp(inner.min_micros, inner.max_micros));
            }
        }
        Duration::from_micros(inner.max_micros)
    }

    /// Cumulative bucket counts for Prometheus-style `_bucket{le=…}`
    /// export: `(upper bound in µs, samples ≤ bound)` pairs up to the
    /// highest non-empty bucket, plus the total `count` (the implicit
    /// `+Inf` bucket) and `sum_micros`.
    pub fn cumulative(&self) -> HistogramBuckets {
        let inner = self.inner.lock();
        let highest = inner
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut cumulative = Vec::with_capacity(highest);
        let mut running = 0u64;
        for (i, &c) in inner.counts.iter().take(highest).enumerate() {
            running += c;
            let upper = if i >= 63 { u64::MAX } else { 1u64 << i };
            cumulative.push((upper, running));
        }
        HistogramBuckets {
            cumulative,
            count: inner.count,
            sum_micros: inner.sum_micros,
        }
    }

    /// Takes a point-in-time snapshot of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = self.inner.lock();
        HistogramSnapshot {
            count: inner.count,
            mean_micros: if inner.count == 0 {
                0
            } else {
                u64::try_from(inner.sum_micros / u128::from(inner.count)).unwrap_or(u64::MAX)
            },
            min_micros: if inner.count == 0 {
                0
            } else {
                inner.min_micros
            },
            max_micros: if inner.count == 0 {
                0
            } else {
                inner.max_micros
            },
        }
    }

    /// Clears all recorded samples.
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

/// An owned, serializable snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// Number of samples recorded at snapshot time.
    pub count: u64,
    /// Mean sample in microseconds.
    pub mean_micros: u64,
    /// Minimum sample in microseconds.
    pub min_micros: u64,
    /// Maximum sample in microseconds.
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// Mean as a [`Duration`].
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.mean_micros)
    }
}

impl Snapshot for HistogramSnapshot {
    fn fields(&self, emit: &mut dyn FnMut(&'static str, f64)) {
        emit("count", self.count as f64);
        emit("mean_micros", self.mean_micros as f64);
        emit("min_micros", self.min_micros as f64);
        emit("max_micros", self.max_micros as f64);
    }
}

/// Cumulative bucket counts exported by [`Histogram::cumulative`], the
/// shape the Prometheus text encoder needs.
#[derive(Debug, Clone, Default)]
pub struct HistogramBuckets {
    /// `(bucket upper bound in µs, cumulative samples ≤ bound)`, only up
    /// to the highest non-empty bucket.
    pub cumulative: Vec<(u64, u64)>,
    /// Total samples — the implicit `+Inf` bucket.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u128,
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={}µs min={}µs max={}µs",
            self.count, self.mean_micros, self.min_micros, self.max_micros
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(20));
        h.record(Duration::from_micros(30));
        assert_eq!(h.mean(), Duration::from_micros(20));
        assert_eq!(h.min(), Duration::from_micros(10));
        assert_eq!(h.max(), Duration::from_micros(30));
    }

    #[test]
    fn quantile_is_within_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(100));
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(100));
        assert!(p50 <= Duration::from_micros(256), "p50 was {p50:?}");
        let p100 = h.quantile(1.0);
        assert_eq!(p100, Duration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn quantile_edges_are_exact_min_and_max() {
        let h = Histogram::new();
        h.record(Duration::from_micros(37));
        h.record(Duration::from_micros(995));
        h.record(Duration::from_micros(12_345));
        // q=0 and q=1 bypass bucket resolution entirely.
        assert_eq!(h.quantile(0.0), Duration::from_micros(37));
        assert_eq!(h.quantile(1.0), Duration::from_micros(12_345));
        // Interior quantiles are clamped into the observed range.
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = h.quantile(q);
            assert!(v >= Duration::from_micros(37), "q={q} gave {v:?}");
            assert!(v <= Duration::from_micros(12_345), "q={q} gave {v:?}");
        }
    }

    #[test]
    fn quantile_on_empty_is_zero_for_all_q() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
    }

    #[test]
    fn quantile_single_sample_is_that_sample() {
        let h = Histogram::new();
        h.record(Duration::from_micros(300));
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Duration::from_micros(300));
        }
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_bounded() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(10));
        let b = h.cumulative();
        assert_eq!(b.count, 3);
        assert_eq!(b.sum_micros, 3 + 100 + 10_000);
        let last = b.cumulative.last().expect("non-empty");
        assert_eq!(last.1, 3, "last cumulative bucket holds every sample");
        assert!(last.0 >= 10_000, "upper bound covers the max sample");
        let mut prev = 0;
        for &(upper, cum) in &b.cumulative {
            assert!(cum >= prev, "cumulative counts never decrease");
            assert!(upper > 0);
            prev = cum;
        }
    }

    #[test]
    fn cumulative_on_empty_has_no_buckets() {
        let b = Histogram::new().cumulative();
        assert!(b.cumulative.is_empty());
        assert_eq!(b.count, 0);
        assert_eq!(b.sum_micros, 0);
    }

    #[test]
    fn snapshot_matches_state() {
        let h = Histogram::new();
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(15));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_micros, 10);
        assert_eq!(s.min_micros, 5);
        assert_eq!(s.max_micros, 15);
        assert_eq!(s.mean(), Duration::from_micros(10));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(Duration::from_secs(1));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn huge_sample_does_not_overflow() {
        let h = Histogram::new();
        h.record(Duration::from_secs(u64::MAX / 2_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.max() > Duration::from_secs(1));
    }
}
