//! Monotonic counters and signed gauges.

use staged_sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::fmt;

/// A monotonically increasing event counter.
///
/// `Counter` is wait-free and can be shared across threads behind an
/// `Arc`. It counts *events* — completed requests, dispatched jobs,
/// dropped connections.
///
/// # Examples
///
/// ```
/// use staged_metrics::Counter;
///
/// let c = Counter::new();
/// c.add(2);
/// c.increment();
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the counter.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current count.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed) // lint: allow(relaxed)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter {
            value: AtomicU64::new(self.value()),
        }
    }
}

/// A signed instantaneous value, such as the number of busy worker
/// threads or queued requests.
///
/// Unlike [`Counter`], a gauge can go down.
///
/// # Examples
///
/// ```
/// use staged_metrics::Gauge;
///
/// let busy = Gauge::new();
/// busy.increment();
/// busy.increment();
/// busy.decrement();
/// assert_eq!(busy.value(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the gauge and returns the *new* value.
    pub fn increment(&self) -> i64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Subtracts one from the gauge and returns the *new* value.
    pub fn decrement(&self) -> i64 {
        self.value.fetch_sub(1, Ordering::Relaxed) - 1
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed); // lint: allow(relaxed)
    }

    /// Returns the current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed) // lint: allow(relaxed)
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Gauge::new();
        g.set(self.value());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_starts_at_zero() {
        assert_eq!(Counter::new().value(), 0);
    }

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.add(5);
        c.increment();
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn counter_reset_returns_previous() {
        let c = Counter::new();
        c.add(7);
        assert_eq!(c.reset(), 7);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_is_accurate_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.increment();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_goes_up_and_down() {
        let g = Gauge::new();
        assert_eq!(g.increment(), 1);
        assert_eq!(g.increment(), 2);
        assert_eq!(g.decrement(), 1);
        g.set(-3);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn gauge_balanced_across_threads_returns_to_zero() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                thread::spawn(move || {
                    for _ in 0..500 {
                        g.increment();
                        g.decrement();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn display_impls() {
        let c = Counter::new();
        c.add(4);
        assert_eq!(c.to_string(), "4");
        let g = Gauge::new();
        g.set(-2);
        assert_eq!(g.to_string(), "-2");
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::new();
        c.add(9);
        let c2 = c.clone();
        c.increment();
        assert_eq!(c2.value(), 9);
        assert_eq!(c.value(), 10);
    }
}
