//! Time-bucketed event series, used for the paper's queue-length and
//! throughput-over-time figures.

use serde::{Deserialize, Serialize};
use staged_sync::{OrderedMutex, Rank};
use std::time::{Duration, Instant};

/// Rank of a series' bucket store (DESIGN.md §10): metrics locks are
/// innermost — any subsystem may record while holding its own locks.
const SERIES_RANK: Rank = Rank::new(400);

/// One point in a [`TimeSeries`] export.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Bucket start, in seconds since the series epoch.
    pub at_secs: f64,
    /// Bucket value (a count for throughput series, a mean for sampled
    /// gauges such as queue length).
    pub value: f64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Bucket {
    sum: f64,
    samples: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    width: Duration,
    buckets: Vec<Bucket>,
}

/// A series of values bucketed by elapsed time since an epoch.
///
/// Two usage patterns map onto the paper's figures:
///
/// * **Throughput** (Figures 9/10): call [`TimeSeries::increment`] once
///   per completed interaction and export with
///   [`TimeSeries::counts_per_bucket`]. Each point is the number of
///   events in that bucket.
/// * **Queue length** (Figures 7/8): call [`TimeSeries::observe`] with a
///   sampled gauge value and export with [`TimeSeries::bucket_means`].
///
/// # Examples
///
/// ```
/// use staged_metrics::TimeSeries;
/// use std::time::Duration;
///
/// let ts = TimeSeries::new(Duration::from_millis(10));
/// ts.increment();
/// ts.increment();
/// let points = ts.counts_per_bucket();
/// assert_eq!(points[0].value, 2.0);
/// ```
#[derive(Debug)]
pub struct TimeSeries {
    inner: OrderedMutex<Inner>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width whose epoch is *now*.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: Duration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        TimeSeries {
            inner: OrderedMutex::new(
                SERIES_RANK,
                "metrics.timeseries",
                Inner {
                    epoch: Instant::now(),
                    width: bucket_width,
                    buckets: Vec::new(),
                },
            ),
        }
    }

    /// Resets the epoch to *now* and clears all buckets.
    ///
    /// Used at the end of a warm-up (ramp-up) period, mirroring the
    /// paper's exclusion of the first five minutes of each run.
    pub fn restart(&self) {
        let mut inner = self.inner.lock();
        inner.epoch = Instant::now();
        inner.buckets.clear();
    }

    /// Records one event (value 1.0) in the current bucket.
    pub fn increment(&self) {
        self.observe(1.0);
    }

    /// Records an observed value in the current bucket.
    pub fn observe(&self, value: f64) {
        let mut inner = self.inner.lock();
        let idx = (inner.epoch.elapsed().as_nanos() / inner.width.as_nanos()) as usize;
        if inner.buckets.len() <= idx {
            inner.buckets.resize(idx + 1, Bucket::default());
        }
        let b = &mut inner.buckets[idx];
        b.sum += value;
        b.samples += 1;
    }

    /// Exports one point per bucket whose value is the *sum* of events —
    /// i.e. a throughput series when fed by [`TimeSeries::increment`].
    pub fn counts_per_bucket(&self) -> Vec<SeriesPoint> {
        let inner = self.inner.lock();
        let width = inner.width.as_secs_f64();
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| SeriesPoint {
                at_secs: i as f64 * width,
                value: b.sum,
            })
            .collect()
    }

    /// Exports one point per bucket whose value is the *mean* of the
    /// observations in that bucket (0 for empty buckets) — i.e. a sampled
    /// gauge series such as queue length.
    pub fn bucket_means(&self) -> Vec<SeriesPoint> {
        let inner = self.inner.lock();
        let width = inner.width.as_secs_f64();
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| SeriesPoint {
                at_secs: i as f64 * width,
                value: if b.samples == 0 {
                    0.0
                } else {
                    b.sum / b.samples as f64
                },
            })
            .collect()
    }

    /// Total of all recorded values across all buckets.
    pub fn total(&self) -> f64 {
        self.inner.lock().buckets.iter().map(|b| b.sum).sum()
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> Duration {
        self.inner.lock().width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    #[should_panic(expected = "bucket width must be non-zero")]
    fn zero_width_rejected() {
        let _ = TimeSeries::new(Duration::ZERO);
    }

    #[test]
    fn events_land_in_first_bucket() {
        let ts = TimeSeries::new(Duration::from_secs(60));
        ts.increment();
        ts.increment();
        ts.increment();
        let pts = ts.counts_per_bucket();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].at_secs, 0.0);
        assert_eq!(pts[0].value, 3.0);
        assert_eq!(ts.total(), 3.0);
    }

    #[test]
    fn events_spread_across_buckets() {
        let ts = TimeSeries::new(Duration::from_millis(20));
        ts.increment();
        thread::sleep(Duration::from_millis(45));
        ts.increment();
        let pts = ts.counts_per_bucket();
        assert!(pts.len() >= 3, "expected >=3 buckets, got {}", pts.len());
        assert_eq!(pts[0].value, 1.0);
        assert_eq!(pts.last().unwrap().value, 1.0);
    }

    #[test]
    fn bucket_means_average_observations() {
        let ts = TimeSeries::new(Duration::from_secs(60));
        ts.observe(10.0);
        ts.observe(30.0);
        let pts = ts.bucket_means();
        assert_eq!(pts[0].value, 20.0);
    }

    #[test]
    fn restart_clears_and_rebases() {
        let ts = TimeSeries::new(Duration::from_secs(1));
        ts.increment();
        ts.restart();
        assert_eq!(ts.total(), 0.0);
        ts.increment();
        assert_eq!(ts.counts_per_bucket()[0].value, 1.0);
    }

    #[test]
    fn empty_bucket_mean_is_zero() {
        let ts = TimeSeries::new(Duration::from_millis(10));
        thread::sleep(Duration::from_millis(25));
        ts.observe(4.0);
        let pts = ts.bucket_means();
        assert_eq!(pts[0].value, 0.0);
        assert_eq!(pts.last().unwrap().value, 4.0);
    }
}
