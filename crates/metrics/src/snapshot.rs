//! One serialization path for every point-in-time metrics view.
//!
//! The workspace has several owned snapshot structs (histogram, summary,
//! pool, server stats) that used to each hand-roll their own text and
//! JSON fragments. [`Snapshot`] unifies them: a snapshot names its
//! numeric fields once ([`Snapshot::fields`]), and the provided
//! [`Snapshot::encode`] (Prometheus-style `name value` lines) and
//! [`Snapshot::encode_json`] (a flat JSON object) renderings are derived
//! from that single enumeration — so the `/metrics` exporter and the
//! `--json` bench artifacts cannot drift apart field-by-field.

use std::fmt::Write;

/// A point-in-time metrics view that can enumerate its numeric fields.
///
/// Implementors list every field exactly once in [`Snapshot::fields`];
/// the text and JSON encodings are derived and never overridden, so all
/// serializations agree on field names and values.
///
/// # Examples
///
/// ```
/// use staged_metrics::{Histogram, Snapshot};
/// use std::time::Duration;
///
/// let h = Histogram::new();
/// h.record(Duration::from_micros(250));
/// let snap = h.snapshot();
///
/// let mut text = String::new();
/// snap.encode(&mut text).unwrap();
/// assert!(text.contains("count 1"));
///
/// let mut json = String::new();
/// snap.encode_json(&mut json).unwrap();
/// assert!(json.starts_with('{') && json.contains("\"count\":1"));
/// ```
pub trait Snapshot {
    /// Calls `emit` once per `(field name, value)` pair, in a stable
    /// order. Field names must be `snake_case` identifiers (they become
    /// both text-line prefixes and JSON keys).
    fn fields(&self, emit: &mut dyn FnMut(&'static str, f64));

    /// Text encoding: one `name value` line per field (the Prometheus
    /// exposition's sample-line shape, without labels).
    ///
    /// # Errors
    ///
    /// Propagates any error from the underlying writer.
    fn encode(&self, w: &mut dyn Write) -> std::fmt::Result {
        let mut result = Ok(());
        self.fields(&mut |name, value| {
            if result.is_ok() {
                result = writeln!(w, "{name} {}", fmt_value(value));
            }
        });
        result
    }

    /// JSON encoding: one flat object with the same field names.
    ///
    /// # Errors
    ///
    /// Propagates any error from the underlying writer.
    fn encode_json(&self, w: &mut dyn Write) -> std::fmt::Result {
        let mut result = w.write_char('{');
        let mut first = true;
        self.fields(&mut |name, value| {
            if result.is_ok() {
                if !first {
                    result = w.write_char(',');
                }
                first = false;
                if result.is_ok() {
                    result = write!(w, "\"{name}\":{}", fmt_value(value));
                }
            }
        });
        result.and_then(|()| w.write_char('}'))
    }
}

/// Renders a value without a trailing `.0` for whole numbers, so counter
/// fields look like counts in both encodings.
pub(crate) fn fmt_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair;

    impl Snapshot for Pair {
        fn fields(&self, emit: &mut dyn FnMut(&'static str, f64)) {
            emit("alpha", 3.0);
            emit("beta", 0.5);
        }
    }

    #[test]
    fn text_encoding_is_line_per_field() {
        let mut s = String::new();
        Pair.encode(&mut s).unwrap();
        assert_eq!(s, "alpha 3\nbeta 0.5\n");
    }

    #[test]
    fn json_encoding_is_flat_object() {
        let mut s = String::new();
        Pair.encode_json(&mut s).unwrap();
        assert_eq!(s, "{\"alpha\":3,\"beta\":0.5}");
    }

    #[test]
    fn whole_numbers_have_no_fraction() {
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.25), "0.25");
    }
}
