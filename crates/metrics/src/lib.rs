//! Lightweight, lock-free-where-possible metrics for the staged-web
//! workspace.
//!
//! The paper's evaluation needs three kinds of measurements:
//!
//! * per-page **response-time statistics** (Table 3) — [`Summary`] and
//!   [`Histogram`];
//! * **completion counts** per page and per request class (Table 4,
//!   Figures 9/10) — [`Counter`] and [`TimeSeries`];
//! * **queue-length traces** sampled over time (Figures 7/8) —
//!   [`TimeSeries`] fed by a sampler in `staged-pool`.
//!
//! All types are `Send + Sync` and cheap to share behind an `Arc`.
//!
//! # Examples
//!
//! ```
//! use staged_metrics::{Counter, Histogram};
//! use std::time::Duration;
//!
//! let completed = Counter::new();
//! completed.increment();
//! assert_eq!(completed.value(), 1);
//!
//! let latency = Histogram::new();
//! latency.record(Duration::from_millis(3));
//! assert_eq!(latency.count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod registry;
mod snapshot;
mod stopwatch;
mod summary;
mod timeseries;
mod trace;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramBuckets, HistogramSnapshot};
pub use registry::{
    valid_metric_name, validate_exposition, Collect, CounterRead, GaugeRead, Registry,
};
pub use snapshot::Snapshot;
pub use stopwatch::Stopwatch;
pub use summary::{Summary, SummarySnapshot};
pub use timeseries::{SeriesPoint, TimeSeries};
pub use trace::{Stage, Trace, TraceEvent, TraceHub, TraceOutcome};
