//! Deliberate `raw_atomic` violations: std atomics outside
//! `crates/sync` have no schedule point under `--cfg model`.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn spin_until(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
}

pub fn fully_qualified() -> usize {
    let n = std::sync::atomic::AtomicUsize::new(0);
    n.into_inner()
}
