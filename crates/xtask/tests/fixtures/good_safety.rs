// Fixture: every unsafe carries its justification.
pub fn leak(v: Vec<u8>) -> &'static [u8] {
    // SAFETY: the backing Vec is forgotten below, so the pointer and
    // length stay valid for 'static.
    let slice = unsafe { std::slice::from_raw_parts(v.as_ptr(), v.len()) };
    std::mem::forget(v);
    slice
}

// SAFETY: the raw pointer is only ever dereferenced on the owning
// thread; Send is sound because ownership transfers wholesale.
unsafe impl Send for Wrapper {}

pub struct Wrapper(*mut u8);

// `unsafe fn` declarations are the *caller's* obligation, not ours.
pub unsafe fn assume_init(p: *const u8) -> u8 {
    // SAFETY: caller promises `p` is valid (see fn contract).
    unsafe { *p }
}
