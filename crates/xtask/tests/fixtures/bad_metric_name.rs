//! Deliberate metric-name violations for the lint self-tests.

fn register(registry: &Registry, service: Arc<Histogram>) {
    // Counter missing the `_total` suffix.
    registry.counter("requests_served", &[("class", "static")]);
    // Histogram with a non-unit suffix.
    registry.histogram("queue_wait_ms", &[("stage", "render")]);
    // Bad charset: uppercase and a dash.
    registry.gauge_fn("Queue-Depth", &[], || 0.0);
    // Multi-line call: the name literal opens the next line.
    registry.register_histogram(
        "service_time",
        &[("stage", "render")],
        service,
    );
}
