// Fixture: the escape hatches — trailing allow, preceding
// comment-block allow (covers the next code line), multi-rule allow.
use std::sync::{mpsc, Mutex};

pub fn sanctioned() {
    let _m = Mutex::new(0u8); // lint: allow(raw_lock) — FFI boundary, rank handled by caller
}

pub fn bootstrap() -> (Mutex<u8>, mpsc::Sender<u8>) {
    // lint: allow(raw_lock) — bootstrap path runs before the rank
    // table is initialized; single-threaded by construction.
    let m = Mutex::new(0u8);
    let (tx, _rx) = mpsc::channel(); // lint: allow(unbounded_queue) — drained same call
    (m, tx)
}

// lint: allow(raw_lock, unbounded_queue) — one directive, two rules.
pub fn both() -> (Mutex<u8>, mpsc::Receiver<u8>) { (Mutex::new(0), mpsc::channel().1) }
