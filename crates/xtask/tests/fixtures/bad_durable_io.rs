// Fixture: panicking durable-file I/O — the WAL/checkpoint paths must
// surface disk failures as errors, never unwrap them (DESIGN.md §13).
use std::fs::{self, File};

pub fn checkpoint(dir: &std::path::Path) {
    let file = File::create(dir.join("checkpoint.tmp")).unwrap();
    file.sync_all().expect("fsync checkpoint");
    fs::rename(dir.join("checkpoint.tmp"), dir.join("checkpoint.db")).unwrap();
}

pub fn truncate(wal: &File) {
    wal.set_len(0).expect("truncate wal");
    wal.sync_data().unwrap();
}

pub fn reset(dir: &std::path::Path) {
    fs::remove_file(dir.join("wal.log")).unwrap();
    let _ = File::open(dir.join("checkpoint.db")).expect("reopen");
}
