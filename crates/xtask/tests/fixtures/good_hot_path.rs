// Fixture: a clean hot-path region — sizing is fine, refcount bumps
// are fine, and allocations outside the region are nobody's business.
use std::sync::Arc;

// lint: hot_path — per-request byte shuffling only.
pub fn fill(buf: &mut Vec<u8>, src: &[u8], shared: &Arc<Vec<u8>>) -> Arc<Vec<u8>> {
    buf.extend_from_slice(src);
    Arc::clone(shared)
}

pub fn checkout() -> Vec<u8> {
    Vec::with_capacity(4096)
}
// lint: end_hot_path

pub fn cold_path_report(n: usize) -> String {
    format!("{n} requests served")
}
