//! Conforming metric registrations: every kind, a multi-line call, a
//! dynamic name the lint cannot see, and the allow escape.

fn register(registry: &Registry, name: &'static str, service: Arc<Histogram>) {
    registry.counter("requests_completed_total", &[("class", "static")]);
    registry.counter_fn("sheds_total", &[("point", "listener")], || 0);
    registry.gauge_fn("stage_queue_depth", &[("stage", "render")], || 0.0);
    registry.gauge_collector("page_service_seconds", "page", Vec::new);
    registry.histogram("stage_queue_wait_seconds", &[("stage", "render")]);
    registry.register_histogram(
        "stage_service_seconds",
        &[("stage", "render")],
        service,
    );
    // A non-literal first argument is out of the lint's static reach.
    registry.counter_fn(name, &[], || 0);
    // lint: allow(metric_name) — legacy family kept for old dashboards.
    registry.counter("legacy_hits", &[]);
}
