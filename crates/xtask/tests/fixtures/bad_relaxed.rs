//! Deliberate `relaxed` violations: `Ordering::Relaxed` steering
//! control flow, next to the counter contexts that are allowed.

use staged_sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn run(stop: &AtomicBool, hits: &AtomicU64) -> u64 {
    while !stop.load(Ordering::Relaxed) {
        hits.fetch_add(1, Ordering::Relaxed); // counter bump: allowed
    }
    stop.store(false, Ordering::Relaxed);
    hits.load(Ordering::Relaxed) // lint: allow(relaxed) — aggregate read
}
