// Fixture: raw lock construction outside crates/sync.
use std::sync::{Mutex, RwLock};

pub struct State {
    counter: Mutex<u64>,
    table: RwLock<Vec<u8>>,
}

impl State {
    pub fn new() -> Self {
        State {
            counter: Mutex::new(0),
            table: RwLock::new(Vec::new()),
        }
    }
}
