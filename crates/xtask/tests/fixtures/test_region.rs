// Fixture: the `#[cfg(test)]` tail of a file is exempt from the lock
// rules (tests may unwrap and build raw fixtures) but never from
// `safety_comment`.
use std::sync::Mutex;

pub fn lib_code(m: &Mutex<u8>) -> u8 {
    *staged_sync::lock_recover(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn unwraps_are_fine_here() {
        let m = Mutex::new(7u8);
        assert_eq!(*m.lock().unwrap(), 7);
        let (_tx, _rx) = mpsc::channel::<u8>();
    }
}
