// Fixture: allocation inside a marked hot-path region.
pub struct Page {
    parts: Vec<String>,
}

// lint: hot_path — the render loop must reuse pooled buffers.
pub fn render(page: &Page) -> String {
    let mut out = String::new();
    for part in &page.parts {
        out.push_str(&format!("<p>{}</p>", part));
    }
    let copy = page.parts.clone();
    drop(copy);
    out
}
// lint: end_hot_path
