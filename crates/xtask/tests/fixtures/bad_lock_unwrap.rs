// Fixture: poison-panicking lock access and swallowed I/O errors.
use std::io::Write;
use std::sync::{Mutex, RwLock};

pub fn count(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn peek(l: &RwLock<u64>) -> u64 {
    *l.read().expect("poisoned")
}

pub fn save(mut w: impl Write, buf: &[u8]) {
    w.write_all(buf).unwrap();
    w.flush().expect("flush failed");
}
