// Fixture: an `unsafe` block with no SAFETY comment anywhere near it.
pub fn leak(v: Vec<u8>) -> &'static [u8] {
    let slice = unsafe { std::slice::from_raw_parts(v.as_ptr(), v.len()) };
    std::mem::forget(v);
    slice
}

// `unsafe impl` needs one too.
unsafe impl Send for Wrapper {}

pub struct Wrapper(*mut u8);
