// Fixture: queue constructions that never state a bound.
use std::sync::mpsc;

pub fn build() {
    let q: SyncQueue<u32> = SyncQueue::unbounded();
    let (_tx, _rx) = mpsc::channel::<u32>();
    drop(q);
}
