//! Fixture-driven self-tests for the lint pass, plus the gate that
//! keeps the real workspace clean.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use xtask::lint::{lint_source, lint_workspace, Diagnostic, FileKind};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture(name: &str, kind: FileKind) -> Vec<Diagnostic> {
    lint_source(&format!("crates/fixture/src/{name}"), &fixture(name), kind)
}

/// Rule name → count, for order-insensitive assertions.
fn by_rule(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry(d.rule).or_insert(0) += 1;
    }
    map
}

#[test]
fn bad_safety_flags_block_and_impl() {
    let diags = lint_fixture("bad_safety.rs", FileKind::Lib);
    assert_eq!(by_rule(&diags), BTreeMap::from([("safety_comment", 2)]));
    assert!(diags[0].message.contains("SAFETY"), "{}", diags[0]);
    assert!(
        diags.iter().any(|d| d.message.contains("unsafe impl")),
        "{diags:?}"
    );
}

#[test]
fn good_safety_is_clean() {
    assert_eq!(lint_fixture("good_safety.rs", FileKind::Lib), vec![]);
}

#[test]
fn bad_lock_unwrap_flags_locks_and_io() {
    let diags = lint_fixture("bad_lock_unwrap.rs", FileKind::Lib);
    // .lock().unwrap(), .read().expect(, write_all().unwrap(), flush().expect(
    assert_eq!(by_rule(&diags), BTreeMap::from([("lock_unwrap", 4)]));
}

#[test]
fn binaries_may_unwrap_io() {
    assert_eq!(lint_fixture("bad_lock_unwrap.rs", FileKind::Bin), vec![]);
}

#[test]
fn bad_durable_io_flags_every_wal_call() {
    let diags = lint_fixture("bad_durable_io.rs", FileKind::Lib);
    // File::create, .sync_all(), fs::rename, .set_len(, .sync_data(),
    // fs::remove_file, File::open — one unwrap/expect each.
    assert_eq!(by_rule(&diags), BTreeMap::from([("lock_unwrap", 7)]));
}

#[test]
fn test_files_may_unwrap_durable_io() {
    assert_eq!(lint_fixture("bad_durable_io.rs", FileKind::Test), vec![]);
}

#[test]
fn bad_raw_lock_flags_both_constructions() {
    let diags = lint_fixture("bad_raw_lock.rs", FileKind::Lib);
    assert_eq!(by_rule(&diags), BTreeMap::from([("raw_lock", 2)]));
    assert!(
        diags[0].message.contains("OrderedMutex"),
        "diagnostic should point at the replacement: {}",
        diags[0]
    );
}

#[test]
fn bad_hot_path_flags_alloc_calls() {
    let diags = lint_fixture("bad_hot_path.rs", FileKind::Lib);
    // String::new(), format!(, .clone()
    assert_eq!(by_rule(&diags), BTreeMap::from([("hot_path_alloc", 3)]));
    for d in &diags {
        assert!(d.message.contains("opened at line"), "{d}");
    }
}

#[test]
fn good_hot_path_is_clean() {
    assert_eq!(lint_fixture("good_hot_path.rs", FileKind::Lib), vec![]);
}

#[test]
fn bad_unbounded_flags_queue_and_channel() {
    let diags = lint_fixture("bad_unbounded.rs", FileKind::Lib);
    assert_eq!(by_rule(&diags), BTreeMap::from([("unbounded_queue", 2)]));
}

#[test]
fn bad_metric_name_flags_each_kind() {
    let diags = lint_fixture("bad_metric_name.rs", FileKind::Lib);
    assert_eq!(by_rule(&diags), BTreeMap::from([("metric_name", 4)]));
    assert!(
        diags.iter().any(|d| d.message.contains("`_total`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`_seconds` or `_bytes`")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("[a-z_]+")),
        "{diags:?}"
    );
    // The multi-line `register_histogram` call is attributed to the
    // line carrying the call token, not the name literal.
    assert!(
        diags.iter().any(|d| d.message.contains("service_time")
            && fixture("bad_metric_name.rs")
                .lines()
                .nth(d.line - 1)
                .is_some_and(|l| l.contains("register_histogram"))),
        "{diags:?}"
    );
}

#[test]
fn good_metric_name_is_clean() {
    assert_eq!(lint_fixture("good_metric_name.rs", FileKind::Lib), vec![]);
}

#[test]
fn test_files_skip_metric_name() {
    assert_eq!(lint_fixture("bad_metric_name.rs", FileKind::Test), vec![]);
}

#[test]
fn bad_raw_atomic_flags_use_and_qualified_paths() {
    let diags = lint_fixture("bad_raw_atomic.rs", FileKind::Lib);
    assert_eq!(by_rule(&diags), BTreeMap::from([("raw_atomic", 2)]));
    assert!(
        diags[0].message.contains("staged_sync::atomic"),
        "diagnostic should point at the shim: {}",
        diags[0]
    );
}

#[test]
fn test_files_may_use_std_atomics() {
    assert_eq!(lint_fixture("bad_raw_atomic.rs", FileKind::Test), vec![]);
}

#[test]
fn bad_relaxed_flags_control_flow_not_counters() {
    let diags = lint_fixture("bad_relaxed.rs", FileKind::Lib);
    // The stop-flag load and store; the fetch_add bump and the
    // annotated aggregate read stay clean.
    assert_eq!(by_rule(&diags), BTreeMap::from([("relaxed", 2)]));
    assert!(
        diags.iter().all(|d| d.message.contains("Release")),
        "{diags:?}"
    );
}

#[test]
fn test_files_may_use_relaxed() {
    assert_eq!(lint_fixture("bad_relaxed.rs", FileKind::Test), vec![]);
}

#[test]
fn allow_directives_silence_every_form() {
    assert_eq!(lint_fixture("good_allow.rs", FileKind::Lib), vec![]);
}

#[test]
fn test_region_exempts_lock_rules() {
    assert_eq!(lint_fixture("test_region.rs", FileKind::Lib), vec![]);
}

#[test]
fn test_files_skip_lock_rules_but_not_safety() {
    let diags = lint_fixture("bad_raw_lock.rs", FileKind::Test);
    assert_eq!(diags, vec![]);
    let diags = lint_fixture("bad_safety.rs", FileKind::Test);
    assert_eq!(by_rule(&diags), BTreeMap::from([("safety_comment", 2)]));
}

#[test]
fn diagnostic_display_is_path_line_rule() {
    let diags = lint_fixture("bad_raw_lock.rs", FileKind::Lib);
    let line = diags[0].to_string();
    assert!(
        line.starts_with("crates/fixture/src/bad_raw_lock.rs:") && line.contains("[raw_lock]"),
        "display format drifted: {line}"
    );
}

/// The real gate: the workspace itself must stay lint-clean. This is
/// the same check CI runs via `cargo xtask lint`.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let diags = lint_workspace(&root);
    assert!(
        diags.is_empty(),
        "workspace lint violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
