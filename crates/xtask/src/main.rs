//! `cargo xtask <command>` — workspace automation.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask sits two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args.next().map_or_else(workspace_root, PathBuf::from);
            let diagnostics = xtask::lint::lint_workspace(&root);
            for d in &diagnostics {
                println!("{d}");
            }
            if diagnostics.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", diagnostics.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("usage: cargo xtask lint [workspace-root]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [workspace-root]");
            ExitCode::FAILURE
        }
    }
}
