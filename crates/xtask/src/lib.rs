//! Workspace automation library. The only resident today is the
//! concurrency-correctness lint pass (`cargo xtask lint`); see
//! [`lint`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
