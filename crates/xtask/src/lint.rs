//! The concurrency-correctness lint pass (DESIGN.md §10).
//!
//! A hand-rolled line/token scanner — no syn, no external deps — that
//! enforces the workspace's concurrency conventions over every `.rs`
//! file under `crates/`:
//!
//! | rule | requirement |
//! |------|-------------|
//! | `safety_comment` | every `unsafe` block/impl carries a `// SAFETY:` comment |
//! | `lock_unwrap` | no `.unwrap()`/`.expect()` on lock or I/O results in library code — use `staged_sync::lock_recover` / `?` |
//! | `raw_lock` | no raw `Mutex::new`/`RwLock::new` outside `crates/sync` — use the `Ordered*` wrappers |
//! | `hot_path_alloc` | no allocation-prone calls inside `// lint: hot_path` regions |
//! | `unbounded_queue` | every queue/channel construction states a bound |
//! | `metric_name` | registry metric names are `[a-z_]+`; counters end `_total`, histograms end `_seconds`/`_bytes`; inline label keys are `[a-z_]+` and contracted families (e.g. `db_plan_node_seconds{node}`) carry exactly their declared keys |
//! | `raw_atomic` | no `std::sync::atomic` outside `crates/sync` — use the `staged_sync::atomic` shims so `--cfg model` builds interpose schedule points |
//! | `relaxed` | `Ordering::Relaxed` only on counter bumps (`fetch_add`/`fetch_sub`/`fetch_max`); control-flow flags need `Release`/`Acquire`, counter reads state the opt-out with `// lint: allow(relaxed)` |
//!
//! Escapes: `// lint: allow(rule)` on the offending line or in the
//! contiguous comment block immediately above it; code after a
//! `#[cfg(test)]` line (the workspace keeps test modules at the end of
//! the file) is exempt from `lock_unwrap`, `raw_lock`,
//! `unbounded_queue` and `metric_name`; `src/bin/` binaries are
//! additionally exempt from `lock_unwrap`. Hot-path regions open with
//! `// lint: hot_path` and close with `// lint: end_hot_path`.

use std::fmt;
use std::fs;
use std::path::Path;

/// What kind of source a file is, which decides the applicable rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code in a server crate — every rule applies.
    Lib,
    /// A binary (`src/bin/`, `src/main.rs`) or bench — exempt from
    /// `lock_unwrap` (a CLI aborting on I/O error is fine).
    Bin,
    /// Integration tests — exempt from `lock_unwrap`, `raw_lock`,
    /// `unbounded_queue`, `metric_name`.
    Test,
}

/// One lint violation, formatted as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Rule identifier (the name `lint: allow(...)` takes).
    pub rule: &'static str,
    /// Human-oriented explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints every `.rs` file under `<root>/crates`, skipping the lint's
/// own test fixtures (they contain deliberate violations).
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut diagnostics = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.contains("xtask/tests/fixtures") {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        diagnostics.extend(lint_source(&rel, &source, kind_for_path(&rel)));
    }
    diagnostics
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Infers a file's [`FileKind`] from its workspace-relative path.
pub fn kind_for_path(path: &str) -> FileKind {
    if path.contains("/tests/") || path.contains("/benches/") {
        FileKind::Test
    } else if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Rules `#[cfg(test)]` regions and test files are exempt from. Tests
/// may use std atomics and `Relaxed` freely: test bookkeeping (e.g.
/// cross-iteration state in model tests) deliberately sits outside the
/// model scheduler's interposition.
const TEST_EXEMPT: &[&str] = &[
    "lock_unwrap",
    "raw_lock",
    "unbounded_queue",
    "metric_name",
    "raw_atomic",
    "relaxed",
];

/// Atomic read-modify-write calls that are counter bumps by
/// construction — the one context where `Ordering::Relaxed` is always
/// sound (the value is observed only in aggregate, never used to
/// publish other memory).
const COUNTER_RMW: &[&str] = &["fetch_add(", "fetch_sub(", "fetch_max("];

/// Registry registration calls whose first string-literal argument is a
/// metric family name, paired with the suffix convention that kind of
/// metric carries in the exposition. `ServerHandle::gauge` is a lookup,
/// not a registration, so a bare `.gauge(` is deliberately absent.
const METRIC_CALLS: &[(&str, &str)] = &[
    (".counter(", "counter"),
    (".counter_fn(", "counter"),
    (".gauge_fn(", "gauge"),
    (".gauge_collector(", "gauge"),
    (".histogram(", "histogram"),
    (".register_histogram(", "histogram"),
];

/// Labeled metric families with a fixed label-key contract: every
/// registration site must pass exactly these keys, in this order.
/// Checked when the `&[...]` labels argument sits on the registration
/// line (the lint's static reach); the per-plan-node histogram family
/// is the motivating entry — a registration without the `node` label
/// would silently merge all plan-node timings into one series.
const METRIC_LABELS: &[(&str, &[&str])] = &[
    ("db_plan_node_seconds", &["node"]),
    ("trace_outcomes_total", &["outcome"]),
];

/// Allocation-prone calls forbidden in `// lint: hot_path` regions.
/// `Arc::clone(..)` is the sanctioned spelling for refcount bumps and
/// never matches `.clone()`; `Vec::with_capacity` is allowed because
/// sizing a miss-path buffer is the point of a pool.
const HOT_PATH_ALLOC: &[&str] = &[
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::new()",
    "String::from(",
    "Box::new(",
    "Vec::new()",
    "vec![",
    ".clone()",
];

/// `.unwrap()`/`.expect(` receivers that poison-panic or hide I/O
/// errors; library code must use `staged_sync::lock_recover` (and
/// friends) or propagate with `?`.
const LOCK_RESULT: &[&str] = &[
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

/// I/O calls whose same-line `.unwrap()`/`.expect(` is flagged. The
/// second group covers durable-file I/O (DESIGN.md §13): the WAL and
/// checkpoint paths must surface disk failures as `DbError::Durability`,
/// never panic the process holding the commit lock.
const IO_CALLS: &[&str] = &[
    ".write_all(",
    ".flush()",
    ".read_exact(",
    ".read_to_string(",
    ".read_to_end(",
    ".set_nonblocking(",
    ".sync_all()",
    ".sync_data()",
    ".set_len(",
    "fs::rename(",
    "fs::remove_file(",
    "File::create(",
    "File::open(",
];

/// Lints one file's source. `path` is used only for diagnostics.
pub fn lint_source(path: &str, source: &str, kind: FileKind) -> Vec<Diagnostic> {
    let in_sync_crate = path.contains("crates/sync/src");
    let mut diagnostics = Vec::new();
    let mut scanner = Scanner::default();
    // Directives and SAFETY markers carried by the contiguous comment
    // block immediately above the current code line.
    let mut pending_allows: Vec<String> = Vec::new();
    let mut pending_safety = false;
    let mut in_test_region = false;
    let mut hot_path_open: Option<usize> = None;

    let lines: Vec<&str> = source.lines().collect();
    for (idx, &raw_line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = scanner.split_line(raw_line);
        let code_trim = code.trim();

        let directive = directive_text(&comment);
        let mut allows: Vec<String> = pending_allows.clone();
        if directive.starts_with("lint: allow(") {
            collect_allows(directive, &mut allows);
        }
        let safety_here = pending_safety || comment.contains("SAFETY:");

        if directive.starts_with("lint: end_hot_path") {
            if hot_path_open.take().is_none() {
                diagnostics.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "hot_path_alloc",
                    message: "`lint: end_hot_path` without an open `lint: hot_path` region"
                        .to_string(),
                });
            }
        } else if directive.starts_with("lint: hot_path") {
            if let Some(open) = hot_path_open {
                diagnostics.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "hot_path_alloc",
                    message: format!("`lint: hot_path` while the region from line {open} is open"),
                });
            }
            hot_path_open = Some(line_no);
        }

        if code_trim.is_empty() {
            if comment.is_empty() {
                // A blank line ends the comment block above a code line.
                pending_allows.clear();
                pending_safety = false;
            } else {
                // Comment-only line: keep accumulating directives.
                pending_allows = allows;
                pending_safety = safety_here;
            }
            continue;
        }

        if code_trim.starts_with("#[cfg(test)]") {
            // Workspace convention: the test module is the tail of the
            // file, so everything from here on is test code.
            in_test_region = true;
        }
        let testish = in_test_region || kind == FileKind::Test;
        let allowed = |rule: &str| allows.iter().any(|a| a == rule);
        let exempt = |rule: &'static str| {
            (testish && TEST_EXEMPT.contains(&rule))
                || (kind == FileKind::Bin && rule == "lock_unwrap")
                || allowed(rule)
        };

        // safety_comment — applies everywhere, even tests.
        if let Some(what) = unsafe_needing_comment(&code) {
            if !safety_here && !allowed("safety_comment") {
                diagnostics.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "safety_comment",
                    message: format!(
                        "`{what}` without a `// SAFETY:` comment on this line or the \
                         comment block above it"
                    ),
                });
            }
        }

        // lock_unwrap
        if !exempt("lock_unwrap") {
            for pat in LOCK_RESULT {
                if code.contains(pat) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "lock_unwrap",
                        message: format!(
                            "`{pat}` poison-panics the caller; use \
                             `staged_sync::lock_recover`/`read_recover`/`write_recover` \
                             or an `Ordered*` lock"
                        ),
                    });
                }
            }
            if (code.contains(".unwrap()") || code.contains(".expect("))
                && IO_CALLS.iter().any(|c| code.contains(c))
            {
                diagnostics.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "lock_unwrap",
                    message: "`.unwrap()`/`.expect()` on an I/O result in library code; \
                              propagate the error with `?`"
                        .to_string(),
                });
            }
        }

        // raw_lock — construction of untracked lock types outside the
        // sync crate.
        if !in_sync_crate && !exempt("raw_lock") {
            for pat in ["Mutex::new(", "RwLock::new("] {
                if contains_token_prefixed(&code, pat) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "raw_lock",
                        message: format!(
                            "raw `{}` outside `crates/sync`; use \
                             `staged_sync::Ordered{}` so the lock joins the rank order",
                            pat.trim_end_matches('('),
                            pat.trim_end_matches("::new(")
                        ),
                    });
                }
            }
        }

        // raw_atomic — std atomics bypass the sync crate's shims, so
        // `--cfg model` builds would have no schedule point (and no
        // interleaving coverage) at these operations.
        if !in_sync_crate && !exempt("raw_atomic") && code.contains("std::sync::atomic") {
            diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "raw_atomic",
                message: "`std::sync::atomic` outside `crates/sync`; use \
                          `staged_sync::atomic` so model builds interpose \
                          schedule points on every atomic op"
                    .to_string(),
            });
        }

        // relaxed — `Ordering::Relaxed` is reserved for counter bumps;
        // a Relaxed load/store that steers control flow is exactly the
        // class of bug the sampler's stop flag had.
        if !in_sync_crate
            && !exempt("relaxed")
            && code.contains("Ordering::Relaxed")
            && !COUNTER_RMW.iter().any(|p| code.contains(p))
        {
            diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "relaxed",
                message: "`Ordering::Relaxed` outside a counter bump \
                          (`fetch_add`/`fetch_sub`/`fetch_max`); control-flow \
                          flags need `Release`/`Acquire` pairing — counter \
                          reads state the opt-out with `// lint: allow(relaxed)`"
                    .to_string(),
            });
        }

        // unbounded_queue
        if !exempt("unbounded_queue") {
            for pat in ["SyncQueue::unbounded", "mpsc::channel"] {
                if contains_call(&code, pat) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "unbounded_queue",
                        message: format!(
                            "`{pat}` has no bound; use a bounded constructor or state the \
                             opt-out with `// lint: allow(unbounded_queue)`"
                        ),
                    });
                }
            }
        }

        // metric_name — registration names must follow the exposition
        // conventions. The registry re-checks the charset at runtime;
        // the per-kind suffix rules live only here.
        if !exempt("metric_name") {
            for &(token, metric_kind) in METRIC_CALLS {
                if !code.contains(token) {
                    continue;
                }
                // The blanked code located a real call; the name is
                // read from the raw line (string contents are blanked
                // in `code`). A multi-line call keeps the name as the
                // first token of the following line; a non-literal
                // first argument is out of the lint's static reach.
                let Some(at) = raw_line.find(token) else {
                    continue;
                };
                let rest = raw_line[at + token.len()..].trim_start();
                let name = if rest.is_empty() {
                    lines.get(idx + 1).and_then(|l| leading_string_literal(l))
                } else {
                    leading_string_literal(rest)
                };
                let Some(name) = name else { continue };
                if let Some(message) = metric_name_violation(metric_kind, name) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "metric_name",
                        message,
                    });
                }
                // The label-key side of the same conventions: keys in
                // an inline `&[...]` labels argument must be lowercase
                // `[a-z_]+`, and families with a declared contract
                // (`METRIC_LABELS`) must carry exactly those keys.
                // Labels on a later line are out of static reach.
                let Some(keys) = inline_label_keys(rest) else {
                    continue;
                };
                for key in &keys {
                    if key.is_empty() || !key.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
                        diagnostics.push(Diagnostic {
                            path: path.to_string(),
                            line: line_no,
                            rule: "metric_name",
                            message: format!(
                                "label key \"{key}\" on \"{name}\" must be \
                                 lowercase `[a-z_]+`"
                            ),
                        });
                    }
                }
                if let Some((_, contract)) =
                    METRIC_LABELS.iter().find(|(family, _)| *family == name)
                {
                    if keys != *contract {
                        diagnostics.push(Diagnostic {
                            path: path.to_string(),
                            line: line_no,
                            rule: "metric_name",
                            message: format!(
                                "family \"{name}\" must be registered with exactly \
                                 the label keys {contract:?}, got {keys:?}"
                            ),
                        });
                    }
                }
            }
        }

        // hot_path_alloc
        if hot_path_open.is_some() && !allowed("hot_path_alloc") {
            for pat in HOT_PATH_ALLOC {
                if code.contains(pat) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "hot_path_alloc",
                        message: format!(
                            "`{pat}` allocates inside a `lint: hot_path` region \
                             (opened at line {})",
                            hot_path_open.unwrap_or(0)
                        ),
                    });
                }
            }
        }

        // This code line consumed the comment block above it.
        pending_allows.clear();
        pending_safety = false;
    }

    if let Some(open) = hot_path_open {
        diagnostics.push(Diagnostic {
            path: path.to_string(),
            line: open,
            rule: "hot_path_alloc",
            message: "`lint: hot_path` region is never closed with `lint: end_hot_path`"
                .to_string(),
        });
    }
    diagnostics
}

/// Normalizes a captured comment for directive matching: strips the
/// doc-comment markers (`/`, `!`, `*`) and leading whitespace so a
/// directive is recognized only when it *opens* the comment — prose
/// that merely mentions `lint: hot_path` mid-sentence does not count.
fn directive_text(comment: &str) -> &str {
    comment.trim_start_matches(['/', '!', '*', ' ', '\t'])
}

/// Parses every `lint: allow(a, b)` directive out of a comment.
fn collect_allows(comment: &str, out: &mut Vec<String>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint: allow(") {
        rest = &rest[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        for rule in rest[..close].split(',') {
            out.push(rule.trim().to_string());
        }
        rest = &rest[close + 1..];
    }
}

/// Returns the flavor of `unsafe` on this line that needs a SAFETY
/// comment, if any. `unsafe fn` declarations are the caller's contract,
/// not an obligation discharged here, so they are exempt.
fn unsafe_needing_comment(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("unsafe") {
        let start = from + at;
        let end = start + "unsafe".len();
        from = end;
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let after_ok = end == code.len() || !is_ident_char(bytes[end]);
        if !before_ok || !after_ok {
            continue; // part of an identifier like `unsafe_code`
        }
        let rest = code[end..].trim_start();
        if rest.starts_with("fn") && !rest[2..].starts_with(|c: char| is_ident_char(c as u8)) {
            continue;
        }
        if rest.starts_with("impl") {
            return Some("unsafe impl");
        }
        return Some("unsafe");
    }
    None
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `code` calls `name` — the name appears at a token
/// boundary and is followed by `(`, optionally with a turbofish in
/// between, so `mpsc::channel::<u32>()` is caught but a `use` import
/// of the same path is not.
fn contains_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(name) {
        let start = from + at;
        let end = start + name.len();
        from = end;
        if start > 0 && is_ident_char(bytes[start - 1]) {
            continue;
        }
        let rest = &code[end..];
        let rest = match rest.strip_prefix("::<") {
            Some(generics) => match generics.find('>') {
                Some(close) => &generics[close + 1..],
                None => continue,
            },
            None => rest,
        };
        if rest.starts_with('(') {
            return true;
        }
    }
    false
}

/// If `text` (already trimmed of leading whitespace) opens with a plain
/// string literal, returns its contents. Metric names never carry
/// escapes, so the literal ends at the next quote.
fn leading_string_literal(text: &str) -> Option<&str> {
    let rest = text.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Label keys passed inline at a registration site: the `("key"` tuple
/// openers inside the `&[...]` labels argument on the registration
/// line. `None` when no inline labels argument is visible (multi-line
/// call — out of the lint's static reach); `Some(vec![])` for `&[]`.
fn inline_label_keys(rest: &str) -> Option<Vec<&str>> {
    let at = rest.find("&[")?;
    let body = &rest[at + 2..];
    let body = &body[..body.find(']')?];
    let mut keys = Vec::new();
    let mut from = 0;
    while let Some(p) = body[from..].find("(\"") {
        let start = from + p + 2;
        let end = body[start..].find('"')?;
        keys.push(&body[start..start + end]);
        from = start + end + 1;
    }
    Some(keys)
}

/// Why a registered metric name violates the exposition conventions,
/// if it does. The charset rule applies to every kind; counters and
/// histograms additionally carry a unit/kind suffix.
fn metric_name_violation(kind: &str, name: &str) -> Option<String> {
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
        return Some(format!(
            "metric name \"{name}\" must be lowercase `[a-z_]+` \
             (label values, not names, carry the variety)"
        ));
    }
    match kind {
        "counter" if !name.ends_with("_total") => {
            Some(format!("counter \"{name}\" must end in `_total`"))
        }
        "histogram" if !name.ends_with("_seconds") && !name.ends_with("_bytes") => Some(format!(
            "histogram \"{name}\" must end in `_seconds` or `_bytes`"
        )),
        _ => None,
    }
}

/// True when `code` contains `pat` not preceded by an identifier
/// character — so `OrderedMutex::new(` does not match `Mutex::new(`.
fn contains_token_prefixed(code: &str, pat: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(pat) {
        let start = from + at;
        if start == 0 || !is_ident_char(bytes[start - 1]) {
            return true;
        }
        from = start + pat.len();
    }
    false
}

/// A per-file scanner that splits each line into code (with string
/// literals blanked out) and comment text, tracking multi-line state
/// (block comments, raw strings).
#[derive(Default)]
struct Scanner {
    in_block_comment: bool,
    /// `Some(hashes)` while inside a raw string literal.
    in_raw_string: Option<usize>,
}

impl Scanner {
    /// Returns `(code, comment)` for one line. String literal contents
    /// are replaced with spaces in `code` so patterns never match
    /// inside them; comment text (doc or regular) lands in `comment`.
    fn split_line(&mut self, line: &str) -> (String, String) {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;

        while i < chars.len() {
            if self.in_block_comment {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_raw_string {
                if chars[i] == '"' && chars[i + 1..].iter().take(hashes).all(|&c| c == '#') {
                    self.in_raw_string = None;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment.push_str(&line[byte_offset(line, i) + 2..]);
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    code.push(' ');
                    i += 1;
                    // Ordinary string: skip to the closing quote,
                    // honoring escapes; unterminated = multi-line
                    // ordinary string (treated as raw, close enough).
                    let mut closed = false;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                closed = true;
                                break;
                            }
                            _ => {
                                code.push(' ');
                                i += 1;
                            }
                        }
                    }
                    if !closed && i >= chars.len() {
                        self.in_raw_string = Some(0);
                    }
                }
                'r' | 'b' if raw_string_hashes(&chars[i..]).is_some() => {
                    let (hashes, intro_len) =
                        raw_string_hashes(&chars[i..]).expect("checked by guard");
                    code.push(' ');
                    i += intro_len;
                    // Scan for the terminator on this same line.
                    let mut closed = false;
                    while i < chars.len() {
                        if chars[i] == '"' && chars[i + 1..].iter().take(hashes).all(|&c| c == '#')
                        {
                            i += 1 + hashes;
                            closed = true;
                            break;
                        }
                        code.push(' ');
                        i += 1;
                    }
                    if !closed {
                        self.in_raw_string = Some(hashes);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to closing quote.
                        code.push(' ');
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push(' ');
                        i += 3;
                    } else {
                        // Lifetime: keep going, the tick is harmless.
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }
}

/// If `chars` starts a raw (byte) string literal (`r"`, `r#"`, `br##"`,
/// …), returns `(hash_count, intro_length)`.
fn raw_string_hashes(chars: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    if chars.first() == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some((hashes, i + 1))
    } else {
        None
    }
}

fn byte_offset(line: &str, char_idx: usize) -> usize {
    line.char_indices()
        .nth(char_idx)
        .map_or(line.len(), |(b, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/fake/src/lib.rs", src, FileKind::Lib)
    }

    #[test]
    fn clean_source_is_clean() {
        assert!(lint("fn main() {}\n").is_empty());
    }

    #[test]
    fn patterns_inside_strings_do_not_match() {
        let src = r#"
fn f() -> &'static str {
    "call .lock().unwrap() and Mutex::new( and unsafe { } here"
}
"#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn patterns_inside_comments_do_not_match() {
        let src = "// you must never call .lock().unwrap() or Mutex::new(..)\nfn f() {}\n";
        assert!(lint(src).is_empty());
        let src = "/* unsafe { } in a block comment\n   spanning lines */\nfn f() {}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn ordered_mutex_does_not_trip_raw_lock() {
        let src = "static M: OrderedMutex<u8> = OrderedMutex::new(Rank::new(1), \"x\", 0);\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_directive_on_previous_comment_block() {
        let src = "\
// lint: allow(raw_lock) — this is the one sanctioned place,
// for reasons spelled out here.
let m = Mutex::new(0);
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_comment_block() {
        let src = "\
// lint: allow(raw_lock)

let m = Mutex::new(0);
";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn test_region_exempts_lock_rules_not_safety() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() {
        let g = m.lock().unwrap();
        let q = SyncQueue::unbounded();
        let u = unsafe { zap() };
    }
}
";
        let diags = lint(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "safety_comment");
    }

    #[test]
    fn unsafe_fn_declaration_is_exempt() {
        assert!(lint("unsafe fn f() {}\n").is_empty());
        assert_eq!(lint("unsafe impl Send for X {}\n").len(), 1);
    }

    #[test]
    fn hot_path_region_forbids_allocation_tokens() {
        let src = "\
// lint: hot_path — the cache-hit serve path
let k = String::from(page);
let b = Box::new(|| {});
let r = Arc::clone(&entry.response);
// lint: end_hot_path
";
        let diags = lint(src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "hot_path_alloc"));
    }

    #[test]
    fn metric_label_contract_enforced() {
        // The canonical registration passes.
        let src = "let h = registry.histogram(\"db_plan_node_seconds\", &[(\"node\", kind)]);\n";
        assert!(lint(src).is_empty());
        // Dropping the `node` label would merge every plan node into
        // one series.
        let src = "let h = registry.histogram(\"db_plan_node_seconds\", &[]);\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("[\"node\"]"), "{diags:?}");
        // A wrong key is a contract violation too.
        let src = "let h = registry.histogram(\"db_plan_node_seconds\", &[(\"kind\", k)]);\n";
        assert_eq!(lint(src).len(), 1);
        // Uncontracted families may label freely, but keys follow the
        // name charset.
        let src = "let c = registry.counter(\"cache_hits_total\", &[(\"tier\", \"stale\")]);\n";
        assert!(lint(src).is_empty());
        let src = "let c = registry.counter(\"cache_hits_total\", &[(\"Tier\", v)]);\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("label key"), "{diags:?}");
    }

    #[test]
    fn unbalanced_hot_path_region_reported() {
        let diags = lint("// lint: hot_path\nfn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("never closed"));
        let diags = lint("// lint: end_hot_path\nfn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("without an open"));
    }
}
