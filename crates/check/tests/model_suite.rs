//! The concurrency model suite: the workspace's synchronization
//! protocols driven under the deterministic scheduler in
//! `staged_sync::model`.
//!
//! Each test states an invariant that must hold on **every** explored
//! interleaving of a production protocol. The same tests double as the
//! mutation matrix: `staged-check mutants` re-runs them with one seeded
//! bug enabled (via `MODEL_MUTANTS=<name>`) and requires the suite to
//! fail — a surviving mutant means the checker lost detection power.
//!
//! Run with:
//! `RUSTFLAGS="--cfg model" CARGO_TARGET_DIR=target/model cargo test -p staged-check --test model_suite`
//! or via the runner: `cargo run -p staged-check -- all`.
#![cfg(model)]

use staged_core::model_fixtures as corefix;
use staged_core::{DocCache, GovernorConfig, Lookup, RequestKind, ServerStats};
use staged_db::model_fixtures::ModelWal;
use staged_db::{ConnectionPool, CrashPlan, Database, FsyncPolicy, ReadSet, WriteEvent};
use staged_http::Response;
use staged_pool::SyncQueue;
use staged_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use staged_sync::model::{self, Config, FailureKind, ReplaySpec};
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A scratch file for WAL protocols, unique per test so parallel tests
/// never share a log. Iterations within one exploration may reuse the
/// file; the protocols under test never read it back.
fn wal_path(test: &str) -> PathBuf {
    std::env::temp_dir().join(format!("staged-check-{}-{}.wal", test, std::process::id()))
}

fn event(table: &str) -> WriteEvent {
    WriteEvent {
        table: table.to_string(),
        keys: None,
        rows_affected: 1,
    }
}

fn reads_of(table: &str) -> Arc<ReadSet> {
    let mut rs = ReadSet::new();
    rs.record_table(table);
    Arc::new(rs)
}

// ---------------------------------------------------------------------
// Protocol 1: SyncQueue producer/consumer handoff
// ---------------------------------------------------------------------

/// Two parked consumers, two pushed items: every item must be delivered
/// exactly once and both consumers must return. Kills
/// `syncqueue_handoff_clobber` (the second push overwrites the parked
/// handoff item — one consumer starves) and `syncqueue_skip_notify`
/// (the backlog push skips the condvar — the second consumer sleeps
/// through its wake-up).
#[test]
fn syncqueue_handoff_preserves_items() {
    let cfg = Config::random("syncqueue_handoff_preserves_items", 400);
    model::explore(&cfg, || {
        let q = Arc::new(SyncQueue::bounded(4));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                model::spawn("consumer", move || q.pop().expect("queue never closed"))
            })
            .collect();
        q.push(1u32).unwrap();
        q.push(2u32).unwrap();
        let mut got: Vec<u32> = consumers.into_iter().map(|c| c.join()).collect();
        got.sort_unstable();
        assert_eq!(got, [1, 2], "each pushed item delivered exactly once");
    });
}

// ---------------------------------------------------------------------
// Protocol 2: connection-pool checkout / shed
// ---------------------------------------------------------------------

/// A dropped connection's token must come back to the pool: a later
/// `get_timeout` on a size-1 pool finds it, and a concurrent one either
/// gets it or sheds *and is counted*. Kills `pool_leak_token` (the
/// drop never returns the token, so the pool drains permanently).
#[test]
fn pool_tokens_return_on_drop() {
    // Sequential leg: the token's return is ordered before the retry.
    let cfg = Config::random("pool_tokens_return_seq", 150);
    model::explore(&cfg, || {
        let pool = Arc::new(ConnectionPool::new(Arc::new(Database::new()), 1));
        let p = Arc::clone(&pool);
        model::spawn("checkout", move || {
            let conn = p.get();
            drop(conn);
        })
        .join();
        let again = pool.get_timeout(Duration::from_millis(50));
        assert!(again.is_some(), "token leaked: pool empty after release");
    });

    // Concurrent leg: a racing checkout either wins the token or times
    // out — and a timeout must be visible in the shed counter.
    let cfg = Config::random("pool_tokens_return_race", 150);
    model::explore(&cfg, || {
        let pool = Arc::new(ConnectionPool::new(Arc::new(Database::new()), 1));
        let holder = {
            let p = Arc::clone(&pool);
            model::spawn("holder", move || drop(p.get()))
        };
        let waiter = {
            let p = Arc::clone(&pool);
            model::spawn("waiter", move || {
                p.get_timeout(Duration::from_millis(50)).is_some()
            })
        };
        holder.join();
        let got = waiter.join();
        if !got {
            assert!(
                pool.acquire_timeouts() >= 1,
                "a shed checkout must be counted"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Protocol 3: DocCache publish vs. invalidate epoch race
// ---------------------------------------------------------------------

/// A render that raced a write to a table it read must never be served
/// from the cache: whatever the interleaving of lookup → render →
/// publish against write → invalidate, a final cache hit always
/// carries the post-write data. Kills `doccache_skip_epoch_check`
/// (a pre-write render published after the invalidation sticks) and
/// `doccache_skip_evict` (a pre-write entry survives the invalidation).
#[test]
fn doccache_serves_only_current_data() {
    let check = || {
        // `truth` stands in for the database row the page renders.
        let truth = Arc::new(AtomicUsize::new(0));
        let dc = Arc::new(DocCache::new(Duration::from_secs(60), 8));
        let sc = Arc::new(corefix::Stale::new(Duration::from_secs(60), 0));

        let render = {
            let (truth, dc) = (Arc::clone(&truth), Arc::clone(&dc));
            model::spawn("render", move || {
                let snapshot = match dc.lookup("page") {
                    Lookup::Hit(_) => return, // nothing to publish
                    Lookup::Miss(s) => s,
                };
                let seen = truth.load(Ordering::Acquire);
                let body = Arc::new(Response::html(format!("v{seen}")));
                dc.publish("page", body, reads_of("item"), snapshot);
            })
        };
        let writer = {
            let (truth, dc, sc) = (Arc::clone(&truth), Arc::clone(&dc), Arc::clone(&sc));
            model::spawn("writer", move || {
                truth.store(1, Ordering::Release);
                corefix::invalidate_caches(Some(&dc), &sc, &event("item"));
            })
        };
        render.join();
        writer.join();

        if let Lookup::Hit(resp) = dc.lookup("page") {
            let current = format!("v{}", truth.load(Ordering::Acquire));
            assert_eq!(
                resp.body(),
                current.as_bytes(),
                "cache hit served pre-write data"
            );
        }
    };
    model::explore(&Config::random("doccache_current_random", 250), check);
    model::explore(&Config::pct("doccache_current_pct", 150, 3), check);
}

// ---------------------------------------------------------------------
// Protocol 4: WAL group commit
// ---------------------------------------------------------------------

/// Two writers committing through the group-commit protocol must both
/// be acknowledged, whether each leads its own sync or one rides as a
/// follower on the other's. Kills `wal_skip_notify` (the leader syncs
/// but never wakes the parked follower).
#[test]
fn wal_group_commit_acks_every_writer() {
    let path = wal_path("group-commit");
    let cfg = Config::random("wal_group_commit_acks", 300);
    model::explore(&cfg, move || {
        let wal = Arc::new(ModelWal::create(path.clone(), FsyncPolicy::Always).unwrap());
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let wal = Arc::clone(&wal);
                model::spawn("writer", move || {
                    let seq = wal.append("INSERT").expect("append on live wal");
                    wal.commit(seq)
                })
            })
            .collect();
        for w in writers {
            w.join().expect("commit acknowledged");
        }
    });
}

/// When the leader's fsync fails, the WAL poisons — and every parked
/// follower must be woken to observe the death instead of waiting for
/// an acknowledgement that can never come. Kills `wal_poison_silent`.
#[test]
fn wal_poisoned_sync_wakes_followers() {
    let path = wal_path("poison");
    let cfg = Config::random("wal_poison_wakes", 300);
    model::explore(&cfg, move || {
        let wal = Arc::new(
            ModelWal::create_with_crash(
                path.clone(),
                FsyncPolicy::Always,
                CrashPlan::none().kill_at_fsync(1),
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let wal = Arc::clone(&wal);
                model::spawn("writer", move || match wal.append("INSERT") {
                    Ok(seq) => wal.commit(seq).is_err(),
                    Err(_) => true, // append already saw the poison
                })
            })
            .collect();
        for w in writers {
            assert!(
                w.join(),
                "the injected fsync failure must reach every writer"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Protocol 5: connection-governor permit lifecycle
// ---------------------------------------------------------------------

/// Dropping a permit must free both the global and the per-IP slot:
/// after every racing connection is gone, a fresh one from the same IP
/// is admitted. Kills `governor_leak_ip_slot` (the drop leaves the
/// per-IP count pinned, locking the address out forever).
#[test]
fn governor_slot_released_on_drop() {
    let cfg = Config::random("governor_slot_released", 250);
    model::explore(&cfg, || {
        let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 7));
        let gov = Arc::new(corefix::Governor::new(GovernorConfig {
            max_connections: 2,
            per_ip_max_connections: 1,
            ..GovernorConfig::default()
        }));
        let conns: Vec<_> = (0..2)
            .map(|_| {
                let gov = Arc::clone(&gov);
                // Racing admits from one IP: at most one holds the slot
                // at a time; a turnaway here is legal.
                model::spawn("conn", move || drop(gov.admit(Some(ip))))
            })
            .collect();
        for c in conns {
            c.join();
        }
        let fresh = gov.admit(Some(ip));
        assert!(
            fresh.is_ok(),
            "per-IP slot leaked: admit refused after all permits dropped"
        );
        assert_eq!(gov.open(), 1, "only the fresh permit should be open");
        drop(fresh);
    });
}

// ---------------------------------------------------------------------
// Protocol 6: cache-invalidation nesting (doc cache before stale cache)
// ---------------------------------------------------------------------

/// The write observer purges the doc cache before the stale fallback.
/// Invariant, from the reader's side (stale first, then doc): once the
/// stale cache is observed empty, the doc cache must no longer hit —
/// otherwise a reader that fell past the purged fallback re-serves the
/// superseded page from the front line. Kills
/// `core_invalidate_nesting_flip`.
#[test]
fn cache_invalidation_is_doc_first() {
    let check = || {
        let dc = Arc::new(DocCache::new(Duration::from_secs(60), 8));
        let sc = Arc::new(corefix::Stale::new(Duration::from_secs(60), 8));
        // Seed both caches with the pre-write page.
        let snapshot = match dc.lookup("page") {
            Lookup::Miss(s) => s,
            Lookup::Hit(_) => unreachable!("fresh cache"),
        };
        let body = Arc::new(Response::html("old"));
        assert!(dc.publish("page", body, reads_of("item"), snapshot));
        sc.put_tagged("page", "old", Some(reads_of("item")));

        let writer = {
            let (dc, sc) = (Arc::clone(&dc), Arc::clone(&sc));
            model::spawn("writer", move || {
                corefix::invalidate_caches(Some(&dc), &sc, &event("item"));
            })
        };
        let reader = {
            let (dc, sc) = (Arc::clone(&dc), Arc::clone(&sc));
            model::spawn("reader", move || {
                let stale_gone = sc.get("page").is_none();
                let doc_hit = matches!(dc.lookup("page"), Lookup::Hit(_));
                assert!(
                    !(stale_gone && doc_hit),
                    "doc cache still serving after the stale fallback was purged"
                );
            })
        };
        writer.join();
        reader.join();
    };
    model::explore(&Config::random("invalidate_doc_first_random", 250), check);
    model::explore(&Config::pct("invalidate_doc_first_pct", 150, 3), check);
}

// ---------------------------------------------------------------------
// Completion counters trail the response bytes
// ---------------------------------------------------------------------

/// Workers record a request's completion *after* writing its response —
/// so a client that has the bytes may briefly see a counter that has
/// not moved, but a moved counter always means the bytes were written.
/// This is the ordering `tests/cross_crate.rs` leans on when it polls
/// for counters to settle after a response arrives; here the checker
/// proves the direction can't invert on any interleaving.
#[test]
fn stats_completion_follows_send() {
    let cfg = Config::random("stats_completion_follows_send", 200);
    model::explore(&cfg, || {
        let sent = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::new(Duration::from_secs(1)));
        let worker = {
            let (sent, stats) = (Arc::clone(&sent), Arc::clone(&stats));
            model::spawn("worker", move || {
                sent.store(true, Ordering::Release); // response bytes written
                stats.record_completion(RequestKind::LengthyDynamic);
            })
        };
        let observer = {
            let (sent, stats) = (Arc::clone(&sent), Arc::clone(&stats));
            model::spawn("observer", move || {
                if stats.completed(RequestKind::LengthyDynamic) >= 1 {
                    assert!(
                        sent.load(Ordering::Acquire),
                        "completion counter moved before the response was sent"
                    );
                }
            })
        };
        worker.join();
        observer.join();
    });
}

// ---------------------------------------------------------------------
// The matrix catches its mutants, and failures replay
// ---------------------------------------------------------------------

/// End-to-end detection + replay on a production protocol: enabling a
/// seeded bug makes exploration fail, and the failure's printed
/// `MODEL_REPLAY` spec re-runs the exact interleaving — same decision
/// path, same event-log hash, same verdict.
#[test]
fn mutant_failures_replay_deterministically() {
    let build =
        |label: &'static str| Config::random(label, 400).with_mutants(&["syncqueue_skip_notify"]);
    let protocol = || {
        let q = Arc::new(SyncQueue::bounded(4));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                model::spawn("consumer", move || q.pop().expect("queue never closed"))
            })
            .collect();
        q.push(1u32).unwrap();
        q.push(2u32).unwrap();
        for c in consumers {
            c.join();
        }
    };
    let failure = model::explore_result(&build("mutant_replay"), protocol)
        .expect_err("the seeded lost wake-up must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "a skipped notify strands a consumer: {failure}"
    );

    let spec = ReplaySpec::parse(&failure.replay_spec()).expect("spec parses");
    let replayed = model::replay(&build("mutant_replay"), &spec, protocol)
        .expect_err("replay reproduces the failure");
    assert_eq!(replayed.event_hash, failure.event_hash, "replay diverged");
    assert_eq!(replayed.path, failure.path, "replay took a different path");
    assert!(matches!(replayed.kind, FailureKind::Deadlock(_)));
}

/// The operator-facing replay path: exporting the printed
/// `MODEL_REPLAY=` spec makes `explore_result` skip exploration and
/// re-run exactly the captured schedule, pinned by the event-log hash.
/// The intercept is label-filtered, so only the matching test re-runs.
#[test]
fn model_replay_env_reruns_pinned_schedule() {
    let build = || Config::random("env_replay", 400).with_mutants(&["syncqueue_skip_notify"]);
    let protocol = || {
        let q = Arc::new(SyncQueue::bounded(4));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                model::spawn("consumer", move || q.pop().expect("queue never closed"))
            })
            .collect();
        q.push(1u32).unwrap();
        q.push(2u32).unwrap();
        for c in consumers {
            c.join();
        }
    };
    let failure = model::explore_result(&build(), protocol).expect_err("seeded bug must be caught");
    assert!(failure.iteration > 0 || !failure.path.is_empty() || failure.seed != 0);

    // What an operator would paste from the failure report.
    std::env::set_var("MODEL_REPLAY", failure.replay_spec());
    let replayed = model::explore_result(&build(), protocol);
    std::env::remove_var("MODEL_REPLAY");

    let replayed = replayed.expect_err("pinned schedule reproduces the failure");
    assert_eq!(replayed.iteration, 0, "replay runs the one schedule only");
    assert_eq!(replayed.event_hash, failure.event_hash, "hash pin held");
    assert!(matches!(replayed.kind, FailureKind::Deadlock(_)));
}
