//! `staged-check` — the model-checking runner.
//!
//! Wraps the two `--cfg model` test binaries (the scheduler smoke suite
//! in `crates/sync` and the protocol suite in this crate) behind one
//! command, and drives the mutation matrix: every seeded concurrency
//! bug in the workspace must make the suite fail. A mutant the suite
//! tolerates is a *survivor* — a hole in the checker's detection power
//! — and fails the run.
//!
//! ```text
//! cargo run -p staged-check -- suite     # protocols, clean
//! cargo run -p staged-check -- mutants   # seeded bugs, all must be caught
//! cargo run -p staged-check -- all      # both (the CI entry point)
//! ```
//!
//! Environment:
//! * `MODEL_SEED` — base exploration seed, forwarded and logged.
//! * `MODEL_REPLAY` — replay spec, forwarded (printed by any failure).
//! * `MODEL_TRACE_DIR` — failure-trace directory; defaults to
//!   `target/model/traces`.

use std::process::{Command, ExitCode};

/// Every seeded mutant, paired with the invariant test that must catch
/// it. Adding a `mutant!` site to the workspace means adding a row
/// here, or the matrix will not prove it detectable.
const MATRIX: &[(&str, &str, &str)] = &[
    (
        "syncqueue_handoff_clobber",
        "model_suite",
        "syncqueue_handoff_preserves_items",
    ),
    (
        "syncqueue_skip_notify",
        "model_suite",
        "syncqueue_handoff_preserves_items",
    ),
    (
        "pool_leak_token",
        "model_suite",
        "pool_tokens_return_on_drop",
    ),
    (
        "doccache_skip_epoch_check",
        "model_suite",
        "doccache_serves_only_current_data",
    ),
    (
        "doccache_skip_evict",
        "model_suite",
        "doccache_serves_only_current_data",
    ),
    (
        "wal_skip_notify",
        "model_suite",
        "wal_group_commit_acks_every_writer",
    ),
    (
        "wal_poison_silent",
        "model_suite",
        "wal_poisoned_sync_wakes_followers",
    ),
    (
        "governor_leak_ip_slot",
        "model_suite",
        "governor_slot_released_on_drop",
    ),
    (
        "core_invalidate_nesting_flip",
        "model_suite",
        "cache_invalidation_is_doc_first",
    ),
];

fn usage() -> ExitCode {
    eprintln!("usage: staged-check <suite|mutants|all>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let trace_dir =
        std::env::var("MODEL_TRACE_DIR").unwrap_or_else(|_| "target/model/traces".to_string());
    let _ = std::fs::create_dir_all(&trace_dir);

    match std::env::var("MODEL_SEED") {
        Ok(seed) => println!("staged-check: MODEL_SEED={seed}"),
        Err(_) => println!(
            "staged-check: MODEL_SEED unset — per-label default seeds \
             (every failure prints its exact seed and path)"
        ),
    }
    println!("staged-check: failure traces in {trace_dir}");

    let ok = match mode.as_str() {
        "suite" => run_suites(&trace_dir),
        "mutants" => run_matrix(&trace_dir),
        "all" => {
            let clean = run_suites(&trace_dir);
            // The matrix is still informative when the clean suite
            // fails, so always run it.
            run_matrix(&trace_dir) && clean
        }
        _ => return usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A `cargo test` invocation against the model-mode target directory,
/// with `--cfg model` appended to whatever RUSTFLAGS the caller has.
fn model_test(trace_dir: &str) -> Command {
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !flags.contains("--cfg model") {
        if !flags.is_empty() {
            flags.push(' ');
        }
        flags.push_str("--cfg model");
    }
    let mut cmd = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()));
    cmd.arg("test")
        .env("RUSTFLAGS", flags)
        .env("CARGO_TARGET_DIR", "target/model")
        .env("MODEL_TRACE_DIR", trace_dir);
    cmd
}

/// Runs the scheduler smoke suite and the protocol suite clean.
fn run_suites(trace_dir: &str) -> bool {
    let mut ok = true;
    for (pkg, test) in [
        ("staged-sync", "model_smoke"),
        ("staged-check", "model_suite"),
    ] {
        println!("staged-check: suite {pkg}::{test}");
        let status = model_test(trace_dir)
            .args(["-p", pkg, "--test", test])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("staged-check: FAILED {pkg}::{test} ({s})");
                ok = false;
            }
            Err(e) => {
                eprintln!("staged-check: could not run cargo test: {e}");
                ok = false;
            }
        }
    }
    ok
}

/// Runs the invariant tests with each seeded bug enabled; the test
/// must fail (mutant caught). Output of each child is captured and only
/// shown for survivors, where it is the evidence that matters.
fn run_matrix(trace_dir: &str) -> bool {
    let mut survivors = Vec::new();
    for &(mutant, test_bin, test_name) in MATRIX {
        print!("staged-check: mutant {mutant:<30} ");
        let output = model_test(trace_dir)
            .args([
                "-p",
                "staged-check",
                "--test",
                test_bin,
                test_name,
                "--",
                "--exact",
            ])
            .env("MODEL_MUTANTS", mutant)
            .output();
        match output {
            Ok(out) if out.status.success() => {
                println!("SURVIVED ({test_name} passed with the bug enabled)");
                survivors.push(mutant);
                let stdout = String::from_utf8_lossy(&out.stdout);
                for line in stdout.lines() {
                    eprintln!("    {line}");
                }
            }
            Ok(_) => println!("caught by {test_name}"),
            Err(e) => {
                println!("ERROR running cargo test: {e}");
                survivors.push(mutant);
            }
        }
    }
    if survivors.is_empty() {
        println!(
            "staged-check: mutation matrix clean — {} mutants, 0 survivors",
            MATRIX.len()
        );
        true
    } else {
        eprintln!(
            "staged-check: {} survivor(s) of {}: {}",
            survivors.len(),
            MATRIX.len(),
            survivors.join(", ")
        );
        false
    }
}
