//! Scheduler self-tests for `--cfg model` builds. These prove the
//! checker's *detection power* on minimal protocols before the real
//! suite in `crates/check` points it at the production ones:
//! lost updates (DFS), lost wakeups (deadlock detection), timed-wait
//! arm coverage, mutant gating, and seed/path replay.
//!
//! Run with:
//! `RUSTFLAGS="--cfg model" CARGO_TARGET_DIR=target/model cargo test -p staged-sync --test model_smoke`
#![cfg(model)]

use staged_sync::atomic::{AtomicUsize, Ordering};
use staged_sync::model::{self, Config, FailureKind, ReplaySpec};
use staged_sync::{mutant, Condvar, OrderedMutex, Rank};
use std::sync::Arc;

/// Two threads increment a shared counter with a racy load-then-store.
/// Exhaustive DFS must find the interleaving that loses an update.
#[test]
fn dfs_finds_lost_update() {
    let cfg = Config::dfs("dfs_finds_lost_update", 500);
    let failure = model::explore_result(&cfg, || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn("inc", move || {
                    let v = n.load(Ordering::Acquire);
                    n.store(v + 1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    })
    .expect_err("DFS must find the lost-update interleaving");
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("lost update")),
        "unexpected failure kind: {failure}"
    );
    assert!(!failure.path.is_empty(), "failure must carry its path");
}

/// A consumer that checks the flag *before* taking the lock-protected
/// wait misses the wakeup when the producer runs in between; with no
/// timeout the iteration must be reported as a global deadlock.
#[test]
fn deadlock_is_detected_and_described() {
    let cfg = Config::random("deadlock_is_detected", 20);
    let failure = model::explore_result(&cfg, || {
        let m = Arc::new(OrderedMutex::new(Rank::new(10), "smoke.never", ()));
        let cv = Arc::new(Condvar::new());
        let t = {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            model::spawn("waiter", move || {
                let mut g = m.lock();
                // Nobody ever notifies: guaranteed lost wakeup.
                cv.wait(&mut g);
            })
        };
        t.join();
    })
    .expect_err("un-notified wait must deadlock");
    match &failure.kind {
        FailureKind::Deadlock(detail) => {
            assert!(
                detail.contains("waiter"),
                "deadlock report should name the blocked thread: {detail}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// The correct flag/condvar handshake passes every explored schedule.
#[test]
fn correct_handshake_survives_exploration() {
    let cfg = Config::pct("correct_handshake", 60, 3);
    let report = model::explore_result(&cfg, || {
        let m = Arc::new(OrderedMutex::new(Rank::new(10), "smoke.flag", false));
        let cv = Arc::new(Condvar::new());
        let consumer = {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            model::spawn("consumer", move || {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            })
        };
        {
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        }
        consumer.join();
    })
    .expect("correct protocol must survive");
    assert_eq!(report.schedules, 60);
}

/// `wait_for` under the model: the scheduler may fire the timeout at
/// any point, so across iterations both the notified arm and the
/// timed-out arm must be observed — with no real sleeping involved.
#[test]
fn timed_wait_explores_both_arms() {
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    static ARMS: StdAtomicUsize = StdAtomicUsize::new(0);
    ARMS.store(0, std::sync::atomic::Ordering::SeqCst);

    let cfg = Config::random("timed_wait_both_arms", 80);
    model::explore_result(&cfg, || {
        let m = Arc::new(OrderedMutex::new(Rank::new(10), "smoke.timed", false));
        let cv = Arc::new(Condvar::new());
        let consumer = {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            model::spawn("consumer", move || {
                let mut g = m.lock();
                if !*g {
                    let r = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
                    let bit = if r.timed_out() { 1 } else { 2 };
                    ARMS.fetch_or(bit, std::sync::atomic::Ordering::SeqCst);
                }
            })
        };
        {
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        }
        consumer.join();
    })
    .expect("timed handshake never fails");
    let arms = ARMS.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(
        arms, 3,
        "expected both timeout and notify arms, saw {arms:#b}"
    );
}

/// The `mutant!` macro: disabled it runs the good branch (exploration
/// passes); enabled via `Config::with_mutants` the checker must catch
/// the injected lost notify as a deadlock.
#[test]
fn mutant_gating_and_detection() {
    let protocol = || {
        let m = Arc::new(OrderedMutex::new(Rank::new(10), "smoke.mutant", false));
        let cv = Arc::new(Condvar::new());
        let consumer = {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            model::spawn("consumer", move || {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            })
        };
        {
            let mut g = m.lock();
            *g = true;
            mutant!("smoke_skip_notify" => {
                // broken: producer forgets to wake the consumer
            } else {
                cv.notify_one();
            });
        }
        consumer.join();
    };

    let clean = Config::random("mutant_clean", 20);
    model::explore_result(&clean, protocol).expect("good branch must survive");

    let broken = Config::random("mutant_broken", 20).with_mutants(&["smoke_skip_notify"]);
    let failure =
        model::explore_result(&broken, protocol).expect_err("skip-notify mutant must be caught");
    assert!(matches!(failure.kind, FailureKind::Deadlock(_)));
}

/// A captured failure replays deterministically: same decision path,
/// same event-log hash, same failure kind.
#[test]
fn failure_replays_to_identical_hash() {
    let mk = || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn("inc", move || {
                    let v = n.load(Ordering::Acquire);
                    n.store(v + 1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    };

    let cfg = Config::dfs("replay_round_trip", 500);
    let failure = model::explore_result(&cfg, mk).expect_err("DFS must find the bug");

    let spec = ReplaySpec::parse(&failure.replay_spec()).expect("spec must parse");
    assert_eq!(spec.label, "replay_round_trip");
    assert_eq!(spec.hash, Some(failure.event_hash));

    let replayed = model::replay(&cfg, &spec, mk).expect_err("replay must refail");
    assert_eq!(
        replayed.event_hash, failure.event_hash,
        "hash must pin the schedule"
    );
    assert_eq!(
        replayed.path, failure.path,
        "decision path must be identical"
    );
    assert!(matches!(&replayed.kind, FailureKind::Panic(msg) if msg.contains("lost update")));
}

/// `choose` forks the schedule: DFS must visit every branch.
#[test]
fn choose_branches_are_enumerated() {
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    static SEEN: StdAtomicUsize = StdAtomicUsize::new(0);
    SEEN.store(0, std::sync::atomic::Ordering::SeqCst);

    let cfg = Config::dfs("choose_branches", 50);
    model::explore_result(&cfg, || {
        let branch = model::choose(3);
        SEEN.fetch_or(1 << branch, std::sync::atomic::Ordering::SeqCst);
    })
    .expect("no failure expected");
    assert_eq!(SEEN.load(std::sync::atomic::Ordering::SeqCst), 0b111);
}
