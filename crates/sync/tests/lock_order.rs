//! Deliberate violations proving the detector fires, with both
//! acquisition stacks in the panic message.
//!
//! Gated on `debug_assertions`: in a plain release test run the
//! wrappers are pass-throughs and these seeded inversions would
//! (correctly) not panic.
#![cfg(debug_assertions)]

use staged_sync::{assert_no_locks_held, held_lock_names, OrderedMutex, OrderedRwLock, Rank};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` expecting a detector panic; returns the panic message.
fn detector_panic(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("detector should have panicked");
    err.downcast_ref::<String>()
        .expect("detector panics carry a formatted message")
        .clone()
}

#[test]
fn rank_inversion_panics_with_both_stacks() {
    let outer = OrderedMutex::new(Rank::new(10), "test.low", ());
    let inner = OrderedMutex::new(Rank::new(20), "test.high", ());
    let msg = detector_panic(|| {
        let _hi = inner.lock();
        let _lo = outer.lock(); // rank 10 under rank 20: inversion
    });
    assert!(msg.contains("lock-order violation"), "message: {msg}");
    // Both locks are named with their ranks...
    assert!(msg.contains("\"test.low\" (rank 10)"), "message: {msg}");
    assert!(msg.contains("\"test.high\" (rank 20)"), "message: {msg}");
    // ...and both acquisition stacks point into this test file.
    assert!(
        msg.contains("held-lock acquisition stack"),
        "message: {msg}"
    );
    assert!(
        msg.contains("offending acquisition stack"),
        "message: {msg}"
    );
    assert!(
        msg.matches("tests/lock_order.rs").count() >= 2,
        "both stacks should cite this file: {msg}"
    );
    assert!(msg.contains("DESIGN.md"), "message: {msg}");
    // The unwound guards deregistered themselves.
    assert!(held_lock_names().is_empty());
}

#[test]
fn equal_rank_without_allowance_panics() {
    let a = OrderedMutex::new(Rank::new(30), "test.eq_a", ());
    let b = OrderedMutex::new(Rank::new(30), "test.eq_b", ());
    let msg = detector_panic(|| {
        let _ga = a.lock();
        let _gb = b.lock();
    });
    assert!(msg.contains("lock-order violation"), "message: {msg}");
    assert!(msg.contains("strictly increasing"), "message: {msg}");
}

#[test]
fn allow_same_rank_family_nests() {
    // Models the per-table data locks: same rank, canonical external
    // (sorted-name) acquisition order.
    let rank = Rank::new(40).allow_same_rank();
    let a = OrderedRwLock::new(rank, "test.family", 1);
    let b = OrderedRwLock::new(rank, "test.family", 2);
    let ga = a.read();
    let gb = b.read();
    assert_eq!(*ga + *gb, 3);
    assert_eq!(held_lock_names(), vec!["test.family", "test.family"]);
}

#[test]
fn same_rank_mixed_allowance_still_panics() {
    // The allowance must be mutual: a strict lock at the same rank is
    // an unordered sibling even under an allow_same_rank holder.
    let family = OrderedMutex::new(Rank::new(50).allow_same_rank(), "test.fam", ());
    let strict = OrderedMutex::new(Rank::new(50), "test.strict", ());
    let msg = detector_panic(|| {
        let _gf = family.lock();
        let _gs = strict.lock();
    });
    assert!(msg.contains("lock-order violation"), "message: {msg}");
}

#[test]
fn rwlock_read_under_higher_write_panics() {
    let low = OrderedRwLock::new(Rank::new(10), "test.rw_low", ());
    let high = OrderedRwLock::new(Rank::new(20), "test.rw_high", ());
    let msg = detector_panic(|| {
        let _w = high.write();
        let _r = low.read();
    });
    assert!(msg.contains("lock-order violation"), "message: {msg}");
    assert!(msg.contains("\"test.rw_low\""), "message: {msg}");
}

#[test]
fn blocking_region_with_lock_held_panics() {
    let m = OrderedMutex::new(Rank::new(60), "test.held_across", ());
    let msg = detector_panic(|| {
        let _g = m.lock();
        assert_no_locks_held("test::fake_queue_pop");
    });
    assert!(msg.contains("blocking-region violation"), "message: {msg}");
    assert!(msg.contains("test::fake_queue_pop"), "message: {msg}");
    assert!(msg.contains("\"test.held_across\""), "message: {msg}");
    assert!(msg.contains("tests/lock_order.rs"), "message: {msg}");
}

#[test]
fn blocking_region_without_locks_is_silent() {
    assert_no_locks_held("test::fine");
}

#[test]
fn order_resets_between_unrelated_acquisitions() {
    let high = OrderedMutex::new(Rank::new(90), "test.first_high", ());
    let low = OrderedMutex::new(Rank::new(10), "test.then_low", ());
    // Sequential (non-nested) acquisitions in any rank order are fine.
    drop(high.lock());
    drop(low.lock());
    drop(high.lock());
}
