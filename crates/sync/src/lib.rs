//! Rank-ordered locks: the one place in the workspace where blocking
//! synchronization primitives are constructed.
//!
//! The staged server is a web of hand-rolled concurrency — synchronized
//! queues, a buffer pool, a circuit breaker, stats collectors — and a
//! single inconsistent lock acquisition order between any two of those
//! sites is a latent deadlock that no unit test reliably catches. This
//! crate makes the order machine-checked:
//!
//! * every [`OrderedMutex`]/[`OrderedRwLock`] carries a [`Rank`] and a
//!   name (the workspace-wide rank map lives in `DESIGN.md` §10);
//! * while the detector is active (`cfg(debug_assertions)` — i.e. plain
//!   `cargo test` — or the `lock-order` feature), each thread records
//!   its acquisition stack, and acquiring a lock whose rank is not
//!   strictly above the last-acquired one panics with both acquisition
//!   stacks;
//! * [`assert_no_locks_held`] marks blocking regions (queue push/pop,
//!   socket writes): entering one with any registered lock held panics,
//!   because a lock held across a blocking wait is the other half of
//!   every queue-deadlock story;
//! * in release builds without the feature, the wrappers are
//!   `#[inline]` pass-throughs to `parking_lot` — zero bookkeeping, no
//!   atomics, nothing to measure (the throughput bench gates this).
//!
//! The [`lock_recover`]/[`read_recover`]/[`write_recover`] helpers are
//! for the few places (tests, harnesses) that still use `std::sync`
//! locks: they enter a poisoned lock instead of double-panicking a
//! worker that merely shares a mutex with a panicked sibling.
//!
//! # Examples
//!
//! ```
//! use staged_sync::{OrderedMutex, Rank};
//!
//! static COUNTER: OrderedMutex<u64> = OrderedMutex::new(Rank::new(10), "example.counter", 0);
//! *COUNTER.lock() += 1;
//! assert_eq!(*COUNTER.lock(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, PoisonError};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};
use std::time::Duration;

pub use parking_lot::WaitTimeoutResult;

pub mod atomic;

#[cfg(model)]
pub mod model;

/// Marks a deliberately-broken protocol variant for the model checker
/// to catch (DESIGN.md §15). Outside `--cfg model` builds this expands
/// to the correct branch only — the broken code is not compiled at all.
///
/// ```ignore
/// staged_sync::mutant!("queue_skip_notify" => {
///     // broken: forget to wake the consumer
/// } else {
///     self.not_empty.notify_one();
/// });
/// ```
#[cfg(model)]
#[macro_export]
macro_rules! mutant {
    ($name:literal => $bad:block else $good:block) => {
        if $crate::model::mutant_enabled($name) {
            $bad
        } else {
            $good
        }
    };
}

/// Marks a deliberately-broken protocol variant for the model checker
/// to catch (DESIGN.md §15). Outside `--cfg model` builds this expands
/// to the correct branch only — the broken code is not compiled at all.
#[cfg(not(model))]
#[macro_export]
macro_rules! mutant {
    ($name:literal => $bad:block else $good:block) => {
        $good
    };
}

/// Drops model ownership of a mutex/rwlock-write when the guard drops.
/// Declared before the real guard field so the *real* unlock happens
/// first (fields drop in declaration order; this type comes after).
#[cfg(model)]
struct ModelExclusiveRelease {
    id: usize,
    name: &'static str,
}

#[cfg(model)]
impl Drop for ModelExclusiveRelease {
    fn drop(&mut self) {
        model::mutex_release(self.id);
    }
}

/// Drops model ownership of an rwlock read share.
#[cfg(model)]
struct ModelReadRelease {
    id: usize,
}

#[cfg(model)]
impl Drop for ModelReadRelease {
    fn drop(&mut self) {
        model::rw_release_read(self.id);
    }
}

/// Thin address-based identity for model-mode lock bookkeeping (the
/// wrappers are `const`-constructible, so identity cannot be assigned
/// at construction time).
#[cfg(model)]
fn model_id<T: ?Sized>(v: &T) -> usize {
    std::ptr::from_ref(v).cast::<u8>() as usize
}

/// Whether the lock-order detector is compiled in. `true` under
/// `cfg(debug_assertions)` or the `lock-order` feature; `false` in
/// plain release builds, where every wrapper is a zero-cost
/// pass-through.
pub const fn detector_active() -> bool {
    cfg!(any(debug_assertions, feature = "lock-order"))
}

/// A lock's position in the workspace-wide acquisition order.
///
/// Ranks must be acquired in strictly increasing order on any one
/// thread. The full map lives in `DESIGN.md` §10; pick an unused value
/// between the ranks of the locks yours nests inside and the ones it
/// holds across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank {
    value: u16,
    allow_same: bool,
}

impl Rank {
    /// A rank with the default strict ordering: acquiring a second lock
    /// of the same rank on one thread is reported as an inversion (it
    /// is either a self-deadlock or an unordered sibling acquisition).
    pub const fn new(value: u16) -> Self {
        Rank {
            value,
            allow_same: false,
        }
    }

    /// Permits nesting several locks of this same rank on one thread.
    ///
    /// Reserve this for lock families with a *canonical external
    /// order* — e.g. per-table data locks that are always acquired in
    /// sorted table-name order — where the rank map cannot enumerate
    /// the instances.
    pub const fn allow_same_rank(self) -> Self {
        Rank {
            value: self.value,
            allow_same: true,
        }
    }

    /// The numeric rank.
    pub const fn value(&self) -> u16 {
        self.value
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(any(debug_assertions, feature = "lock-order"))]
mod tracking {
    use super::Rank;
    use std::cell::{Cell, RefCell};
    use std::panic::Location;

    #[derive(Clone, Copy)]
    struct Held {
        token: u64,
        rank: Rank,
        name: &'static str,
        location: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    /// A registered acquisition; deregisters itself on drop.
    pub(crate) struct Token(u64);

    impl Drop for Token {
        fn drop(&mut self) {
            let token = self.0;
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(idx) = held.iter().rposition(|h| h.token == token) {
                    held.remove(idx);
                }
            });
        }
    }

    fn render_stack(held: &[Held]) -> String {
        if held.is_empty() {
            return "  (no locks held)".to_string();
        }
        held.iter()
            .enumerate()
            .map(|(i, h)| {
                format!(
                    "  #{i} \"{}\" (rank {}) acquired at {}:{}:{}",
                    h.name,
                    h.rank.value(),
                    h.location.file(),
                    h.location.line(),
                    h.location.column()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Validates the acquisition order *before* blocking on the lock,
    /// so a genuine inversion panics instead of deadlocking the test.
    pub(crate) fn check_order(
        rank: Rank,
        name: &'static str,
        location: &'static Location<'static>,
    ) {
        HELD.with(|held| {
            let held = held.borrow();
            let Some(&top) = held.last() else { return };
            let ordered = rank.value() > top.rank.value()
                || (rank.value() == top.rank.value() && rank.allow_same && top.rank.allow_same);
            if !ordered {
                let stack = render_stack(&held);
                drop(held);
                panic!(
                    "lock-order violation: acquiring \"{name}\" (rank {rank_v}) at \
                     {file}:{line}:{col} while already holding \"{top_name}\" (rank \
                     {top_rank}) acquired at {top_file}:{top_line}:{top_col}\n\
                     held-lock acquisition stack (outermost first):\n{stack}\n\
                     offending acquisition stack:\n  #0 \"{name}\" (rank {rank_v}) at \
                     {file}:{line}:{col}\n\
                     ranks must be acquired in strictly increasing order; \
                     see DESIGN.md \u{a7}10 for the workspace lock-rank map",
                    rank_v = rank.value(),
                    file = location.file(),
                    line = location.line(),
                    col = location.column(),
                    top_name = top.name,
                    top_rank = top.rank.value(),
                    top_file = top.location.file(),
                    top_line = top.location.line(),
                    top_col = top.location.column(),
                );
            }
        });
    }

    /// Records a successful acquisition on this thread's stack.
    pub(crate) fn register(
        rank: Rank,
        name: &'static str,
        location: &'static Location<'static>,
    ) -> Token {
        let token = NEXT_TOKEN.with(|next| {
            let t = next.get();
            next.set(t + 1);
            t
        });
        HELD.with(|held| {
            held.borrow_mut().push(Held {
                token,
                rank,
                name,
                location,
            });
        });
        Token(token)
    }

    pub(crate) fn assert_no_locks_held(operation: &str) {
        HELD.with(|held| {
            let held = held.borrow();
            if !held.is_empty() {
                let stack = render_stack(&held);
                drop(held);
                panic!(
                    "blocking-region violation: entering \"{operation}\" while holding \
                     {n} registered lock(s)\n\
                     held-lock acquisition stack (outermost first):\n{stack}\n\
                     no ordered lock may be held across SyncQueue::push/pop or socket \
                     writes; see DESIGN.md \u{a7}10",
                    n = stack.lines().count(),
                );
            }
        });
    }

    pub(crate) fn held_lock_names() -> Vec<&'static str> {
        HELD.with(|held| held.borrow().iter().map(|h| h.name).collect())
    }
}

/// Panics if the current thread holds any registered lock while
/// entering the named blocking region (queue push/pop, socket write).
///
/// Compiled to a no-op when the detector is off.
#[inline]
pub fn assert_no_locks_held(operation: &str) {
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    tracking::assert_no_locks_held(operation);
    #[cfg(not(any(debug_assertions, feature = "lock-order")))]
    let _ = operation;
}

/// Names of the ordered locks the current thread holds, outermost
/// first. Always empty when the detector is off; intended for tests.
#[inline]
pub fn held_lock_names() -> Vec<&'static str> {
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    {
        tracking::held_lock_names()
    }
    #[cfg(not(any(debug_assertions, feature = "lock-order")))]
    {
        Vec::new()
    }
}

/// A [`parking_lot::Mutex`] that participates in the workspace lock
/// order.
///
/// # Examples
///
/// ```
/// use staged_sync::{OrderedMutex, Rank};
///
/// let m = OrderedMutex::new(Rank::new(100), "docs.example", vec![1, 2]);
/// m.lock().push(3);
/// assert_eq!(m.lock().len(), 3);
/// ```
pub struct OrderedMutex<T: ?Sized> {
    rank: Rank,
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex at `rank`; `const` so it can initialise a
    /// `static`. The name appears in detector panics and must be
    /// workspace-unique (convention: `crate.site`, e.g.
    /// `"http.body.buffer_pool"`).
    pub const fn new(rank: Rank, name: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquires the mutex, blocking until available.
    ///
    /// # Panics
    ///
    /// With the detector active, panics if this acquisition violates
    /// the rank order established by locks this thread already holds.
    #[inline]
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            let location = std::panic::Location::caller();
            // Rank check first: a genuine inversion panics with both
            // stacks instead of deadlocking (in model mode, instead of
            // a less-specific deadlock report).
            tracking::check_order(self.rank, self.name, location);
            #[cfg(model)]
            let model = self.model_acquire();
            let inner = self.inner.lock();
            OrderedMutexGuard {
                inner,
                #[cfg(model)]
                model,
                _token: tracking::register(self.rank, self.name, location),
            }
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            #[cfg(model)]
            let model = self.model_acquire();
            OrderedMutexGuard {
                inner: self.inner.lock(),
                #[cfg(model)]
                model,
            }
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    #[track_caller]
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        #[cfg(model)]
        let model = match model::mutex_try_lock(model_id(self), self.name) {
            // Unmanaged thread: fall through to the real try_lock.
            None => None,
            // The model says the lock is taken at this schedule point.
            Some(false) => return None,
            Some(true) => Some(ModelExclusiveRelease {
                id: model_id(self),
                name: self.name,
            }),
        };
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            let location = std::panic::Location::caller();
            tracking::check_order(self.rank, self.name, location);
            let inner = self.inner.try_lock()?;
            Some(OrderedMutexGuard {
                inner,
                #[cfg(model)]
                model,
                _token: tracking::register(self.rank, self.name, location),
            })
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        Some(OrderedMutexGuard {
            inner: self.inner.try_lock()?,
            #[cfg(model)]
            model,
        })
    }

    /// Takes model ownership before touching the real lock; returns the
    /// release token when this thread is scheduler-managed.
    #[cfg(model)]
    fn model_acquire(&self) -> Option<ModelExclusiveRelease> {
        if model::mutex_lock(model_id(self), self.name) {
            Some(ModelExclusiveRelease {
                id: model_id(self),
                name: self.name,
            })
        } else {
            None
        }
    }

    /// Returns a mutable reference to the underlying data (no locking:
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// The lock's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: Default> Default for OrderedMutex<T> {
    fn default() -> Self {
        OrderedMutex::new(Rank::new(u16::MAX), "sync.unranked", T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank.value())
            .field("data", &self.inner)
            .finish()
    }
}

/// RAII guard for [`OrderedMutex`]; deregisters the acquisition when
/// dropped.
///
/// Field order matters in model mode: `inner` (the real unlock) drops
/// before `model` (the scheduler release, itself a schedule point).
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(model)]
    model: Option<ModelExclusiveRelease>,
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    _token: tracking::Token,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A [`parking_lot::RwLock`] that participates in the workspace lock
/// order. Read and write acquisitions are rank-checked identically —
/// reader/reader nesting of one rank is only legal for
/// [`Rank::allow_same_rank`] families.
///
/// # Examples
///
/// ```
/// use staged_sync::{OrderedRwLock, Rank};
///
/// let l = OrderedRwLock::new(Rank::new(100), "docs.rw", 5);
/// assert_eq!(*l.read(), 5);
/// *l.write() = 7;
/// assert_eq!(*l.read(), 7);
/// ```
pub struct OrderedRwLock<T: ?Sized> {
    rank: Rank,
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates an rwlock at `rank`; `const` so it can initialise a
    /// `static`.
    pub const fn new(rank: Rank, name: &'static str, value: T) -> Self {
        OrderedRwLock {
            rank,
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquires shared read access, blocking until available.
    ///
    /// # Panics
    ///
    /// With the detector active, panics on rank-order violations.
    #[inline]
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            let location = std::panic::Location::caller();
            tracking::check_order(self.rank, self.name, location);
            #[cfg(model)]
            let model = self.model_read_acquire();
            let inner = self.inner.read();
            OrderedReadGuard {
                inner,
                #[cfg(model)]
                _model: model,
                _token: tracking::register(self.rank, self.name, location),
            }
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            #[cfg(model)]
            let model = self.model_read_acquire();
            OrderedReadGuard {
                inner: self.inner.read(),
                #[cfg(model)]
                _model: model,
            }
        }
    }

    /// Acquires exclusive write access, blocking until available.
    ///
    /// # Panics
    ///
    /// With the detector active, panics on rank-order violations.
    #[inline]
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            let location = std::panic::Location::caller();
            tracking::check_order(self.rank, self.name, location);
            #[cfg(model)]
            let model = self.model_write_acquire();
            let inner = self.inner.write();
            OrderedWriteGuard {
                inner,
                #[cfg(model)]
                _model: model,
                _token: tracking::register(self.rank, self.name, location),
            }
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            #[cfg(model)]
            let model = self.model_write_acquire();
            OrderedWriteGuard {
                inner: self.inner.write(),
                #[cfg(model)]
                _model: model,
            }
        }
    }

    /// Takes model read ownership before touching the real lock.
    #[cfg(model)]
    fn model_read_acquire(&self) -> Option<ModelReadRelease> {
        if model::rw_read(model_id(self), self.name) {
            Some(ModelReadRelease { id: model_id(self) })
        } else {
            None
        }
    }

    /// Takes model write ownership before touching the real lock.
    #[cfg(model)]
    fn model_write_acquire(&self) -> Option<ModelExclusiveRelease> {
        if model::rw_write(model_id(self), self.name) {
            Some(ModelExclusiveRelease {
                id: model_id(self),
                name: self.name,
            })
        } else {
            None
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// The lock's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: Default> Default for OrderedRwLock<T> {
    fn default() -> Self {
        OrderedRwLock::new(Rank::new(u16::MAX), "sync.unranked", T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("name", &self.name)
            .field("rank", &self.rank.value())
            .field("data", &self.inner)
            .finish()
    }
}

/// Shared-access RAII guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    // Field order matters under `cfg(model)`: the real guard must drop
    // (unlock) before the model release hands ownership to another
    // model thread.
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(model)]
    _model: Option<ModelReadRelease>,
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    _token: tracking::Token,
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    // Field order matters under `cfg(model)`: real unlock first, then
    // model release (see `OrderedReadGuard`).
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(model)]
    _model: Option<ModelExclusiveRelease>,
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    _token: tracking::Token,
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable for [`OrderedMutex`] (the wait itself is not a
/// tracked blocking region: the mutex it atomically releases is the
/// primitive's own).
#[derive(Debug, Default)]
pub struct Condvar(parking_lot::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(parking_lot::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// mutex behind `guard`.
    pub fn wait<T>(&self, guard: &mut OrderedMutexGuard<'_, T>) {
        #[cfg(model)]
        if let Some(m) = &guard.model {
            let (id, name, cv_id) = (m.id, m.name, model_id(self));
            guard.inner.unlocked(|| {
                model::condvar_wait(cv_id, id, name, false);
            });
            return;
        }
        self.0.wait(&mut guard.inner);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(model)]
        if let Some(m) = &guard.model {
            let (id, name, cv_id) = (m.id, m.name, model_id(self));
            let timed_out = guard
                .inner
                .unlocked(|| model::condvar_wait(cv_id, id, name, true));
            return WaitTimeoutResult::from_timed_out(timed_out);
        }
        self.0.wait_for(&mut guard.inner, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        #[cfg(model)]
        if model::is_registered() {
            return model::condvar_notify_one(model_id(self));
        }
        self.0.notify_one()
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        #[cfg(model)]
        if model::is_registered() {
            return model::condvar_notify_all(model_id(self));
        }
        self.0.notify_all()
    }
}

/// Locks a `std::sync::Mutex`, entering a poisoned lock instead of
/// panicking — the repo-standard way to take a std lock whose holder
/// may have panicked (worker panics are injected deliberately by the
/// fault plans).
pub fn lock_recover<T: ?Sized>(mutex: &std::sync::Mutex<T>) -> StdMutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks a `std::sync::RwLock`, entering a poisoned lock instead
/// of panicking.
pub fn read_recover<T: ?Sized>(lock: &std::sync::RwLock<T>) -> StdReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a `std::sync::RwLock`, entering a poisoned lock instead
/// of panicking.
pub fn write_recover<T: ?Sized>(lock: &std::sync::RwLock<T>) -> StdWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = OrderedMutex::new(Rank::new(10), "test.m", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = OrderedRwLock::new(Rank::new(10), "test.rw", 5);
        {
            let a = l.read();
            assert_eq!(*a, 5);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = OrderedMutex::new(Rank::new(10), "test.try", ());
        let g = m.lock();
        std::thread::scope(|s| {
            s.spawn(|| assert!(m.try_lock().is_none()));
        });
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn increasing_ranks_nest_fine() {
        let a = OrderedMutex::new(Rank::new(10), "test.outer", ());
        let b = OrderedMutex::new(Rank::new(20), "test.inner", ());
        let _ga = a.lock();
        let _gb = b.lock();
        if detector_active() {
            assert_eq!(held_lock_names(), vec!["test.outer", "test.inner"]);
        }
    }

    #[test]
    fn guard_drop_deregisters() {
        let a = OrderedMutex::new(Rank::new(10), "test.dereg", ());
        drop(a.lock());
        assert!(held_lock_names().is_empty());
        // Rank 10 is acquirable again after release even though an
        // equal-or-higher rank was held moments ago.
        drop(a.lock());
    }

    #[test]
    fn recover_helpers_enter_poisoned_locks() {
        let m = std::sync::Mutex::new(0);
        let l = std::sync::RwLock::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = m.lock().unwrap();
                panic!("poison the mutex");
            })
            .join()
            .unwrap_err();
            s.spawn(|| {
                let _g = l.write().unwrap();
                panic!("poison the rwlock");
            })
            .join()
            .unwrap_err();
        });
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 1);
        *write_recover(&l) += 2;
        assert_eq!(*read_recover(&l), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = OrderedMutex::new(Rank::new(10), "test.cv", ());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }
}
