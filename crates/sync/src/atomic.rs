//! Shim atomics: the workspace-wide import point for atomic types.
//!
//! In normal builds this module *re-exports* `std::sync::atomic` — the
//! types are the std types, so the cost is zero by construction. Under
//! `RUSTFLAGS="--cfg model"` the integer/bool atomics are replaced by
//! newtype wrappers that report every access to the model scheduler
//! ([`crate::model`]) as a schedule point, letting the checker explore
//! interleavings around lock-free code too.
//!
//! The xtask lint bans `use std::sync::atomic` outside `crates/sync`
//! (rule `raw_atomic`); library code imports from here instead:
//!
//! ```
//! use staged_sync::atomic::{AtomicUsize, Ordering};
//!
//! let n = AtomicUsize::new(0);
//! n.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed)
//! assert_eq!(n.load(Ordering::Acquire), 1);
//! ```
//!
//! Model-mode caveat: the wrappers serialize every access (the
//! scheduler runs one thread at a time), so they behave as
//! sequentially consistent regardless of the `Ordering` argument.
//! Weak-memory reorderings are *not* modeled — that is ThreadSanitizer's
//! job (CI `tsan`); the model checker explores interleavings, not
//! memory models.

#[cfg(not(model))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};

#[cfg(model)]
pub use self::modeled::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize};
#[cfg(model)]
pub use std::sync::atomic::Ordering;

#[cfg(model)]
mod modeled {
    use crate::model;
    use std::sync::atomic::Ordering;

    macro_rules! model_int_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Model-mode wrapper: every access is a schedule point.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic (const, like std).
                pub const fn new(v: $prim) -> Self {
                    $name(<$std>::new(v))
                }

                /// Loads the value (schedule point).
                pub fn load(&self, order: Ordering) -> $prim {
                    model::atomic_op(concat!(stringify!($name), ".load"));
                    self.0.load(order)
                }

                /// Stores a value (schedule point).
                pub fn store(&self, v: $prim, order: Ordering) {
                    model::atomic_op(concat!(stringify!($name), ".store"));
                    self.0.store(v, order)
                }

                /// Swaps the value (schedule point).
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    model::atomic_op(concat!(stringify!($name), ".swap"));
                    self.0.swap(v, order)
                }

                /// Adds, returning the previous value (schedule point).
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    model::atomic_op(concat!(stringify!($name), ".fetch_add"));
                    self.0.fetch_add(v, order)
                }

                /// Subtracts, returning the previous value (schedule
                /// point).
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    model::atomic_op(concat!(stringify!($name), ".fetch_sub"));
                    self.0.fetch_sub(v, order)
                }

                /// Maximum, returning the previous value (schedule
                /// point).
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    model::atomic_op(concat!(stringify!($name), ".fetch_max"));
                    self.0.fetch_max(v, order)
                }

                /// Compare-and-exchange (schedule point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    model::atomic_op(concat!(stringify!($name), ".compare_exchange"));
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Mutable access (no schedule point: `&mut` proves
                /// exclusivity).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.0.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }

            impl From<$prim> for $name {
                fn from(v: $prim) -> Self {
                    $name::new(v)
                }
            }
        };
    }

    model_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);
    model_int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);

    /// Model-mode wrapper: every access is a schedule point.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Creates a new atomic bool (const, like std).
        pub const fn new(v: bool) -> Self {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }

        /// Loads the value (schedule point).
        pub fn load(&self, order: Ordering) -> bool {
            model::atomic_op("AtomicBool.load");
            self.0.load(order)
        }

        /// Stores a value (schedule point).
        pub fn store(&self, v: bool, order: Ordering) {
            model::atomic_op("AtomicBool.store");
            self.0.store(v, order)
        }

        /// Swaps the value (schedule point).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            model::atomic_op("AtomicBool.swap");
            self.0.swap(v, order)
        }

        /// Compare-and-exchange (schedule point).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            model::atomic_op("AtomicBool.compare_exchange");
            self.0.compare_exchange(current, new, success, failure)
        }

        /// Mutable access (no schedule point).
        pub fn get_mut(&mut self) -> &mut bool {
            self.0.get_mut()
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }

    impl From<bool> for AtomicBool {
        fn from(v: bool) -> Self {
            AtomicBool::new(v)
        }
    }
}
