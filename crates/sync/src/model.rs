//! Deterministic concurrency model checking — the `--cfg model` mode.
//!
//! Under `RUSTFLAGS="--cfg model"` every [`crate::OrderedMutex`],
//! [`crate::OrderedRwLock`], [`crate::Condvar`], and [`crate::atomic`]
//! shim reports to the cooperative scheduler in this module. Threads
//! created with [`spawn`] are real OS threads, but exactly one runs at
//! a time: each visible operation (lock, unlock, condvar wait/notify,
//! atomic access, spawn, join, [`choose`], [`yield_now`]) is a
//! *schedule point* where the scheduler may park the running thread and
//! wake another, shuttle-style. Because the entire interleaving is a
//! sequence of recorded decisions, any failure — an assertion panic, a
//! lock-order violation from the rank detector, or a global deadlock
//! (no thread runnable and none able to time out) — is replayable: the
//! failure report prints a `MODEL_REPLAY=` spec that re-runs the exact
//! schedule, pinned by an FNV hash of the event log.
//!
//! Three exploration policies are provided via [`Config`]:
//!
//! * **random** — a seeded random walk over schedule decisions; the
//!   workhorse for protocol suites.
//! * **pct** — probabilistic concurrency testing: random thread
//!   priorities with `depth − 1` priority-change points, which finds
//!   low-probability ordering bugs far faster than naive random.
//! * **dfs** — bounded exhaustive enumeration of decision paths for
//!   small state spaces.
//!
//! Threads blocked in a timed wait (`Condvar::wait_for`, and everything
//! built on it: `pop_timeout`, `get_timeout`) stay *selectable*: the
//! scheduler may fire their timeout at any schedule point, so both the
//! success and the timeout arm of every timed protocol are explored
//! without real sleeps.
//!
//! Mutant fixtures: protocol code marks deliberately-broken variants
//! with the [`crate::mutant!`] macro. A mutant is enabled by name via
//! the `MODEL_MUTANTS` env var (comma-separated) or
//! [`Config::with_mutants`]; outside `--cfg model` builds the macro
//! compiles to the correct branch only.

use crate::lock_recover;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Maximum events kept verbatim for the failure trace (the hash covers
/// the full sequence regardless).
const TRACE_KEEP: usize = 200;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

// ---------------------------------------------------------------------
// Public configuration
// ---------------------------------------------------------------------

/// Exploration policy for [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Seeded random walk, one seed per iteration.
    Random,
    /// Probabilistic concurrency testing with `depth − 1` priority
    /// change points per iteration.
    Pct {
        /// Bug depth (number of ordering constraints targeted).
        depth: usize,
    },
    /// Bounded exhaustive DFS over decision paths.
    Dfs,
}

impl Policy {
    fn name(&self) -> &'static str {
        match self {
            Policy::Random => "random",
            Policy::Pct { .. } => "pct",
            Policy::Dfs => "dfs",
        }
    }
}

/// One model-checking run: a label (used in replay specs), a policy,
/// an iteration budget, a seed, and optional forced mutants.
#[derive(Debug, Clone)]
pub struct Config {
    /// Label echoed in failure reports; convention: the test fn name.
    pub label: &'static str,
    /// Exploration policy.
    pub policy: Policy,
    /// Iterations (random/pct) or maximum schedules (dfs).
    pub iterations: usize,
    /// Base seed; per-iteration seeds are derived from it. Overridden
    /// by the `MODEL_SEED` env var when set.
    pub seed: u64,
    /// Schedule points allowed per iteration before the run is failed
    /// as a livelock.
    pub max_steps: usize,
    /// Mutants enabled for this run, in addition to `MODEL_MUTANTS`.
    pub mutants: Vec<String>,
}

impl Config {
    /// Random-walk exploration with `iterations` seeds.
    pub fn random(label: &'static str, iterations: usize) -> Self {
        Config {
            label,
            policy: Policy::Random,
            iterations,
            seed: default_seed(label),
            max_steps: 50_000,
            mutants: Vec::new(),
        }
    }

    /// PCT exploration at the given bug depth.
    pub fn pct(label: &'static str, iterations: usize, depth: usize) -> Self {
        Config {
            policy: Policy::Pct { depth },
            ..Config::random(label, iterations)
        }
    }

    /// Bounded exhaustive DFS over at most `max_schedules` paths.
    pub fn dfs(label: &'static str, max_schedules: usize) -> Self {
        Config {
            policy: Policy::Dfs,
            ..Config::random(label, max_schedules)
        }
    }

    /// Overrides the base seed (normally derived from the label or the
    /// `MODEL_SEED` env var).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the named mutants for every iteration of this run.
    pub fn with_mutants(mut self, mutants: &[&str]) -> Self {
        self.mutants = mutants.iter().map(|m| m.to_string()).collect();
        self
    }

    /// Overrides the per-iteration schedule-point budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }
}

fn default_seed(label: &'static str) -> u64 {
    if let Ok(s) = std::env::var("MODEL_SEED") {
        if let Some(v) = parse_u64(&s) {
            return v;
        }
    }
    fnv(FNV_OFFSET, label.as_bytes())
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// Why an iteration failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure, lock-order
    /// violation, …).
    Panic(String),
    /// Every live thread was blocked and none could time out.
    Deadlock(String),
    /// The iteration exceeded [`Config::max_steps`] schedule points.
    StepLimit,
}

/// A reproducible counterexample: the iteration's seed / decision path,
/// the event-log hash that pins the interleaving, and a rendered trace.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Label of the run that failed.
    pub label: String,
    /// Policy the failing iteration ran under.
    pub policy: String,
    /// Per-iteration seed of the failing schedule.
    pub seed: u64,
    /// Decision path of the failing schedule (chosen indices, in
    /// order) — sufficient to replay under any policy.
    pub path: Vec<usize>,
    /// Which iteration failed (0-based).
    pub iteration: usize,
    /// What went wrong.
    pub kind: FailureKind,
    /// FNV-1a hash over the full event log.
    pub event_hash: u64,
    /// Rendered tail of the event log.
    pub trace: String,
    /// Schedule points taken before the failure.
    pub steps: usize,
}

impl Failure {
    /// The `MODEL_REPLAY` spec that re-runs exactly this interleaving.
    pub fn replay_spec(&self) -> String {
        let path = self
            .path
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(".");
        format!(
            "test={};policy={};seed={:#018x};path={};hash={:#018x}",
            self.label, self.policy, self.seed, path, self.event_hash
        )
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            FailureKind::Panic(msg) => format!("panic: {msg}"),
            FailureKind::Deadlock(detail) => format!("global deadlock\n{detail}"),
            FailureKind::StepLimit => "schedule-point budget exceeded (livelock?)".to_string(),
        };
        writeln!(
            f,
            "model checker failure in '{}' (iteration {}, policy {}, seed {:#018x}, {} steps)",
            self.label, self.iteration, self.policy, self.seed, self.steps
        )?;
        writeln!(f, "{kind}")?;
        writeln!(f, "schedule trace (last {TRACE_KEEP} events):")?;
        writeln!(f, "{}", self.trace)?;
        writeln!(f, "event-log hash: {:#018x}", self.event_hash)?;
        write!(f, "replay: MODEL_REPLAY='{}'", self.replay_spec())
    }
}

/// Summary of a completed (failure-free) exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// Event-log hash of the last schedule (used by replay tests).
    pub last_event_hash: u64,
}

/// A parsed `MODEL_REPLAY` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySpec {
    /// Label the spec applies to.
    pub label: String,
    /// Policy name recorded at capture time (informational).
    pub policy: String,
    /// Seed of the schedule to re-run.
    pub seed: Option<u64>,
    /// Forced decision path (authoritative when non-empty).
    pub path: Vec<usize>,
    /// Expected event-log hash; replay asserts equality when present.
    pub hash: Option<u64>,
}

impl ReplaySpec {
    /// Parses a `key=value;key=value` replay spec as printed by
    /// [`Failure::replay_spec`]. Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<ReplaySpec> {
        let mut spec = ReplaySpec {
            label: String::new(),
            policy: String::new(),
            seed: None,
            path: Vec::new(),
            hash: None,
        };
        for field in s.split(';') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (k, v) = field.split_once('=')?;
            match k {
                "test" => spec.label = v.to_string(),
                "policy" => spec.policy = v.to_string(),
                "seed" => spec.seed = Some(parse_u64(v)?),
                "hash" => spec.hash = Some(parse_u64(v)?),
                "path" => {
                    if !v.is_empty() {
                        spec.path = v
                            .split('.')
                            .map(|d| d.parse().ok())
                            .collect::<Option<Vec<usize>>>()?;
                    }
                }
                _ => return None,
            }
        }
        if spec.label.is_empty() {
            return None;
        }
        Some(spec)
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedMutex {
        lock: usize,
    },
    BlockedRead {
        lock: usize,
    },
    BlockedWrite {
        lock: usize,
    },
    BlockedCv {
        cv: usize,
        can_timeout: bool,
        under: &'static str,
    },
    BlockedJoin {
        target: usize,
    },
    Finished,
}

struct ThreadInfo {
    name: &'static str,
    state: TState,
    /// Set when the scheduler fired this thread's pending timed wait.
    wake_timed_out: bool,
    /// PCT priority (higher runs first).
    priority: i64,
}

struct LockSt {
    name: &'static str,
    writer: Option<usize>,
    readers: usize,
}

struct Event {
    step: usize,
    tid: usize,
    text: String,
}

struct PctState {
    change_points: Vec<usize>,
    next_low: i64,
}

struct Exec {
    threads: Vec<ThreadInfo>,
    current: usize,
    locks: HashMap<usize, LockSt>,
    steps: usize,
    max_steps: usize,
    rng: u64,
    policy: Policy,
    pct: Option<PctState>,
    forced: Vec<usize>,
    decisions: Vec<(usize, usize)>,
    events: Vec<Event>,
    hash: u64,
    failure: Option<FailureKind>,
    done: bool,
    mutants: Vec<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Exec {
    fn new(cfg: &Config, seed: u64, forced: Vec<usize>) -> Exec {
        let mut rng = splitmix(seed);
        let pct = match cfg.policy {
            Policy::Pct { depth } => {
                let mut points = Vec::with_capacity(depth.saturating_sub(1));
                for _ in 1..depth.max(1) {
                    rng = splitmix(rng);
                    points.push((rng % 2_000) as usize + 1);
                }
                points.sort_unstable();
                Some(PctState {
                    change_points: points,
                    next_low: -1,
                })
            }
            _ => None,
        };
        let mut mutants = cfg.mutants.clone();
        if let Ok(env) = std::env::var("MODEL_MUTANTS") {
            for m in env.split(',') {
                let m = m.trim();
                if !m.is_empty() {
                    mutants.push(m.to_string());
                }
            }
        }
        Exec {
            threads: Vec::new(),
            current: 0,
            locks: HashMap::new(),
            steps: 0,
            max_steps: cfg.max_steps,
            rng,
            policy: cfg.policy.clone(),
            pct,
            forced,
            decisions: Vec::new(),
            events: Vec::new(),
            hash: FNV_OFFSET,
            failure: None,
            done: false,
            mutants,
            os_handles: Vec::new(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = splitmix(self.rng);
        self.rng
    }

    fn log(&mut self, tid: usize, text: String) {
        self.hash = fnv(self.hash, &[tid as u8]);
        self.hash = fnv(self.hash, text.as_bytes());
        self.hash = fnv(self.hash, &[0xff]);
        if self.events.len() >= TRACE_KEEP {
            self.events.remove(0);
        }
        self.events.push(Event {
            step: self.steps,
            tid,
            text,
        });
    }

    /// Counts a schedule point; returns `true` when the step budget is
    /// exhausted (the caller records the failure).
    fn bump_step(&mut self) -> bool {
        self.steps += 1;
        if let Some(pct) = &mut self.pct {
            if pct.change_points.binary_search(&self.steps).is_ok() {
                let cur = self.current;
                self.threads[cur].priority = pct.next_low;
                pct.next_low -= 1;
            }
        }
        self.steps > self.max_steps
    }

    fn selectable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t.state,
                    TState::Runnable
                        | TState::BlockedCv {
                            can_timeout: true,
                            ..
                        }
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// One recorded decision over `n` options.
    fn decide(&mut self, n: usize, preferred: Option<usize>) -> usize {
        debug_assert!(n > 0);
        let idx = if let Some(&f) = self.forced.get(self.decisions.len()) {
            f.min(n - 1)
        } else {
            match (&self.policy, preferred) {
                (Policy::Dfs, _) => 0,
                (Policy::Pct { .. }, Some(p)) => p,
                _ => (self.next_u64() % n as u64) as usize,
            }
        };
        self.decisions.push((idx, n));
        idx
    }

    /// Picks the next thread to run among the selectable set, or `None`
    /// if everything is blocked (deadlock).
    fn pick_next(&mut self) -> Option<usize> {
        let sel = self.selectable();
        if sel.is_empty() {
            return None;
        }
        let preferred = if matches!(self.policy, Policy::Pct { .. }) {
            sel.iter()
                .enumerate()
                .max_by_key(|(_, &tid)| self.threads[tid].priority)
                .map(|(i, _)| i)
        } else {
            None
        };
        let idx = self.decide(sel.len(), preferred);
        Some(sel[idx])
    }

    /// Installs `next` as the running thread, firing its timed wait if
    /// that is what makes it selectable.
    fn set_current(&mut self, next: usize) {
        if let TState::BlockedCv {
            can_timeout: true, ..
        } = self.threads[next].state
        {
            self.threads[next].state = TState::Runnable;
            self.threads[next].wake_timed_out = true;
            let name = self.threads[next].name;
            self.log(next, format!("timeout-fire {name}"));
        }
        self.current = next;
    }

    fn ensure_lock(&mut self, id: usize, name: &'static str) {
        let entry = self.locks.entry(id).or_insert(LockSt {
            name,
            writer: None,
            readers: 0,
        });
        // An address can be reused by a new lock after its predecessor
        // dropped; refresh the name so reports stay accurate.
        entry.name = name;
    }

    /// Wakes every thread blocked on `lock` so it can re-contend.
    fn wake_lock_waiters(&mut self, lock: usize) {
        for t in &mut self.threads {
            match t.state {
                TState::BlockedMutex { lock: l }
                | TState::BlockedRead { lock: l }
                | TState::BlockedWrite { lock: l }
                    if l == lock =>
                {
                    t.state = TState::Runnable;
                }
                _ => {}
            }
        }
    }

    fn describe_threads(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let state = match &t.state {
                    TState::Runnable => "runnable".to_string(),
                    TState::Finished => "finished".to_string(),
                    TState::BlockedMutex { lock } => {
                        format!("blocked on mutex \"{}\"", self.lock_name(*lock))
                    }
                    TState::BlockedRead { lock } => {
                        format!("blocked on rwlock(read) \"{}\"", self.lock_name(*lock))
                    }
                    TState::BlockedWrite { lock } => {
                        format!("blocked on rwlock(write) \"{}\"", self.lock_name(*lock))
                    }
                    TState::BlockedCv {
                        under, can_timeout, ..
                    } => format!(
                        "waiting on condvar under \"{under}\"{}",
                        if *can_timeout { " (timed)" } else { "" }
                    ),
                    TState::BlockedJoin { target } => {
                        format!("joining t{target}:{}", self.threads[*target].name)
                    }
                };
                format!("  t{i}:{} — {state}", t.name)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn lock_name(&self, id: usize) -> &'static str {
        self.locks.get(&id).map_or("<unknown>", |l| l.name)
    }

    fn render_trace(&self) -> String {
        if self.events.is_empty() {
            return "  (no events)".to_string();
        }
        self.events
            .iter()
            .map(|e| {
                format!(
                    "  [{:>5}] t{}:{} {}",
                    e.step,
                    e.tid,
                    self.threads.get(e.tid).map_or("?", |t| t.name),
                    e.text
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

struct Shared {
    exec: StdMutex<Exec>,
    cv: StdCondvar,
}

/// Sentinel panic payload used to unwind threads when the iteration is
/// being torn down after a failure.
struct Abort;

struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Shared>, usize)> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.shared), ctx.tid))
    })
}

/// Whether the calling thread is managed by a model execution. Shim
/// primitives bypass the scheduler when this is `false`.
pub fn is_registered() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

type ExecGuard<'a> = std::sync::MutexGuard<'a, Exec>;

impl Shared {
    /// Parks until `tid` is the running thread. Panics with [`Abort`]
    /// if the iteration failed while parked.
    fn wait_my_turn<'a>(&'a self, mut ex: ExecGuard<'a>, tid: usize) {
        loop {
            if ex.failure.is_some() {
                drop(ex);
                std::panic::panic_any(Abort);
            }
            if ex.current == tid {
                return;
            }
            ex = self
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records the failure, releases every parked thread, and unwinds
    /// the calling thread.
    fn fail(&self, mut ex: ExecGuard<'_>, kind: FailureKind) -> ! {
        if ex.failure.is_none() {
            ex.failure = Some(kind);
        }
        ex.done = true;
        drop(ex);
        self.cv.notify_all();
        std::panic::panic_any(Abort);
    }

    /// Entry guard for every schedule hook: unwinding threads bypass
    /// the scheduler entirely (a second panic in a `Drop` would abort
    /// the process), and threads woken into a failed iteration unwind.
    fn hook_entry(&self) -> Option<ExecGuard<'_>> {
        if std::thread::panicking() {
            return None;
        }
        let ex = lock_recover(&self.exec);
        if ex.failure.is_some() {
            drop(ex);
            std::panic::panic_any(Abort);
        }
        Some(ex)
    }

    /// Logs `text`, applies `mutate`, then lets the scheduler pick the
    /// next thread. The calling thread must be the running thread.
    fn op_point(&self, tid: usize, text: String, mutate: impl FnOnce(&mut Exec)) {
        let Some(mut ex) = self.hook_entry() else {
            return;
        };
        ex.log(tid, text);
        if ex.bump_step() {
            self.fail(ex, FailureKind::StepLimit);
        }
        mutate(&mut ex);
        let next = ex.pick_next().expect("running thread is selectable");
        ex.set_current(next);
        if next != tid {
            self.cv.notify_all();
            self.wait_my_turn(ex, tid);
        }
    }

    /// Blocks the running thread with `state`, scheduling someone else.
    /// Returns once the thread is runnable and current again. The exec
    /// guard is reacquired by the caller.
    fn block(&self, mut ex: ExecGuard<'_>, tid: usize, state: TState) {
        ex.threads[tid].state = state;
        match ex.pick_next() {
            Some(next) => {
                ex.set_current(next);
                self.cv.notify_all();
                self.wait_my_turn(ex, tid);
            }
            None => {
                let detail = ex.describe_threads();
                self.fail(ex, FailureKind::Deadlock(detail));
            }
        }
    }

    /// Blocking loop acquiring model ownership of a lock; `admit`
    /// checks availability and takes ownership, returning `true` on
    /// success.
    fn acquire_loop(
        &self,
        tid: usize,
        id: usize,
        mk_state: impl Fn() -> TState,
        admit: impl Fn(&mut LockSt, usize) -> bool,
    ) {
        loop {
            let Some(mut ex) = self.hook_entry() else {
                return;
            };
            let lock = ex.locks.get_mut(&id).expect("lock registered");
            if admit(lock, tid) {
                return;
            }
            self.block(ex, tid, mk_state());
            // Re-contend: ownership may have been taken by another
            // woken waiter before we were scheduled.
        }
    }
}

// ---------------------------------------------------------------------
// Hooks used by the shim primitives (crate-internal)
// ---------------------------------------------------------------------

pub(crate) fn mutex_lock(id: usize, name: &'static str) -> bool {
    let Some((shared, tid)) = ctx() else {
        return false;
    };
    shared.op_point(tid, format!("lock {name}"), |ex| ex.ensure_lock(id, name));
    shared.acquire_loop(
        tid,
        id,
        || TState::BlockedMutex { lock: id },
        |l, me| {
            if l.writer.is_none() && l.readers == 0 {
                l.writer = Some(me);
                true
            } else {
                false
            }
        },
    );
    true
}

pub(crate) fn mutex_try_lock(id: usize, name: &'static str) -> Option<bool> {
    let (shared, tid) = ctx()?;
    let mut acquired = false;
    shared.op_point(tid, format!("try-lock {name}"), |ex| {
        ex.ensure_lock(id, name);
        let lock = ex.locks.get_mut(&id).expect("lock registered");
        if lock.writer.is_none() && lock.readers == 0 {
            lock.writer = Some(tid);
            acquired = true;
        }
    });
    Some(acquired)
}

pub(crate) fn mutex_release(id: usize) {
    let Some((shared, tid)) = ctx() else {
        return;
    };
    if std::thread::panicking() {
        // Minimal cleanup only: free the lock so surviving threads can
        // proceed; never schedule (or panic) during unwind.
        let mut ex = lock_recover(&shared.exec);
        if let Some(l) = ex.locks.get_mut(&id) {
            l.writer = None;
        }
        ex.wake_lock_waiters(id);
        drop(ex);
        shared.cv.notify_all();
        return;
    }
    let name = {
        let ex = lock_recover(&shared.exec);
        ex.lock_name(id)
    };
    shared.op_point(tid, format!("unlock {name}"), |ex| {
        if let Some(l) = ex.locks.get_mut(&id) {
            l.writer = None;
        }
        ex.wake_lock_waiters(id);
    });
}

pub(crate) fn rw_read(id: usize, name: &'static str) -> bool {
    let Some((shared, tid)) = ctx() else {
        return false;
    };
    shared.op_point(tid, format!("read-lock {name}"), |ex| {
        ex.ensure_lock(id, name)
    });
    shared.acquire_loop(
        tid,
        id,
        || TState::BlockedRead { lock: id },
        |l, _| {
            if l.writer.is_none() {
                l.readers += 1;
                true
            } else {
                false
            }
        },
    );
    true
}

pub(crate) fn rw_write(id: usize, name: &'static str) -> bool {
    let Some((shared, tid)) = ctx() else {
        return false;
    };
    shared.op_point(tid, format!("write-lock {name}"), |ex| {
        ex.ensure_lock(id, name)
    });
    shared.acquire_loop(
        tid,
        id,
        || TState::BlockedWrite { lock: id },
        |l, me| {
            if l.writer.is_none() && l.readers == 0 {
                l.writer = Some(me);
                true
            } else {
                false
            }
        },
    );
    true
}

pub(crate) fn rw_release_read(id: usize) {
    let Some((shared, tid)) = ctx() else {
        return;
    };
    if std::thread::panicking() {
        let mut ex = lock_recover(&shared.exec);
        if let Some(l) = ex.locks.get_mut(&id) {
            l.readers = l.readers.saturating_sub(1);
        }
        ex.wake_lock_waiters(id);
        drop(ex);
        shared.cv.notify_all();
        return;
    }
    let name = {
        let ex = lock_recover(&shared.exec);
        ex.lock_name(id)
    };
    shared.op_point(tid, format!("read-unlock {name}"), |ex| {
        if let Some(l) = ex.locks.get_mut(&id) {
            l.readers = l.readers.saturating_sub(1);
        }
        ex.wake_lock_waiters(id);
    });
}

/// Model condvar wait: releases model ownership of the mutex, parks
/// until notified or (when `can_timeout`) until the scheduler fires the
/// timeout, then re-acquires model ownership. Returns `true` when the
/// wait timed out. The caller must hold the *real* inner mutex released
/// around this call (see `OrderedMutexGuard`).
pub(crate) fn condvar_wait(
    cv: usize,
    mutex: usize,
    mutex_name: &'static str,
    can_timeout: bool,
) -> bool {
    let Some((shared, tid)) = ctx() else {
        return false;
    };
    let Some(mut ex) = shared.hook_entry() else {
        return true;
    };
    let kind = if can_timeout { "timed-wait" } else { "wait" };
    ex.log(tid, format!("cv-{kind} under {mutex_name}"));
    if ex.bump_step() {
        shared.fail(ex, FailureKind::StepLimit);
    }
    // Atomically release the mutex and park on the condvar.
    if let Some(l) = ex.locks.get_mut(&mutex) {
        l.writer = None;
    }
    ex.wake_lock_waiters(mutex);
    ex.threads[tid].wake_timed_out = false;
    shared.block(
        ex,
        tid,
        TState::BlockedCv {
            cv,
            can_timeout,
            under: mutex_name,
        },
    );
    // Woken (notified or timed out): re-acquire the mutex.
    let timed_out = {
        let ex = lock_recover(&shared.exec);
        let t = ex.threads[tid].wake_timed_out;
        drop(ex);
        t
    };
    shared.acquire_loop(
        tid,
        mutex,
        || TState::BlockedMutex { lock: mutex },
        |l, me| {
            if l.writer.is_none() && l.readers == 0 {
                l.writer = Some(me);
                true
            } else {
                false
            }
        },
    );
    timed_out
}

pub(crate) fn condvar_notify_one(cv: usize) -> bool {
    let Some((shared, tid)) = ctx() else {
        return false;
    };
    if std::thread::panicking() {
        return true;
    }
    let mut woke = false;
    shared.op_point(tid, "notify-one".to_string(), |ex| {
        let waiters: Vec<usize> = ex
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TState::BlockedCv { cv: c, .. } if c == cv))
            .map(|(i, _)| i)
            .collect();
        if !waiters.is_empty() {
            let k = ex.decide(waiters.len(), None);
            let target = waiters[k];
            ex.threads[target].state = TState::Runnable;
            ex.threads[target].wake_timed_out = false;
            let name = ex.threads[target].name;
            ex.log(tid, format!("-> wakes t{target}:{name}"));
            woke = true;
        }
    });
    woke
}

pub(crate) fn condvar_notify_all(cv: usize) -> usize {
    let Some((shared, tid)) = ctx() else {
        return 0;
    };
    if std::thread::panicking() {
        // Tear-down path: wake waiters so they can observe the failure.
        let mut ex = lock_recover(&shared.exec);
        for t in &mut ex.threads {
            if matches!(t.state, TState::BlockedCv { cv: c, .. } if c == cv) {
                t.state = TState::Runnable;
                t.wake_timed_out = false;
            }
        }
        drop(ex);
        shared.cv.notify_all();
        return 0;
    }
    let mut woke = 0;
    shared.op_point(tid, "notify-all".to_string(), |ex| {
        for i in 0..ex.threads.len() {
            if matches!(ex.threads[i].state, TState::BlockedCv { cv: c, .. } if c == cv) {
                ex.threads[i].state = TState::Runnable;
                ex.threads[i].wake_timed_out = false;
                woke += 1;
            }
        }
        if woke > 0 {
            ex.log(tid, format!("-> wakes {woke} waiter(s)"));
        }
    });
    woke
}

pub(crate) fn atomic_op(op: &'static str) {
    let Some((shared, tid)) = ctx() else {
        return;
    };
    if std::thread::panicking() {
        return;
    }
    shared.op_point(tid, format!("atomic {op}"), |_| {});
}

// ---------------------------------------------------------------------
// Public thread / test surface
// ---------------------------------------------------------------------

/// Handle to a thread spawned with [`spawn`]; join it to collect the
/// closure's return value.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a schedule point) until the target thread finishes,
    /// then returns its result. If the target panicked the whole
    /// iteration has already failed and this unwinds.
    pub fn join(self) -> T {
        let (shared, tid) = ctx().expect("model::JoinHandle::join outside a model execution");
        loop {
            let Some(ex) = shared.hook_entry() else {
                break;
            };
            if ex.threads[self.tid].state == TState::Finished {
                break;
            }
            shared.block(ex, tid, TState::BlockedJoin { target: self.tid });
        }
        let name = {
            let ex = lock_recover(&shared.exec);
            ex.threads[self.tid].name
        };
        shared.op_point(tid, format!("join t{}:{name}", self.tid), |_| {});
        let v = lock_recover(&self.result).take();
        v.expect("joined model thread has a result")
    }
}

/// Spawns a model-managed thread. Must be called from inside a model
/// execution (the [`explore`] closure or one of its spawned threads).
pub fn spawn<T, F>(name: &'static str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (shared, me) = ctx().expect("model::spawn outside a model execution");
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let tid = {
        let Some(mut ex) = shared.hook_entry() else {
            unreachable!("spawn during unwind")
        };
        let tid = ex.threads.len();
        let priority = ex.next_u64() as i64 & 0x7fff_ffff;
        ex.threads.push(ThreadInfo {
            name,
            state: TState::Runnable,
            wake_timed_out: false,
            priority,
        });
        let shared2 = Arc::clone(&shared);
        let result2 = Arc::clone(&result);
        let handle = std::thread::Builder::new()
            .name(format!("model-{name}"))
            .spawn(move || thread_body(shared2, tid, result2, f))
            .expect("spawn model thread");
        ex.os_handles.push(handle);
        tid
    };
    shared.op_point(me, format!("spawn t{tid}:{name}"), |_| {});
    JoinHandle { tid, result }
}

fn thread_body<T, F>(shared: Arc<Shared>, tid: usize, result: Arc<StdMutex<Option<T>>>, f: F)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            tid,
        });
    });
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        // Park until first scheduled.
        let ex = lock_recover(&shared.exec);
        shared.wait_my_turn(ex, tid);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);

    let mut ex = lock_recover(&shared.exec);
    match outcome {
        Ok(v) => {
            *lock_recover(&result) = Some(v);
        }
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_none() && ex.failure.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let name = ex.threads[tid].name;
                ex.failure = Some(FailureKind::Panic(format!("t{tid}:{name} panicked: {msg}")));
            }
        }
    }
    ex.threads[tid].state = TState::Finished;
    for t in &mut ex.threads {
        if matches!(t.state, TState::BlockedJoin { target } if target == tid) {
            t.state = TState::Runnable;
        }
    }
    if ex.failure.is_some() || ex.threads.iter().all(|t| t.state == TState::Finished) {
        ex.done = true;
        drop(ex);
        shared.cv.notify_all();
        return;
    }
    match ex.pick_next() {
        Some(next) => {
            ex.set_current(next);
            drop(ex);
            shared.cv.notify_all();
        }
        None => {
            let detail = ex.describe_threads();
            if ex.failure.is_none() {
                ex.failure = Some(FailureKind::Deadlock(detail));
            }
            ex.done = true;
            drop(ex);
            shared.cv.notify_all();
        }
    }
}

/// A schedule point with no side effect: lets the scheduler interleave
/// here.
pub fn yield_now() {
    let Some((shared, tid)) = ctx() else {
        std::thread::yield_now();
        return;
    };
    if std::thread::panicking() {
        return;
    }
    shared.op_point(tid, "yield".to_string(), |_| {});
}

/// A recorded nondeterministic choice over `n` options — every branch
/// is explored like a scheduling decision. Panics outside a model
/// execution.
pub fn choose(n: usize) -> usize {
    assert!(n > 0, "model::choose needs at least one option");
    let (shared, tid) = ctx().expect("model::choose outside a model execution");
    let mut picked = 0;
    shared.op_point(tid, format!("choose /{n}"), |ex| {
        picked = ex.decide(n, None);
    });
    picked
}

/// Whether the named mutant is enabled for the current execution (or,
/// outside an execution, via the `MODEL_MUTANTS` env var).
pub fn mutant_enabled(name: &str) -> bool {
    if let Some((shared, _)) = ctx() {
        let ex = lock_recover(&shared.exec);
        return ex.mutants.iter().any(|m| m == name);
    }
    std::env::var("MODEL_MUTANTS")
        .map(|v| v.split(',').any(|m| m.trim() == name))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------

struct IterOutcome {
    failure: Option<FailureKind>,
    hash: u64,
    decisions: Vec<(usize, usize)>,
    trace: String,
    steps: usize,
}

fn run_one(
    cfg: &Config,
    seed: u64,
    forced: Vec<usize>,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> IterOutcome {
    let shared = Arc::new(Shared {
        exec: StdMutex::new(Exec::new(cfg, seed, forced)),
        cv: StdCondvar::new(),
    });
    let result: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
    {
        let mut ex = lock_recover(&shared.exec);
        let priority = ex.next_u64() as i64 & 0x7fff_ffff;
        ex.threads.push(ThreadInfo {
            name: "main",
            state: TState::Runnable,
            wake_timed_out: false,
            priority,
        });
        ex.current = 0;
        let shared2 = Arc::clone(&shared);
        let result2 = Arc::clone(&result);
        let f2 = Arc::clone(f);
        let handle = std::thread::Builder::new()
            .name("model-main".to_string())
            .spawn(move || thread_body(shared2, 0, result2, move || f2()))
            .expect("spawn model root thread");
        ex.os_handles.push(handle);
    }
    shared.cv.notify_all();
    let handles = {
        let mut ex = lock_recover(&shared.exec);
        while !ex.done {
            ex = shared
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        std::mem::take(&mut ex.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let ex = lock_recover(&shared.exec);
    IterOutcome {
        failure: ex.failure.clone(),
        hash: ex.hash,
        decisions: ex.decisions.clone(),
        trace: ex.render_trace(),
        steps: ex.steps,
    }
}

fn make_failure(cfg: &Config, seed: u64, iteration: usize, out: IterOutcome) -> Failure {
    Failure {
        label: cfg.label.to_string(),
        policy: cfg.policy.name().to_string(),
        seed,
        path: out.decisions.iter().map(|&(c, _)| c).collect(),
        iteration,
        kind: out.failure.expect("failure present"),
        event_hash: out.hash,
        trace: out.trace,
        steps: out.steps,
    }
}

fn seed_for_iter(base: u64, i: usize) -> u64 {
    splitmix(base ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Runs the exploration, returning the counterexample instead of
/// panicking — for tests that inspect or replay failures.
pub fn explore_result<F>(cfg: &Config, f: F) -> Result<Report, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    if let Ok(env) = std::env::var("MODEL_REPLAY") {
        if let Some(spec) = ReplaySpec::parse(&env) {
            if spec.label == cfg.label {
                return replay_with(cfg, &spec, &f);
            }
        }
    }
    match cfg.policy {
        Policy::Random | Policy::Pct { .. } => {
            let mut last_hash = 0;
            for i in 0..cfg.iterations {
                let seed = seed_for_iter(cfg.seed, i);
                let out = run_one(cfg, seed, Vec::new(), &f);
                last_hash = out.hash;
                if out.failure.is_some() {
                    return Err(Box::new(make_failure(cfg, seed, i, out)));
                }
            }
            Ok(Report {
                schedules: cfg.iterations,
                last_event_hash: last_hash,
            })
        }
        Policy::Dfs => {
            let mut forced: Vec<usize> = Vec::new();
            let mut schedules = 0;
            let mut last_hash;
            loop {
                let out = run_one(cfg, cfg.seed, forced.clone(), &f);
                schedules += 1;
                last_hash = out.hash;
                if out.failure.is_some() {
                    return Err(Box::new(make_failure(cfg, cfg.seed, schedules - 1, out)));
                }
                // Backtrack: advance the deepest decision that still
                // has unexplored branches.
                let mut next: Option<Vec<usize>> = None;
                for (depth, &(chosen, options)) in out.decisions.iter().enumerate().rev() {
                    if chosen + 1 < options {
                        let mut path: Vec<usize> =
                            out.decisions[..depth].iter().map(|&(c, _)| c).collect();
                        path.push(chosen + 1);
                        next = Some(path);
                        break;
                    }
                }
                match next {
                    Some(path) if schedules < cfg.iterations => forced = path,
                    _ => break,
                }
            }
            Ok(Report {
                schedules,
                last_event_hash: last_hash,
            })
        }
    }
}

/// Re-runs a single captured schedule. When the spec carries a `hash`,
/// the re-run's event log must hash identically or this returns a
/// diverged-replay panic.
pub fn replay<F>(cfg: &Config, spec: &ReplaySpec, f: F) -> Result<Report, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    replay_with(cfg, spec, &f)
}

fn replay_with(
    cfg: &Config,
    spec: &ReplaySpec,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> Result<Report, Box<Failure>> {
    let seed = spec.seed.unwrap_or(cfg.seed);
    let out = run_one(cfg, seed, spec.path.clone(), f);
    if let Some(expected) = spec.hash {
        assert_eq!(
            out.hash, expected,
            "model replay diverged: event-log hash {:#018x} != captured {:#018x} \
             (the schedule is no longer reproducible — did the code under test change?)",
            out.hash, expected
        );
    }
    if out.failure.is_some() {
        return Err(Box::new(make_failure(cfg, seed, 0, out)));
    }
    Ok(Report {
        schedules: 1,
        last_event_hash: out.hash,
    })
}

/// Runs the exploration and panics with a full replayable report on the
/// first failing schedule. This is the main entry point for model
/// tests.
pub fn explore<F>(cfg: &Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = explore_result(cfg, f) {
        if let Ok(dir) = std::env::var("MODEL_TRACE_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{}.trace.txt", cfg.label));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(&path, format!("{failure}\n"));
        }
        panic!("{failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_spec_round_trips() {
        let f = Failure {
            label: "proto".to_string(),
            policy: "random".to_string(),
            seed: 0xdead_beef,
            path: vec![0, 2, 1],
            iteration: 3,
            kind: FailureKind::StepLimit,
            event_hash: 0x1234,
            trace: String::new(),
            steps: 9,
        };
        let spec = ReplaySpec::parse(&f.replay_spec()).expect("parses");
        assert_eq!(spec.label, "proto");
        assert_eq!(spec.policy, "random");
        assert_eq!(spec.seed, Some(0xdead_beef));
        assert_eq!(spec.path, vec![0, 2, 1]);
        assert_eq!(spec.hash, Some(0x1234));
    }

    #[test]
    fn replay_spec_rejects_garbage() {
        assert!(ReplaySpec::parse("").is_none());
        assert!(ReplaySpec::parse("policy=random").is_none());
        assert!(ReplaySpec::parse("test=x;seed=zzz").is_none());
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix(42), splitmix(42));
        assert_ne!(splitmix(42), splitmix(43));
    }
}
