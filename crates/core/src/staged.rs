//! The paper's modified server: one listener, five thread pools
//! (Figure 5), database connections pinned to dynamic workers only.
//!
//! Every inter-stage queue is **bounded** and every handoff is a
//! non-blocking `try_push`: when a downstream stage saturates, the
//! upstream stage sheds the request with a well-formed `503` +
//! `Retry-After` instead of queuing unboundedly (or, worse, blocking
//! the accept loop). Static requests keep flowing while the dynamic
//! stages saturate — graceful degradation rather than meltdown.
//!
//! Every request carries a pooled [`Trace`] from accept to terminal
//! outcome, recording enqueue/dequeue/stage-done timestamps, the
//! classifier decision, and shed/stale events. Aggregates land in the
//! server's [`Registry`] (exported on `GET /metrics`); the slowest
//! served traces are kept in a bounded ring (`GET /debug/traces`).

use crate::app::{App, PageOutcome};
use crate::baseline::run_handler_with_slot;
use crate::config::ServerConfig;
use crate::doccache::{DocCache, Lookup};
use crate::governor::{ConnectionGovernor, GovernedStream};
use crate::handle::{FaultFn, ServerHandle, ShutdownError};
use crate::health::{self, HealthView, Readiness};
use crate::overload::{overload_response, ChaosAction, DbSlot, RetryEstimator};
use crate::scheduler::{RequestClass, ReserveController, ServiceTimeTracker};
use crate::stale::{self, StaleCache};
use crate::stats::{RequestKind, ServerStats, ShedPoint};
use staged_db::{CircuitBreaker, ConnectionPool, Database, ReadSet};
use staged_http::{
    Connection, HeaderMap, HttpError, Method, Request, RequestLine, Response, StatusCode,
};
use staged_metrics::{Registry, Stage, Trace, TraceEvent, TraceHub, TraceOutcome};
use staged_pool::{PoolConfig, PoolStats, PushError, SyncQueue, WorkerPool};
use staged_sync::atomic::{AtomicBool, Ordering};
use staged_templates::Context;
use std::cell::RefCell;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Conn = Connection<GovernedStream>;

thread_local! {
    /// Per-thread scratch for normalized cache keys. Reused across
    /// requests so key derivation on the cache-hit path stops
    /// allocating once the buffer has grown to steady state.
    static KEY_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// An accepted (or requeued keep-alive) connection waiting for a header
/// worker, stamped so queue wait counts against the request deadline.
struct TimedConn {
    conn: Conn,
    arrived: Instant,
    trace: Trace,
}

/// A request handed from the header pool to the static pool: the header
/// workers only parse the first line for static resources ("we let the
/// threads which actually serve those static requests parse their
/// headers", §3.2).
struct StaticJob {
    conn: Conn,
    line: RequestLine,
    /// Absolute deadline, set when `request_deadline` is configured.
    deadline: Option<Instant>,
    trace: Trace,
}

/// A fully parsed dynamic request, dispatched to the general or lengthy
/// pool.
struct DynJob {
    conn: Conn,
    request: Request,
    /// The page key (route name) for service-time tracking; `None` for
    /// unrouted paths (404).
    page: Option<String>,
    kind: RequestKind,
    deadline: Option<Instant>,
    /// The normalized cache key for `GET`s of cache-marked routes
    /// (shared by the stale ladder and the document cache); `None`
    /// means this request must never be served from either cache.
    stale_key: Option<String>,
    /// Document-cache epoch snapshot taken at the miss, *before* the
    /// first query — [`DocCache::publish`] uses it to reject renders
    /// that raced a write. Zero when the document cache is off.
    cache_snapshot: u64,
    trace: Trace,
}

/// An unrendered template on its way to the render pool — the payload
/// of the paper's modified `return ("tmpl.html", data)`.
struct RenderJob {
    conn: Conn,
    keep_alive: bool,
    method: Method,
    name: String,
    /// The route name, carried so the trace's terminal outcome is
    /// labelled with the page, not the template.
    page: String,
    context: Context,
    kind: RequestKind,
    deadline: Option<Instant>,
    /// Carried through so the render stage can both retain a fresh
    /// render and fall back to a stale one when the deadline expired in
    /// its queue.
    stale_key: Option<String>,
    /// See [`DynJob::cache_snapshot`].
    cache_snapshot: u64,
    /// The tables/keys the handler's queries read, collected by the
    /// dynamic stage; tags the published render for invalidation.
    reads: Option<Arc<ReadSet>>,
    trace: Trace,
}

struct Shared {
    app: App,
    stats: Arc<ServerStats>,
    tracker: Arc<ServiceTimeTracker>,
    controller: Arc<ReserveController>,
    header_q: Arc<SyncQueue<TimedConn>>,
    static_q: Arc<SyncQueue<StaticJob>>,
    general_q: Arc<SyncQueue<DynJob>>,
    lengthy_q: Arc<SyncQueue<DynJob>>,
    render_q: Arc<SyncQueue<RenderJob>>,
    /// Lengthy-render queue; `None` unless `split_render` is on (the
    /// paper's §3.3 suggested extension).
    render_lengthy_q: Option<Arc<SyncQueue<RenderJob>>>,
    /// Per-template render-time tracker for the render split.
    render_tracker: Arc<ServiceTimeTracker>,
    general_size: usize,
    /// Pool-stats handles, held so stage handoffs (raw queue pushes,
    /// not `WorkerPool::try_submit`) can still charge capacity
    /// rejections to the receiving pool.
    header_stats: Arc<PoolStats>,
    static_stats: Arc<PoolStats>,
    general_stats: Arc<PoolStats>,
    lengthy_stats: Arc<PoolStats>,
    render_stats: Arc<PoolStats>,
    render_lengthy_stats: Option<Arc<PoolStats>>,
    /// Per-request time budget (`None` disables deadline checking).
    budget: Option<Duration>,
    /// Adaptive `Retry-After` advice for shed responses.
    retry: RetryEstimator,
    /// Stale copies of successful renders — the degradation ladder's
    /// middle rung (fresh → stale → shed). `Arc`-shared with the
    /// database write observer, which evicts entries a write touched.
    stale: Arc<StaleCache>,
    /// The dependency-tracked dynamic-page cache; `None` unless
    /// [`ServerConfig::doc_cache`] is on. Hits are served from the
    /// header stage without touching the dynamic or render pools.
    doc_cache: Option<Arc<DocCache>>,
    /// Lifecycle phase, served by `/readyz`.
    readiness: Arc<Readiness>,
    /// The database circuit breaker (shared with the connection pool),
    /// surfaced in the health payloads.
    breaker: Option<Arc<CircuitBreaker>>,
    /// The one metrics surface: `/metrics`, `/healthz`, and the handle
    /// all read from here.
    registry: Arc<Registry>,
    /// Trace pool + slow ring; every request's trace starts here.
    trace_hub: TraceHub,
    /// Connection-admission caps (global/per-IP concurrency, keep-alive
    /// quotas, idle harvesting).
    governor: ConnectionGovernor,
    /// The database, kept for the health payload's durability section
    /// (`durability_status()` answers `None` on in-memory databases,
    /// which keeps the section out of the payload).
    db: Arc<Database>,
    /// Set when shutdown begins: keep-alive connections are no longer
    /// requeued, so in-flight requests finish and the stages run dry.
    draining: AtomicBool,
}

impl Shared {
    /// The live `t_spare`: idle threads in the general dynamic pool.
    ///
    /// Jobs already queued but not yet popped count as committed — the
    /// busy gauge alone lags dispatch, so a burst of lengthy requests
    /// arriving at an idle server would all read a stale spare count
    /// and spill onto the general pool together, starving the quick
    /// traffic the reserve exists to protect.
    fn tspare(&self) -> usize {
        let busy = usize::try_from(self.general_stats.busy.value().max(0)).unwrap_or(0);
        self.general_size
            .saturating_sub(busy)
            .saturating_sub(self.general_q.len())
    }

    /// Whether dynamic workers should collect read sets for cacheable
    /// requests: some consumer (document cache or stale ladder) will
    /// tag entries with them.
    fn track_reads(&self) -> bool {
        self.doc_cache.is_some() || self.stale.enabled()
    }

    /// Sends a response (honouring `HEAD`) and either requeues the
    /// connection for its next request or drops it. The trace reaches
    /// its terminal outcome here: `Served` on a delivered response,
    /// `Dropped` when the client went away mid-write.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        mut conn: Conn,
        method: Method,
        response: &Response,
        keep_alive: bool,
        kind: RequestKind,
        trace: Trace,
        page: Option<&str>,
    ) {
        if conn.send_for_method(method, response).is_err() {
            self.stats.dropped_connections.increment();
            trace.finish(TraceOutcome::Dropped, page);
            return;
        }
        self.stats.record_completion(kind);
        trace.finish(TraceOutcome::Served, page);
        self.requeue(conn, keep_alive);
    }

    /// Requeues a keep-alive connection for its next request — unless
    /// the server is draining, in which case the connection is dropped
    /// after its (already sent) response so the stages can run dry.
    ///
    /// The next request gets a fresh trace; if the connection then
    /// closes cleanly without sending one, that trace finishes as
    /// `Dropped` (no response was owed).
    fn requeue(&self, mut conn: Conn, keep_alive: bool) {
        if !keep_alive || self.draining.load(Ordering::Acquire) {
            return;
        }
        // Keep-alive lifecycle caps: a connection that has served its
        // request quota — or any idle connection while open connections
        // sit at the governor's harvest watermark — is closed instead of
        // requeued, freeing its admission slot for a new peer.
        let served = conn.stream_mut().count_served();
        if self.governor.keepalive_exhausted(served) || self.governor.harvest_idle() {
            return;
        }
        let mut trace = self.trace_hub.start();
        trace.enqueued(Stage::Parse);
        let timed = TimedConn {
            conn,
            arrived: Instant::now(),
            trace,
        };
        if let Err(PushError::Full(timed)) = self.header_q.try_push(timed) {
            // The parse stage is saturated; dropping an idle
            // keep-alive connection is cheaper than any request it
            // might send later.
            self.header_stats.rejected.increment();
            self.stats.record_shed(ShedPoint::KeepAlive);
            let mut trace = timed.trace;
            trace.note(TraceEvent::Shed);
            trace.finish(TraceOutcome::Shed, None);
        }
    }

    /// Serves `/healthz` or `/readyz` from the header stage. Health
    /// probes are not completions: monitoring traffic must not skew the
    /// goodput series the experiments plot.
    fn serve_health(
        &self,
        mut conn: Conn,
        method: Method,
        path: &str,
        keep_alive: bool,
        trace: Trace,
    ) {
        let response = self.health_response(path);
        if conn.send_for_method(method, &response).is_err() {
            self.stats.dropped_connections.increment();
            trace.finish(TraceOutcome::Dropped, None);
            return;
        }
        trace.finish(TraceOutcome::Probe, None);
        let closed = response
            .headers()
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        self.requeue(conn, keep_alive && !closed);
    }

    /// Serves `/metrics` (Prometheus text exposition), `/debug/traces`
    /// (the slow-trace ring as JSON), or `/debug/explain` (query-plan
    /// trees per route). Like health probes, these are not completions.
    fn serve_observability(
        &self,
        mut conn: Conn,
        method: Method,
        path: &str,
        route: Option<&str>,
        keep_alive: bool,
        trace: Trace,
    ) {
        let response = if path == "/metrics" {
            Response::metrics_text(self.registry.encode_prometheus())
        } else if path == "/debug/explain" {
            health::explain_response(&self.db, route)
        } else {
            Response::with_content_type("application/json", self.trace_hub.traces_json())
        };
        if conn.send_for_method(method, &response).is_err() {
            self.stats.dropped_connections.increment();
            trace.finish(TraceOutcome::Dropped, None);
            return;
        }
        trace.finish(TraceOutcome::Probe, None);
        self.requeue(conn, keep_alive);
    }

    /// Builds the health payload from the metrics registry (the same
    /// families `/metrics` exports, so the two surfaces cannot
    /// disagree).
    fn health_response(&self, path: &str) -> Response {
        let view = HealthView {
            phase: self.readiness.phase(),
            breaker: self.breaker.as_deref(),
            registry: &self.registry,
            durability: self.db.durability_status(),
        };
        if path == "/readyz" {
            view.readyz(self.retry.advise())
        } else {
            view.healthz()
        }
    }

    /// Sheds a request with the well-formed `503` and closes the
    /// connection. Sheds are not completions: goodput counts only
    /// requests actually served.
    fn shed(&self, mut conn: Conn, method: Method, point: ShedPoint, mut trace: Trace) {
        self.stats.record_shed(point);
        trace.note(TraceEvent::Shed);
        if conn
            .send_for_method(method, &overload_response(self.retry.advise()))
            .is_err()
        {
            self.stats.dropped_connections.increment();
        } else {
            // The request may be partly (or wholly) unread; drain it so
            // closing doesn't RST the 503 away.
            crate::overload::drain_before_close(conn.stream_mut().tcp());
        }
        trace.finish(TraceOutcome::Shed, None);
    }

    /// Answers a request whose deadline already passed with a `503` and
    /// closes the connection (the client has almost certainly given up;
    /// serving it would waste a saturated stage's time).
    fn expire(&self, mut conn: Conn, method: Method, trace: Trace) {
        self.stats.deadline_expired.increment();
        if conn
            .send_for_method(method, &overload_response(self.retry.advise()))
            .is_err()
        {
            self.stats.dropped_connections.increment();
        } else {
            crate::overload::drain_before_close(conn.stream_mut().tcp());
        }
        trace.finish(TraceOutcome::Expired, None);
    }

    /// `true` when a stamped deadline has passed.
    fn expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() > d)
    }
}

/// Registers a stage queue's observability: its depth gauge
/// (`stage_queue_depth{stage=…}`) and its wait histogram
/// (`stage_queue_wait_seconds{stage=…}`, recorded by the queue itself
/// on every pop).
pub(crate) fn register_stage<T: Send + 'static>(
    registry: &Registry,
    stage: &'static str,
    q: &Arc<SyncQueue<T>>,
) {
    let depth = Arc::clone(q);
    registry.gauge_fn("stage_queue_depth", &[("stage", stage)], move || {
        depth.len() as f64
    });
    q.set_wait_histogram(registry.histogram("stage_queue_wait_seconds", &[("stage", stage)]));
}

/// Registers a worker pool's counters
/// (`pool_{completed,panics,rejected}_total{pool=…}`), its busy gauge
/// (`pool_busy_workers{pool=…}`), and its service-time histogram
/// (`stage_service_seconds{stage=…}`).
pub(crate) fn register_pool(
    registry: &Registry,
    pool: &'static str,
    stage: &'static str,
    stats: &Arc<PoolStats>,
) {
    let s = Arc::clone(stats);
    registry.counter_fn("pool_completed_total", &[("pool", pool)], move || {
        s.completed.value()
    });
    let s = Arc::clone(stats);
    registry.counter_fn("pool_panics_total", &[("pool", pool)], move || {
        s.panicked.value()
    });
    let s = Arc::clone(stats);
    registry.counter_fn("pool_rejected_total", &[("pool", pool)], move || {
        s.rejected.value()
    });
    let s = Arc::clone(stats);
    registry.gauge_fn("pool_busy_workers", &[("pool", pool)], move || {
        s.busy.value().max(0) as f64
    });
    registry.register_histogram(
        "stage_service_seconds",
        &[("stage", stage)],
        Arc::clone(&stats.service),
    );
}

/// Attaches durability to `db` when the configuration asks for it (and
/// the database isn't already durable, as one opened via
/// [`Database::open`] is), then registers the WAL metric families:
/// `wal_appends_total`, `wal_bytes_total`, `checkpoints_total`,
/// `recovery_replayed_records`, and the `wal_fsync_seconds` histogram
/// fed by the group-commit leader.
pub(crate) fn setup_durability(
    config: &ServerConfig,
    registry: &Registry,
    db: &Arc<Database>,
) -> io::Result<()> {
    let Some(durability) = &config.durability else {
        return Ok(());
    };
    if db.durability_status().is_none() {
        db.enable_durability(durability.clone())
            .map_err(io::Error::other)?;
    }
    let stat = |db: &Arc<Database>, f: fn(staged_db::WalStats) -> u64| {
        let db = Arc::clone(db);
        move || db.wal_stats().map_or(0, f)
    };
    registry.counter_fn("wal_appends_total", &[], stat(db, |w| w.appends));
    registry.counter_fn("wal_bytes_total", &[], stat(db, |w| w.bytes));
    let d = Arc::clone(db);
    registry.counter_fn("checkpoints_total", &[], move || {
        d.durability_status().map_or(0, |s| s.checkpoints)
    });
    let d = Arc::clone(db);
    registry.gauge_fn("recovery_replayed_records", &[], move || {
        d.durability_status().map_or(0.0, |s| s.replay_count as f64)
    });
    let fsync = registry.histogram("wal_fsync_seconds", &[]);
    db.set_fsync_observer(move |elapsed| fsync.record(elapsed));
    Ok(())
}

/// The final durability step of a graceful shutdown: once every pool is
/// drained and joined, write a checkpoint so the next open replays
/// nothing. Called with no server activity left; surfacing the error is
/// the point (a swallowed checkpoint failure turns "cleanly stopped"
/// into replay-on-next-open at best, data loss at worst).
pub(crate) fn shutdown_checkpoint(db: &Database) -> Result<(), ShutdownError> {
    let Some(status) = db.durability_status() else {
        return Ok(());
    };
    if !status.checkpoint_on_shutdown {
        return Ok(());
    }
    db.checkpoint()
        .map_err(|e| ShutdownError::new(format!("final checkpoint failed: {e}")))
}

/// Registers the document-cache metric families:
/// `doc_cache_{hits,misses,publishes,invalidations,stale_discards,
/// bytes_served}_total` and the `doc_cache_entries` gauge. `/healthz`'s
/// cache section reads the same families, so the surfaces agree.
pub(crate) fn register_doc_cache(registry: &Registry, cache: &Arc<DocCache>) {
    type CounterRead = fn(&DocCache) -> u64;
    let families: [(&'static str, CounterRead); 7] = [
        ("doc_cache_hits_total", DocCache::hits),
        ("doc_cache_misses_total", DocCache::misses),
        ("doc_cache_publishes_total", DocCache::publishes),
        ("doc_cache_invalidations_total", DocCache::invalidations),
        ("doc_cache_stale_discards_total", DocCache::stale_discards),
        ("doc_cache_bytes_served_total", DocCache::bytes_served),
        ("doc_cache_row_level_deps_total", DocCache::row_level_deps),
    ];
    for (name, read) in families {
        let c = Arc::clone(cache);
        registry.counter_fn(name, &[], move || read(&c));
    }
    let c = Arc::clone(cache);
    registry.gauge_fn("doc_cache_entries", &[], move || c.len() as f64);
}

/// Pre-creates the `db_plan_node_seconds{node=…}` histogram family for
/// every plan-node kind and installs the planner's per-node timing
/// observer feeding it. Pre-creation keeps the whole family visible in
/// `/metrics` from the first scrape; the observer itself only does a
/// slice scan and a histogram record (it runs after the database has
/// released every lock, but still on the query's thread).
pub(crate) fn register_plan_observer(registry: &Registry, db: &Arc<Database>) {
    let hists: Vec<(&'static str, Arc<staged_metrics::Histogram>)> = staged_db::PLAN_NODE_KINDS
        .iter()
        .map(|kind| {
            (
                *kind,
                registry.histogram("db_plan_node_seconds", &[("node", kind)]),
            )
        })
        .collect();
    db.set_plan_observer(move |node, elapsed| {
        if let Some((_, h)) = hists.iter().find(|(k, _)| *k == node) {
            h.record(elapsed);
        }
    });
}

/// Invalidates both response caches for one write event, document cache
/// first. The order is load-bearing: the doc cache is the authoritative
/// fast path, so it must be purged before the stale fallback. Flipping
/// the order opens a window where the stale cache is already clean but
/// the doc cache still serves the outdated page — a reader that sees the
/// stale cache empty can then observe a doc-cache hit for data the write
/// already superseded. Routing every caller through this helper keeps
/// the direction in one place, where the model checker can flip it and
/// watch a concurrent reader observe that incoherent state.
pub(crate) fn invalidate_caches(
    dc: Option<&DocCache>,
    sc: &StaleCache,
    event: &staged_db::WriteEvent,
) {
    staged_sync::mutant!("core_invalidate_nesting_flip" => {
        sc.invalidate(event);
        if let Some(dc) = dc {
            dc.invalidate(event);
        }
    } else {
        if let Some(dc) = dc {
            dc.invalidate(event);
        }
        sc.invalidate(event);
    });
}

/// Registers the per-page data-generation collector
/// (`page_service_seconds{page=…}`, the scheduler's classification
/// input as a running average).
pub(crate) fn register_page_tracker(registry: &Registry, tracker: &Arc<ServiceTimeTracker>) {
    let t = Arc::clone(tracker);
    registry.gauge_collector("page_service_seconds", "page", move || {
        t.snapshot()
            .into_iter()
            .map(|(page, avg, _count)| (page, avg.as_secs_f64()))
            .collect()
    });
}

/// The modified multi-thread-pool web server (the paper's contribution).
///
/// Request lifecycle:
///
/// 1. the **listener** accepts a connection and queues it for header
///    parsing (shedding with `503` when the header queue is full);
/// 2. a **header-parsing** worker reads the request line; static
///    requests go to the static pool immediately, dynamic requests get
///    their remaining headers, query string, and body parsed *here* —
///    "we do not want a thread with an open database connection to
///    waste time doing anything other than generating data" (§3.2) —
///    then are classified quick/lengthy and dispatched per Table 1;
/// 3. a **dynamic** worker (each owning a database connection) runs the
///    page handler and measures data-generation time; an unrendered
///    template outcome is queued for rendering, a pre-rendered body is
///    sent directly (backward compatibility);
/// 4. a **render** worker renders the template, sets `Content-Length`
///    exactly, and transmits the response.
///
/// A 1 Hz-equivalent controller thread updates `t_reserve` from the
/// general pool's measured `t_spare` ([`ReserveController`]).
#[derive(Debug)]
pub struct StagedServer;

impl StagedServer {
    /// Binds, spawns the five pools and the controller, and starts the
    /// listener.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listen address.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`ServerConfig::validate`]).
    pub fn start(config: ServerConfig, app: App, db: Arc<Database>) -> io::Result<ServerHandle> {
        config.validate();
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(config.stats_bucket));
        let tracker = Arc::new(ServiceTimeTracker::new(config.lengthy_cutoff));
        let controller = Arc::new(ReserveController::with_max(
            config.min_reserve,
            config.max_reserve,
        ));
        let registry = Arc::new(Registry::new());
        let trace_hub = TraceHub::new(&registry, config.trace_ring);
        let governor = ConnectionGovernor::new(config.governor);
        governor.register_into(&registry);
        setup_durability(&config, &registry, &db)?;
        let durable_db = Arc::clone(&db);
        let connections = ConnectionPool::new(db, config.db_connections);
        connections.set_fault_plan(config.fault_plan);
        connections.set_breaker(config.breaker);
        let breaker = connections.breaker();
        let fault_pool = connections.clone();
        let set_fault: FaultFn = Arc::new(move |plan| fault_pool.set_fault_plan(plan));
        let readiness = Arc::new(Readiness::new());

        let stale = Arc::new(StaleCache::new(config.stale_ttl, config.stale_capacity));
        let doc_cache = config.doc_cache.then(|| {
            Arc::new(DocCache::new(
                config.doc_cache_ttl,
                config.doc_cache_capacity,
            ))
        });
        // The invalidation engine: every committed mutation evicts
        // dependent entries from the document cache and the stale
        // ladder (rank 118 before rank 120). The observer deliberately
        // captures only the two caches — capturing the shared server
        // context would create an Arc cycle through the database.
        if doc_cache.is_some() || config.stale_capacity > 0 {
            let dc = doc_cache.clone();
            let sc = Arc::clone(&stale);
            durable_db.set_write_observer(move |event| {
                invalidate_caches(dc.as_deref(), &sc, event);
            });
        }

        let header_q = Arc::new(SyncQueue::<TimedConn>::bounded(config.header_queue_bound()));
        let static_q = Arc::new(SyncQueue::<StaticJob>::bounded(config.static_queue_bound()));
        let general_q = Arc::new(SyncQueue::<DynJob>::bounded(config.general_queue_bound()));
        let lengthy_q = Arc::new(SyncQueue::<DynJob>::bounded(config.lengthy_queue_bound()));
        let render_q = Arc::new(SyncQueue::<RenderJob>::bounded(config.render_queue_bound()));
        let render_lengthy_q = config
            .split_render
            .then(|| Arc::new(SyncQueue::<RenderJob>::bounded(config.render_queue_bound())));
        let render_tracker = Arc::new(ServiceTimeTracker::new(config.render_cutoff));

        // Every pool's stats block is created up front so the shared
        // context can charge handoff rejections to the right pool (and
        // carry the general pool's busy gauge, the t_spare signal).
        let header_pool_stats = Arc::new(PoolStats::default());
        let static_pool_stats = Arc::new(PoolStats::default());
        let general_pool_stats = Arc::new(PoolStats::default());
        let lengthy_pool_stats = Arc::new(PoolStats::default());
        let render_pool_stats = Arc::new(PoolStats::default());
        let render_lengthy_pool_stats = config.split_render.then(|| Arc::new(PoolStats::default()));

        // Adaptive Retry-After: backlog across every stage divided by
        // the measured completion rate.
        let retry = {
            let hq = Arc::clone(&header_q);
            let sq = Arc::clone(&static_q);
            let gq = Arc::clone(&general_q);
            let lq = Arc::clone(&lengthy_q);
            let rq = Arc::clone(&render_q);
            let rlq = render_lengthy_q.clone();
            let st = Arc::clone(&stats);
            RetryEstimator::new(
                config.retry_after,
                Box::new(move || {
                    hq.len()
                        + sq.len()
                        + gq.len()
                        + lq.len()
                        + rq.len()
                        + rlq.as_ref().map_or(0, |q| q.len())
                }),
                Box::new(move || st.total_completed()),
            )
        };

        let shared = Arc::new(Shared {
            app,
            stats: Arc::clone(&stats),
            tracker: Arc::clone(&tracker),
            controller: Arc::clone(&controller),
            header_q: Arc::clone(&header_q),
            static_q: Arc::clone(&static_q),
            general_q: Arc::clone(&general_q),
            lengthy_q: Arc::clone(&lengthy_q),
            render_q: Arc::clone(&render_q),
            render_lengthy_q: render_lengthy_q.clone(),
            render_tracker: Arc::clone(&render_tracker),
            general_size: config.general_workers,
            header_stats: Arc::clone(&header_pool_stats),
            static_stats: Arc::clone(&static_pool_stats),
            general_stats: Arc::clone(&general_pool_stats),
            lengthy_stats: Arc::clone(&lengthy_pool_stats),
            render_stats: Arc::clone(&render_pool_stats),
            render_lengthy_stats: render_lengthy_pool_stats.clone(),
            budget: config.request_deadline,
            retry,
            stale,
            doc_cache: doc_cache.clone(),
            readiness: Arc::clone(&readiness),
            breaker: breaker.clone(),
            registry: Arc::clone(&registry),
            trace_hub: trace_hub.clone(),
            governor,
            db: Arc::clone(&durable_db),
            draining: AtomicBool::new(false),
        });

        // Populate the registry: stage depth gauges + wait histograms,
        // per-pool counters + service histograms, scheduler gauges, the
        // server counters, and the per-page service collector. This is
        // the whole `/metrics` surface.
        register_stage(&registry, "header", &header_q);
        register_stage(&registry, "static", &static_q);
        register_stage(&registry, "general", &general_q);
        register_stage(&registry, "lengthy", &lengthy_q);
        register_stage(&registry, "render", &render_q);
        if let Some(q) = &render_lengthy_q {
            register_stage(&registry, "render-lengthy", q);
        }
        register_pool(&registry, "header-parsing", "header", &header_pool_stats);
        register_pool(&registry, "static", "static", &static_pool_stats);
        register_pool(&registry, "general-dynamic", "general", &general_pool_stats);
        register_pool(&registry, "lengthy-dynamic", "lengthy", &lengthy_pool_stats);
        register_pool(&registry, "render", "render", &render_pool_stats);
        if let Some(s) = &render_lengthy_pool_stats {
            register_pool(&registry, "render-lengthy", "render-lengthy", s);
        }
        stats.register_into(&registry);
        {
            let s = Arc::clone(&shared);
            registry.gauge_fn("scheduler_t_spare", &[], move || s.tspare() as f64);
        }
        {
            let c = Arc::clone(&controller);
            registry.gauge_fn("scheduler_t_reserve", &[], move || c.reserve() as f64);
        }
        register_page_tracker(&registry, &tracker);
        register_plan_observer(&registry, &durable_db);
        if let Some(dc) = &doc_cache {
            register_doc_cache(&registry, dc);
        }

        let db_acquire_timeout = config.db_acquire_timeout;
        let db_acquire_retries = config.db_acquire_retries;
        let s = Arc::clone(&shared);
        let general_pool = WorkerPool::with_parts(
            Arc::clone(&general_q),
            Arc::clone(&general_pool_stats),
            PoolConfig::new("general-dynamic", config.general_workers),
            |_| DbSlot::new(&connections, db_acquire_timeout, db_acquire_retries),
            move |slot: &mut DbSlot, job: DynJob| {
                dynamic_worker(&s, slot, job);
            },
        );

        let s = Arc::clone(&shared);
        let lengthy_pool = WorkerPool::with_parts(
            Arc::clone(&lengthy_q),
            Arc::clone(&lengthy_pool_stats),
            PoolConfig::new("lengthy-dynamic", config.lengthy_workers),
            |_| DbSlot::new(&connections, db_acquire_timeout, db_acquire_retries),
            move |slot: &mut DbSlot, job: DynJob| {
                dynamic_worker(&s, slot, job);
            },
        );

        let s = Arc::clone(&shared);
        let static_pool = WorkerPool::with_parts(
            Arc::clone(&static_q),
            Arc::clone(&static_pool_stats),
            PoolConfig::new("static", config.static_workers),
            |_| (),
            move |_, job: StaticJob| static_worker(&s, job),
        );

        // With the render split on, a quarter of the render workers (at
        // least one) form the lengthy-render pool.
        let lengthy_render_workers = if config.split_render {
            (config.render_workers / 4).max(1)
        } else {
            0
        };
        let general_render_workers = (config.render_workers - lengthy_render_workers).max(1);
        let s = Arc::clone(&shared);
        let render_pool = WorkerPool::with_parts(
            Arc::clone(&render_q),
            Arc::clone(&render_pool_stats),
            PoolConfig::new("render", general_render_workers),
            |_| (),
            move |_, job: RenderJob| render_worker(&s, job),
        );
        let render_lengthy_pool = render_lengthy_q.as_ref().map(|q| {
            let s = Arc::clone(&shared);
            WorkerPool::with_parts(
                Arc::clone(q),
                render_lengthy_pool_stats
                    .clone()
                    .expect("render split stats exist with the queue"),
                PoolConfig::new("render-lengthy", lengthy_render_workers),
                |_| (),
                move |_, job: RenderJob| render_worker(&s, job),
            )
        });

        let s = Arc::clone(&shared);
        let header_pool = WorkerPool::with_parts(
            Arc::clone(&header_q),
            Arc::clone(&header_pool_stats),
            PoolConfig::new("header-parsing", config.header_workers),
            |_| (),
            move |_, timed: TimedConn| header_worker(&s, timed),
        );

        // Controller thread: the paper checks and modifies t_reserve
        // once per second; `controller_tick` is that period (scaled).
        let stop = Arc::new(AtomicBool::new(false));
        let ctl_stop = Arc::clone(&stop);
        let ctl = Arc::clone(&controller);
        let ctl_shared = Arc::clone(&shared);
        let tick = config.controller_tick;
        let controller_thread = std::thread::Builder::new()
            .name("reserve-controller".to_string())
            .spawn(move || {
                while !ctl_stop.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    ctl.update(ctl_shared.tspare());
                }
            })
            .expect("failed to spawn controller thread");

        // Listener thread. The enqueue is a non-blocking `try_push`:
        // when the header queue is full the listener sheds the
        // connection with a `503` instead of stalling the accept loop
        // (which would just move the backlog into the kernel).
        let listener_stop = Arc::clone(&stop);
        let listen_shared = Arc::clone(&shared);
        let listen_header_stats = Arc::clone(&header_pool_stats);
        let limits = config.limits;
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let chaos = config.chaos;
        let listener_thread = std::thread::Builder::new()
            .name("staged-listener".to_string())
            .spawn(move || {
                let mut conn_seq: u64 = 0;
                for incoming in listener.incoming() {
                    if listener_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match incoming {
                        Ok(stream) => {
                            let seq = conn_seq;
                            conn_seq += 1;
                            match chaos.map_or(ChaosAction::Pass, |c| c.decide(seq)) {
                                ChaosAction::Pass => {}
                                ChaosAction::Kill => {
                                    listen_shared.stats.chaos_killed.increment();
                                    drop(stream);
                                    continue;
                                }
                                ChaosAction::Stall => {
                                    listen_shared.stats.chaos_stalled.increment();
                                    std::thread::sleep(chaos.expect("stall implies chaos").stall);
                                }
                            }
                            let _ = stream.set_read_timeout(read_timeout);
                            let _ = stream.set_write_timeout(write_timeout);
                            // Admission control: over-cap connections are
                            // turned away with the well-formed 503 +
                            // Retry-After, not silently reset.
                            let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
                            let stream = match listen_shared.governor.admit(peer_ip) {
                                Ok(permit) => GovernedStream::new(stream, Some(permit)),
                                Err(_) => {
                                    let mut conn = Connection::with_limits(
                                        GovernedStream::new(stream, None),
                                        limits,
                                    );
                                    let resp = overload_response(listen_shared.retry.advise());
                                    if conn.send(&resp).is_err() {
                                        listen_shared.stats.dropped_connections.increment();
                                    } else {
                                        crate::overload::drain_before_close(
                                            conn.stream_mut().tcp(),
                                        );
                                    }
                                    continue;
                                }
                            };
                            let conn = Connection::with_limits(stream, limits);
                            let mut trace = listen_shared.trace_hub.start();
                            trace.enqueued(Stage::Parse);
                            let timed = TimedConn {
                                conn,
                                arrived: Instant::now(),
                                trace,
                            };
                            match listen_shared.header_q.try_push(timed) {
                                Ok(()) => {}
                                Err(PushError::Full(timed)) => {
                                    listen_header_stats.rejected.increment();
                                    listen_shared.shed(
                                        timed.conn,
                                        Method::Get,
                                        ShedPoint::Listener,
                                        timed.trace,
                                    );
                                }
                                Err(PushError::Closed(_)) => break,
                            }
                        }
                        Err(_) => listen_shared.stats.dropped_connections.increment(),
                    }
                }
            })
            .expect("failed to spawn listener thread");

        // Legacy gauge names (`ServerHandle::gauge_names`), mapped onto
        // the registry's families by the handle's accessors.
        let mut gauge_names: Vec<String> = [
            "header", "static", "general", "lengthy", "render", "treserve", "tspare",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        if render_lengthy_q.is_some() {
            gauge_names.push("render-lengthy".to_string());
        }

        // The listener is live: accepted connections will be served.
        readiness.set_ready();

        let drain_shared = Arc::clone(&shared);
        let drain_deadline = config.drain_deadline;
        let shutdown: crate::handle::ShutdownFn = Box::new(move || {
            // Drain-aware shutdown: advertise not-ready, stop requeuing
            // keep-alive connections, stop accepting — then let every
            // already-accepted request finish before closing any stage.
            drain_shared.readiness.set_draining();
            drain_shared.draining.store(true, Ordering::Release);
            stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(addr);
            let _ = listener_thread.join();
            let _ = controller_thread.join();
            // Wait (bounded by `drain_deadline`) until every stage is
            // idle: no queued jobs and no busy workers. Closing the
            // queues upstream-first below also drains their backlogs,
            // but only this wait covers jobs *between* stages (popped
            // from one queue, not yet pushed to the next).
            let deadline = Instant::now() + drain_deadline;
            loop {
                let queued = drain_shared.header_q.len()
                    + drain_shared.static_q.len()
                    + drain_shared.general_q.len()
                    + drain_shared.lengthy_q.len()
                    + drain_shared.render_q.len()
                    + drain_shared
                        .render_lengthy_q
                        .as_ref()
                        .map_or(0, |q| q.len());
                let busy = drain_shared.header_stats.busy.value().max(0)
                    + drain_shared.static_stats.busy.value().max(0)
                    + drain_shared.general_stats.busy.value().max(0)
                    + drain_shared.lengthy_stats.busy.value().max(0)
                    + drain_shared.render_stats.busy.value().max(0)
                    + drain_shared
                        .render_lengthy_stats
                        .as_ref()
                        .map_or(0, |s| s.busy.value().max(0));
                if (queued == 0 && busy == 0) || Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            // Drain stage by stage, upstream first.
            header_pool.shutdown();
            static_pool.shutdown();
            general_pool.shutdown();
            lengthy_pool.shutdown();
            render_pool.shutdown();
            if let Some(pool) = render_lengthy_pool {
                pool.shutdown();
            }
            // Last: with every worker joined, checkpoint the database
            // so a graceful stop never replays on the next open.
            shutdown_checkpoint(&durable_db)
        });

        Ok(ServerHandle::new(
            addr,
            stats,
            tracker,
            registry,
            gauge_names,
            readiness,
            set_fault,
            breaker,
            shutdown,
        ))
    }
}

/// Keep-alive decision from the request line and headers (HTTP/1.0
/// defaults off, HTTP/1.1 defaults on).
fn keep_alive_for(line: &RequestLine, headers: &HeaderMap) -> bool {
    if line.version == "HTTP/1.0" {
        headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    } else {
        headers.keep_alive()
    }
}

/// Stage 2a: the header-parsing worker.
fn header_worker(shared: &Shared, timed: TimedConn) {
    let TimedConn {
        mut conn,
        arrived,
        mut trace,
    } = timed;
    trace.dequeued();
    // Queue-wait check: a connection that waited longer than the whole
    // request budget is answered 503 before any parsing.
    if shared.budget.is_some_and(|b| arrived.elapsed() > b) {
        shared.expire(conn, Method::Get, trace);
        return;
    }
    let line = match conn.read_request_line() {
        Ok(l) => l,
        // A clean close before any request line (a keep-alive
        // connection idling out) drops the trace: no response was owed.
        Err(HttpError::ConnectionClosed { clean: true }) => return,
        Err(e) => {
            fail_parse(shared, conn, e, trace);
            return;
        }
    };
    // The per-request clock starts *after* the request line arrives, so
    // keep-alive think time (a connection idling between requests) does
    // not count against the budget — or pollute the trace's timeline.
    trace.mark_start();
    let deadline = shared.budget.map(|b| Instant::now() + b);

    // Health and observability endpoints are answered here, ahead of
    // routing and without touching a database connection, so they stay
    // truthful during the very outages they report.
    if health::is_health_path(line.target.path())
        || health::is_observability_path(line.target.path())
    {
        let headers = match conn.read_remaining_headers() {
            Ok(h) => h,
            Err(e) => {
                fail_parse(shared, conn, e, trace);
                return;
            }
        };
        let keep_alive = keep_alive_for(&line, &headers);
        let path = line.target.path().to_string();
        if health::is_health_path(&path) {
            shared.serve_health(conn, line.method, &path, keep_alive, trace);
        } else {
            let route = line
                .target
                .query_pairs()
                .into_iter()
                .find(|(k, _)| k == "route")
                .map(|(_, v)| v);
            shared.serve_observability(
                conn,
                line.method,
                &path,
                route.as_deref(),
                keep_alive,
                trace,
            );
        }
        return;
    }

    if line.is_static() {
        // Static requests carry their unparsed headers to the static
        // pool (paper §3.2).
        let method = line.method;
        trace.stage_done();
        trace.enqueued(Stage::Static);
        if let Err(PushError::Full(job)) = shared.static_q.try_push(StaticJob {
            conn,
            line,
            deadline,
            trace,
        }) {
            shared.static_stats.rejected.increment();
            shared.shed(job.conn, method, ShedPoint::StaticStage, job.trace);
        }
        return;
    }

    // Dynamic: finish parsing here so connection-holding threads only
    // generate data.
    let headers = match conn.read_remaining_headers() {
        Ok(h) => h,
        Err(e) => {
            fail_parse(shared, conn, e, trace);
            return;
        }
    };
    let body = match headers.content_length() {
        Some(len) if len > 0 => match conn.read_body(len) {
            Ok(b) => b,
            Err(e) => {
                fail_parse(shared, conn, e, trace);
                return;
            }
        },
        _ => Vec::new(),
    };
    let request = Request::new(line, headers, body);
    let (page, cacheable) = match shared.app.route(request.path()) {
        Some((r, _)) => (Some(r.name.clone()), r.cacheable),
        None => (None, false),
    };
    // Only GETs of cache-marked routes may ever be served from a cache
    // (document or stale). The key is built in the thread's reusable
    // buffer; a document-cache hit is answered right here — no DB
    // checkout, no render, no allocation — and only a miss pays for the
    // owned key the job carries downstream.
    let mut cache_snapshot = 0u64;
    let stale_key: Option<String> = if cacheable && request.method() == Method::Get {
        enum KeyOutcome {
            Hit(Arc<Response>),
            Miss(String),
        }
        let outcome = KEY_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            // lint: hot_path — cache-hit serve: key derivation reuses
            // the per-thread buffer; a hit costs one map probe and an
            // Arc bump before the vectored write in `finish`.
            stale::write_key(
                &mut buf,
                page.as_deref().unwrap_or_default(),
                &request.params,
            );
            if let Some(dc) = &shared.doc_cache {
                match dc.lookup(&buf) {
                    Lookup::Hit(response) => return KeyOutcome::Hit(response),
                    Lookup::Miss(snapshot) => cache_snapshot = snapshot,
                }
            }
            // lint: end_hot_path
            KeyOutcome::Miss(buf.clone())
        });
        match outcome {
            KeyOutcome::Hit(response) => {
                trace.stage_done();
                shared.finish(
                    conn,
                    request.method(),
                    &response,
                    request.keep_alive(),
                    RequestKind::QuickDynamic,
                    trace,
                    page.as_deref(),
                );
                return;
            }
            KeyOutcome::Miss(key) => Some(key),
        }
    } else {
        None
    };

    // Classification and Table 1 dispatch.
    let class = match &page {
        Some(name) => shared.tracker.classify(name),
        None => RequestClass::Quick,
    };
    let kind = match class {
        RequestClass::Quick => RequestKind::QuickDynamic,
        RequestClass::Lengthy => RequestKind::LengthyDynamic,
    };
    trace.classified(class == RequestClass::Lengthy);
    let method = request.method();
    let (queue, stats, point, stage) = match shared.controller.dispatch(class, shared.tspare()) {
        crate::scheduler::DynamicPoolChoice::General => (
            &shared.general_q,
            &shared.general_stats,
            ShedPoint::General,
            Stage::General,
        ),
        crate::scheduler::DynamicPoolChoice::Lengthy => (
            &shared.lengthy_q,
            &shared.lengthy_stats,
            ShedPoint::Lengthy,
            Stage::Lengthy,
        ),
    };
    trace.stage_done();
    trace.enqueued(stage);
    let job = DynJob {
        conn,
        request,
        page,
        kind,
        deadline,
        stale_key,
        cache_snapshot,
        trace,
    };
    if let Err(PushError::Full(job)) = queue.try_push(job) {
        stats.rejected.increment();
        shared.shed(job.conn, method, point, job.trace);
    }
}

/// Answers a failed parse with the status the error maps to — `400` for
/// malformed requests, `431`/`413` for oversized headers/bodies, `408`
/// for an expired lifecycle budget — always with `Connection: close`,
/// so hostile or broken clients learn *why* instead of seeing a silent
/// drop. Errors with no response mapping (I/O failures, unclean closes)
/// are dropped as before.
fn fail_parse(shared: &Shared, mut conn: Conn, e: HttpError, trace: Trace) {
    match e.response_status() {
        Some(status) => {
            if e.is_lifecycle_timeout() {
                shared.stats.slowloris_kills.increment();
            }
            let mut resp = Response::error(status);
            resp.set_close();
            let _ = conn.send(&resp);
            shared.stats.errors.increment();
        }
        None => shared.stats.dropped_connections.increment(),
    }
    trace.finish(TraceOutcome::Dropped, None);
}

/// Stage 2b: the static-request worker (parses its own headers).
fn static_worker(shared: &Shared, job: StaticJob) {
    let StaticJob {
        mut conn,
        line,
        deadline,
        mut trace,
    } = job;
    trace.dequeued();
    if Shared::expired(deadline) {
        shared.expire(conn, line.method, trace);
        return;
    }
    let headers = match conn.read_remaining_headers() {
        Ok(h) => h,
        Err(e) => {
            fail_parse(shared, conn, e, trace);
            return;
        }
    };
    let keep_alive = keep_alive_for(&line, &headers);
    let response = shared
        .app
        .statics()
        .response_for_request(line.target.path(), &headers);
    shared.app.charge_static();
    if response.status() == StatusCode::NOT_FOUND {
        shared.stats.errors.increment();
    }
    trace.stage_done();
    shared.finish(
        conn,
        line.method,
        &response,
        keep_alive,
        RequestKind::Static,
        trace,
        Some(line.target.path()),
    );
}

/// Stage 3: the dynamic-request worker (owns a database connection
/// slot — the connection itself can die under fault injection and be
/// replaced; see [`DbSlot`]).
fn dynamic_worker(shared: &Shared, slot: &mut DbSlot, job: DynJob) {
    let DynJob {
        conn,
        request,
        page,
        kind,
        deadline,
        stale_key,
        cache_snapshot,
        mut trace,
    } = job;
    trace.dequeued();
    let keep_alive = request.keep_alive();
    let method = request.method();
    if Shared::expired(deadline) {
        shared.expire(conn, method, trace);
        return;
    }
    let Some(page) = page else {
        shared.stats.errors.increment();
        shared.finish(
            conn,
            method,
            &Response::error(StatusCode::NOT_FOUND),
            keep_alive,
            kind,
            trace,
            None,
        );
        return;
    };
    // The paper's measurement window: from request acquisition until
    // the unrendered template is queued for rendering.
    let started = Instant::now();
    let Some((route, captures)) = shared.app.route(request.path()) else {
        shared.stats.errors.increment();
        shared.finish(
            conn,
            method,
            &Response::error(StatusCode::NOT_FOUND),
            keep_alive,
            kind,
            trace,
            Some(&page),
        );
        return;
    };
    let merged;
    let request = if captures.is_empty() {
        &request
    } else {
        merged = crate::baseline::merge_captures(&request, &captures);
        &merged
    };
    // Collect the handler's read set when some cache will tag an entry
    // with it. The slot re-arms tracking across connection replacement,
    // and a lost set (starved re-checkout) just means the render is
    // cached conservatively or not at all — never served stale.
    let track = stale_key.is_some() && shared.track_reads();
    if track {
        slot.begin_read_tracking();
    }
    let outcome = run_handler_with_slot(route, request, slot, &shared.stats);
    let reads: Option<Arc<ReadSet>> = if track {
        slot.take_read_set().map(Arc::new)
    } else {
        None
    };
    match outcome {
        Ok(PageOutcome::Template { name, context }) => {
            shared.tracker.record(&page, started.elapsed());
            // The §3.3 extension: templates whose average render time
            // is lengthy go to the dedicated lengthy-render pool.
            let lengthy_render = shared.render_lengthy_q.is_some()
                && shared.render_tracker.classify(&name) == crate::scheduler::RequestClass::Lengthy;
            let (target, target_stats, stage) = if lengthy_render {
                (
                    shared.render_lengthy_q.as_ref().expect("checked above"),
                    shared
                        .render_lengthy_stats
                        .as_ref()
                        .expect("stats exist with the queue"),
                    Stage::RenderLengthy,
                )
            } else {
                (&shared.render_q, &shared.render_stats, Stage::Render)
            };
            trace.stage_done();
            trace.enqueued(stage);
            if let Err(PushError::Full(job)) = target.try_push(RenderJob {
                conn,
                keep_alive,
                method,
                name,
                page,
                context,
                kind,
                deadline,
                stale_key,
                cache_snapshot,
                reads,
                trace,
            }) {
                target_stats.rejected.increment();
                shared.shed(job.conn, method, ShedPoint::Render, job.trace);
            }
        }
        Ok(PageOutcome::Body(response)) => {
            // Backward compatibility: a pre-rendered page is sent from
            // the dynamic thread (§3.1), still excluding rendering we
            // cannot separate.
            shared.tracker.record(&page, started.elapsed());
            // Cache-marked pre-rendered pages join the stale ladder
            // (and the document cache) too — but only plain HTML 200s,
            // because a stale hit is rehydrated as `Response::html`.
            if let Some(key) = &stale_key {
                if response.status() == StatusCode::OK
                    && response.headers().get("content-type") == Some("text/html; charset=utf-8")
                {
                    shared
                        .stale
                        .put_tagged(key, response.body_shared(), reads.clone());
                    if let (Some(dc), Some(reads)) = (&shared.doc_cache, &reads) {
                        dc.publish(
                            key,
                            Arc::new(response.clone()),
                            Arc::clone(reads),
                            cache_snapshot,
                        );
                    }
                }
            }
            trace.stage_done();
            shared.finish(
                conn,
                method,
                &response,
                keep_alive,
                kind,
                trace,
                Some(&page),
            );
        }
        Err(e) if e.is_unavailable() => {
            // Transient resource failure (open breaker, dead
            // connection, starved pool). The degradation ladder:
            // serve a stale copy if one exists, 503 only without one.
            shared.tracker.record(&page, started.elapsed());
            trace.note(TraceEvent::Unavailable);
            if let Some(hit) = stale_key.as_deref().and_then(|k| shared.stale.get(k)) {
                shared.stats.degraded.increment();
                trace.note(TraceEvent::StaleServed);
                shared.finish(
                    conn,
                    method,
                    &hit.response(),
                    keep_alive,
                    kind,
                    trace,
                    Some(&page),
                );
                return;
            }
            if stale_key.is_some() {
                shared.stats.stale_misses.increment();
            }
            shared.stats.errors.increment();
            shared.finish(
                conn,
                method,
                &overload_response(shared.retry.advise()),
                false,
                kind,
                trace,
                Some(&page),
            );
        }
        Err(_) => {
            shared.tracker.record(&page, started.elapsed());
            shared.stats.errors.increment();
            shared.finish(
                conn,
                method,
                &Response::error(StatusCode::INTERNAL_SERVER_ERROR),
                keep_alive,
                kind,
                trace,
                Some(&page),
            );
        }
    }
}

/// Stage 4: the template-rendering worker.
fn render_worker(shared: &Shared, job: RenderJob) {
    let RenderJob {
        conn,
        keep_alive,
        method,
        name,
        page,
        context,
        kind,
        deadline,
        stale_key,
        cache_snapshot,
        reads,
        mut trace,
    } = job;
    trace.dequeued();
    if Shared::expired(deadline) {
        // Deadline spent in the render queue: a stale copy (sent with
        // `Connection: close` — the client has been waiting the whole
        // budget already) still beats rendering a page nobody may be
        // listening for, and beats a 503 for one that was cacheable.
        if let Some(hit) = stale_key.as_deref().and_then(|k| shared.stale.get(k)) {
            shared.stats.deadline_expired.increment();
            shared.stats.degraded.increment();
            trace.note(TraceEvent::StaleServed);
            let mut response = hit.response();
            response.set_close();
            shared.finish(conn, method, &response, false, kind, trace, Some(&page));
        } else {
            shared.expire(conn, method, trace);
        }
        return;
    }
    let render_started = Instant::now();
    // The zero-copy hot path: render into a pooled buffer, freeze it
    // into a shared body, and hand that same allocation to the stale
    // cache and the connection writer.
    let mut buf = staged_http::BufferPool::global().get();
    let response = match shared
        .app
        .templates()
        .render_into(&name, &context, &mut buf)
    {
        Ok(()) => {
            shared.app.charge_render(buf.len());
            let body = buf.freeze();
            if let Some(key) = &stale_key {
                shared.stale.put_tagged(key, body.clone(), reads.clone());
            }
            let response = Response::html(body);
            // Publish the finished page for healthy-path reuse, tagged
            // with what it read. `publish` discards it if a write to a
            // dependent table landed after this request's snapshot.
            if let (Some(dc), Some(key), Some(reads)) = (&shared.doc_cache, &stale_key, &reads) {
                dc.publish(
                    key,
                    Arc::new(response.clone()),
                    Arc::clone(reads),
                    cache_snapshot,
                );
            }
            response
        }
        Err(_) => {
            shared.stats.errors.increment();
            Response::error(StatusCode::INTERNAL_SERVER_ERROR)
        }
    };
    shared
        .render_tracker
        .record(&name, render_started.elapsed());
    trace.stage_done();
    shared.finish(
        conn,
        method,
        &response,
        keep_alive,
        kind,
        trace,
        Some(&page),
    );
}
