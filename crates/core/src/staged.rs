//! The paper's modified server: one listener, five thread pools
//! (Figure 5), database connections pinned to dynamic workers only.

use crate::app::{App, PageOutcome};
use crate::baseline::run_handler;
use crate::config::ServerConfig;
use crate::handle::{GaugeFn, ServerHandle};
use crate::scheduler::{RequestClass, ReserveController, ServiceTimeTracker};
use crate::stats::{RequestKind, ServerStats};
use staged_db::{ConnectionPool, Database, PooledConnection};
use staged_http::{
    Connection, HeaderMap, HttpError, Method, Request, RequestLine, Response, StatusCode,
};
use staged_pool::{PoolConfig, SyncQueue, WorkerPool};
use staged_templates::Context;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

type Conn = Connection<TcpStream>;

/// A request handed from the header pool to the static pool: the header
/// workers only parse the first line for static resources ("we let the
/// threads which actually serve those static requests parse their
/// headers", §3.2).
struct StaticJob {
    conn: Conn,
    line: RequestLine,
}

/// A fully parsed dynamic request, dispatched to the general or lengthy
/// pool.
struct DynJob {
    conn: Conn,
    request: Request,
    /// The page key (route name) for service-time tracking; `None` for
    /// unrouted paths (404).
    page: Option<String>,
    kind: RequestKind,
}

/// An unrendered template on its way to the render pool — the payload
/// of the paper's modified `return ("tmpl.html", data)`.
struct RenderJob {
    conn: Conn,
    keep_alive: bool,
    method: Method,
    name: String,
    context: Context,
    kind: RequestKind,
}

struct Shared {
    app: App,
    stats: Arc<ServerStats>,
    tracker: Arc<ServiceTimeTracker>,
    controller: Arc<ReserveController>,
    header_q: Arc<SyncQueue<Conn>>,
    static_q: Arc<SyncQueue<StaticJob>>,
    general_q: Arc<SyncQueue<DynJob>>,
    lengthy_q: Arc<SyncQueue<DynJob>>,
    render_q: Arc<SyncQueue<RenderJob>>,
    /// Lengthy-render queue; `None` unless `split_render` is on (the
    /// paper's §3.3 suggested extension).
    render_lengthy_q: Option<Arc<SyncQueue<RenderJob>>>,
    /// Per-template render-time tracker for the render split.
    render_tracker: Arc<ServiceTimeTracker>,
    general_size: usize,
    general_stats: Arc<staged_pool::PoolStats>,
}

impl Shared {
    /// The live `t_spare`: idle threads in the general dynamic pool.
    fn tspare(&self) -> usize {
        let busy = usize::try_from(self.general_stats.busy.value().max(0)).unwrap_or(0);
        self.general_size.saturating_sub(busy)
    }

    /// Sends a response (honouring `HEAD`) and either requeues the
    /// connection for its next request or drops it.
    fn finish(
        &self,
        mut conn: Conn,
        method: Method,
        response: &Response,
        keep_alive: bool,
        kind: RequestKind,
    ) {
        if conn.send_for_method(method, response).is_err() {
            self.stats.dropped_connections.increment();
            return;
        }
        self.stats.record_completion(kind);
        if keep_alive {
            let _ = self.header_q.push(conn);
        }
    }
}

/// The modified multi-thread-pool web server (the paper's contribution).
///
/// Request lifecycle:
///
/// 1. the **listener** accepts a connection and queues it for header
///    parsing;
/// 2. a **header-parsing** worker reads the request line; static
///    requests go to the static pool immediately, dynamic requests get
///    their remaining headers, query string, and body parsed *here* —
///    "we do not want a thread with an open database connection to
///    waste time doing anything other than generating data" (§3.2) —
///    then are classified quick/lengthy and dispatched per Table 1;
/// 3. a **dynamic** worker (each owning a database connection) runs the
///    page handler and measures data-generation time; an unrendered
///    template outcome is queued for rendering, a pre-rendered body is
///    sent directly (backward compatibility);
/// 4. a **render** worker renders the template, sets `Content-Length`
///    exactly, and transmits the response.
///
/// A 1 Hz-equivalent controller thread updates `t_reserve` from the
/// general pool's measured `t_spare` ([`ReserveController`]).
#[derive(Debug)]
pub struct StagedServer;

impl StagedServer {
    /// Binds, spawns the five pools and the controller, and starts the
    /// listener.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listen address.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`ServerConfig::validate`]).
    pub fn start(
        config: ServerConfig,
        app: App,
        db: Arc<Database>,
    ) -> io::Result<ServerHandle> {
        config.validate();
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(config.stats_bucket));
        let tracker = Arc::new(ServiceTimeTracker::new(config.lengthy_cutoff));
        let controller = Arc::new(ReserveController::with_max(
            config.min_reserve,
            config.max_reserve,
        ));
        let connections = ConnectionPool::new(db, config.db_connections);

        let header_q = Arc::new(SyncQueue::<Conn>::unbounded());
        let static_q = Arc::new(SyncQueue::<StaticJob>::unbounded());
        let general_q = Arc::new(SyncQueue::<DynJob>::unbounded());
        let lengthy_q = Arc::new(SyncQueue::<DynJob>::unbounded());
        let render_q = Arc::new(SyncQueue::<RenderJob>::unbounded());
        let render_lengthy_q = config
            .split_render
            .then(|| Arc::new(SyncQueue::<RenderJob>::unbounded()));
        let render_tracker = Arc::new(ServiceTimeTracker::new(config.render_cutoff));

        // The general pool is created first so the shared context can
        // carry its busy-stats handle (the t_spare signal).
        let general_pool_stats = Arc::new(staged_pool::PoolStats::default());
        let shared = Arc::new(Shared {
            app,
            stats: Arc::clone(&stats),
            tracker: Arc::clone(&tracker),
            controller: Arc::clone(&controller),
            header_q: Arc::clone(&header_q),
            static_q: Arc::clone(&static_q),
            general_q: Arc::clone(&general_q),
            lengthy_q: Arc::clone(&lengthy_q),
            render_q: Arc::clone(&render_q),
            render_lengthy_q: render_lengthy_q.clone(),
            render_tracker: Arc::clone(&render_tracker),
            general_size: config.general_workers,
            general_stats: Arc::clone(&general_pool_stats),
        });

        let s = Arc::clone(&shared);
        let general_pool = WorkerPool::with_parts(
            Arc::clone(&general_q),
            Arc::clone(&general_pool_stats),
            PoolConfig::new("general-dynamic", config.general_workers),
            |_| connections.get(),
            move |db_conn: &mut PooledConnection, job: DynJob| {
                dynamic_worker(&s, db_conn, job);
            },
        );

        let s = Arc::clone(&shared);
        let lengthy_pool = WorkerPool::with_queue(
            Arc::clone(&lengthy_q),
            PoolConfig::new("lengthy-dynamic", config.lengthy_workers),
            |_| connections.get(),
            move |db_conn: &mut PooledConnection, job: DynJob| {
                dynamic_worker(&s, db_conn, job);
            },
        );

        let s = Arc::clone(&shared);
        let static_pool = WorkerPool::with_queue(
            Arc::clone(&static_q),
            PoolConfig::new("static", config.static_workers),
            |_| (),
            move |_, job: StaticJob| static_worker(&s, job),
        );

        // With the render split on, a quarter of the render workers (at
        // least one) form the lengthy-render pool.
        let lengthy_render_workers = if config.split_render {
            (config.render_workers / 4).max(1)
        } else {
            0
        };
        let general_render_workers =
            (config.render_workers - lengthy_render_workers).max(1);
        let s = Arc::clone(&shared);
        let render_pool = WorkerPool::with_queue(
            Arc::clone(&render_q),
            PoolConfig::new("render", general_render_workers),
            |_| (),
            move |_, job: RenderJob| render_worker(&s, job),
        );
        let render_lengthy_pool = render_lengthy_q.as_ref().map(|q| {
            let s = Arc::clone(&shared);
            WorkerPool::with_queue(
                Arc::clone(q),
                PoolConfig::new("render-lengthy", lengthy_render_workers),
                |_| (),
                move |_, job: RenderJob| render_worker(&s, job),
            )
        });

        let s = Arc::clone(&shared);
        let header_pool = WorkerPool::with_queue(
            Arc::clone(&header_q),
            PoolConfig::new("header-parsing", config.header_workers),
            |_| (),
            move |_, conn: Conn| header_worker(&s, conn),
        );

        // Controller thread: the paper checks and modifies t_reserve
        // once per second; `controller_tick` is that period (scaled).
        let stop = Arc::new(AtomicBool::new(false));
        let ctl_stop = Arc::clone(&stop);
        let ctl = Arc::clone(&controller);
        let ctl_shared = Arc::clone(&shared);
        let tick = config.controller_tick;
        let controller_thread = std::thread::Builder::new()
            .name("reserve-controller".to_string())
            .spawn(move || {
                while !ctl_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    ctl.update(ctl_shared.tspare());
                }
            })
            .expect("failed to spawn controller thread");

        // Listener thread.
        let listener_stop = Arc::clone(&stop);
        let listen_q = Arc::clone(&header_q);
        let listen_stats = Arc::clone(&stats);
        let limits = config.limits;
        let read_timeout = config.read_timeout;
        let listener_thread = std::thread::Builder::new()
            .name("staged-listener".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if listener_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match incoming {
                        Ok(stream) => {
                            let _ = stream.set_read_timeout(read_timeout);
                            let conn = Connection::with_limits(stream, limits);
                            if listen_q.push(conn).is_err() {
                                break;
                            }
                        }
                        Err(_) => listen_stats.dropped_connections.increment(),
                    }
                }
            })
            .expect("failed to spawn listener thread");

        // Queue gauges for the Figure 7/8 traces, plus scheduler
        // visibility for the examples.
        let mut gauges: Vec<(String, GaugeFn)> = vec![
            gauge("header", Arc::clone(&header_q)),
            gauge("static", Arc::clone(&static_q)),
            gauge("general", Arc::clone(&general_q)),
            gauge("lengthy", Arc::clone(&lengthy_q)),
            gauge("render", Arc::clone(&render_q)),
            ("treserve".to_string(), {
                let c = Arc::clone(&controller);
                Arc::new(move || c.reserve())
            }),
            ("tspare".to_string(), {
                let s = Arc::clone(&shared);
                Arc::new(move || s.tspare())
            }),
        ];
        if let Some(q) = &render_lengthy_q {
            gauges.push(gauge("render-lengthy", Arc::clone(q)));
        }

        let shutdown = Box::new(move || {
            stop.store(true, Ordering::Relaxed);
            let _ = TcpStream::connect(addr);
            let _ = listener_thread.join();
            let _ = controller_thread.join();
            // Drain stage by stage, upstream first.
            header_pool.shutdown();
            static_pool.shutdown();
            general_pool.shutdown();
            lengthy_pool.shutdown();
            render_pool.shutdown();
            if let Some(pool) = render_lengthy_pool {
                pool.shutdown();
            }
        });

        Ok(ServerHandle::new(addr, stats, tracker, gauges, shutdown))
    }
}

fn gauge<T: Send + 'static>(name: &str, q: Arc<SyncQueue<T>>) -> (String, GaugeFn) {
    (name.to_string(), Arc::new(move || q.len()))
}

/// Keep-alive decision from the request line and headers (HTTP/1.0
/// defaults off, HTTP/1.1 defaults on).
fn keep_alive_for(line: &RequestLine, headers: &HeaderMap) -> bool {
    if line.version == "HTTP/1.0" {
        headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    } else {
        headers.keep_alive()
    }
}

/// Stage 2a: the header-parsing worker.
fn header_worker(shared: &Shared, mut conn: Conn) {
    let line = match conn.read_request_line() {
        Ok(l) => l,
        Err(HttpError::ConnectionClosed { clean: true }) => return,
        Err(e) => {
            if e.wants_bad_request() {
                let mut resp = Response::error(StatusCode::BAD_REQUEST);
                resp.set_close();
                let _ = conn.send(&resp);
                shared.stats.errors.increment();
            } else {
                shared.stats.dropped_connections.increment();
            }
            return;
        }
    };

    if line.is_static() {
        // Static requests carry their unparsed headers to the static
        // pool (paper §3.2).
        let _ = shared.static_q.push(StaticJob { conn, line });
        return;
    }

    // Dynamic: finish parsing here so connection-holding threads only
    // generate data.
    let headers = match conn.read_remaining_headers() {
        Ok(h) => h,
        Err(e) => {
            fail_parse(shared, conn, e);
            return;
        }
    };
    let body = match headers.content_length() {
        Some(len) if len > 0 => match conn.read_body(len) {
            Ok(b) => b,
            Err(e) => {
                fail_parse(shared, conn, e);
                return;
            }
        },
        _ => Vec::new(),
    };
    let request = Request::new(line, headers, body);
    let page = shared
        .app
        .route(request.path())
        .map(|(r, _)| r.name.clone());

    // Classification and Table 1 dispatch.
    let class = match &page {
        Some(name) => shared.tracker.classify(name),
        None => RequestClass::Quick,
    };
    let kind = match class {
        RequestClass::Quick => RequestKind::QuickDynamic,
        RequestClass::Lengthy => RequestKind::LengthyDynamic,
    };
    let job = DynJob {
        conn,
        request,
        page,
        kind,
    };
    match shared.controller.dispatch(class, shared.tspare()) {
        crate::scheduler::DynamicPoolChoice::General => {
            let _ = shared.general_q.push(job);
        }
        crate::scheduler::DynamicPoolChoice::Lengthy => {
            let _ = shared.lengthy_q.push(job);
        }
    }
}

fn fail_parse(shared: &Shared, mut conn: Conn, e: HttpError) {
    if e.wants_bad_request() {
        let mut resp = Response::error(StatusCode::BAD_REQUEST);
        resp.set_close();
        let _ = conn.send(&resp);
        shared.stats.errors.increment();
    } else {
        shared.stats.dropped_connections.increment();
    }
}

/// Stage 2b: the static-request worker (parses its own headers).
fn static_worker(shared: &Shared, job: StaticJob) {
    let StaticJob { mut conn, line } = job;
    let headers = match conn.read_remaining_headers() {
        Ok(h) => h,
        Err(e) => {
            fail_parse(shared, conn, e);
            return;
        }
    };
    let keep_alive = keep_alive_for(&line, &headers);
    let response = shared.app.statics().response_for(line.target.path());
    shared.app.charge_static();
    if response.status() == StatusCode::NOT_FOUND {
        shared.stats.errors.increment();
    }
    shared.finish(conn, line.method, &response, keep_alive, RequestKind::Static);
}

/// Stage 3: the dynamic-request worker (owns a database connection).
fn dynamic_worker(shared: &Shared, db_conn: &PooledConnection, job: DynJob) {
    let DynJob {
        conn,
        request,
        page,
        kind,
    } = job;
    let keep_alive = request.keep_alive();
    let method = request.method();
    let Some(page) = page else {
        shared.stats.errors.increment();
        shared.finish(
            conn,
            method,
            &Response::error(StatusCode::NOT_FOUND),
            keep_alive,
            kind,
        );
        return;
    };
    // The paper's measurement window: from request acquisition until
    // the unrendered template is queued for rendering.
    let started = Instant::now();
    let Some((route, captures)) = shared.app.route(request.path()) else {
        shared.stats.errors.increment();
        shared.finish(
            conn,
            method,
            &Response::error(StatusCode::NOT_FOUND),
            keep_alive,
            kind,
        );
        return;
    };
    let merged;
    let request = if captures.is_empty() {
        &request
    } else {
        merged = crate::baseline::merge_captures(&request, &captures);
        &merged
    };
    match run_handler(route, request, db_conn, &shared.stats) {
        Ok(PageOutcome::Template { name, context }) => {
            shared.tracker.record(&page, started.elapsed());
            // The §3.3 extension: templates whose average render time
            // is lengthy go to the dedicated lengthy-render pool.
            let target = match &shared.render_lengthy_q {
                Some(q)
                    if shared.render_tracker.classify(&name)
                        == crate::scheduler::RequestClass::Lengthy =>
                {
                    q
                }
                _ => &shared.render_q,
            };
            let _ = target.push(RenderJob {
                conn,
                keep_alive,
                method,
                name,
                context,
                kind,
            });
        }
        Ok(PageOutcome::Body(response)) => {
            // Backward compatibility: a pre-rendered page is sent from
            // the dynamic thread (§3.1), still excluding rendering we
            // cannot separate.
            shared.tracker.record(&page, started.elapsed());
            shared.finish(conn, method, &response, keep_alive, kind);
        }
        Err(_) => {
            shared.tracker.record(&page, started.elapsed());
            shared.stats.errors.increment();
            shared.finish(
                conn,
                method,
                &Response::error(StatusCode::INTERNAL_SERVER_ERROR),
                keep_alive,
                kind,
            );
        }
    }
}

/// Stage 4: the template-rendering worker.
fn render_worker(shared: &Shared, job: RenderJob) {
    let RenderJob {
        conn,
        keep_alive,
        method,
        name,
        context,
        kind,
    } = job;
    let render_started = Instant::now();
    let response = match shared.app.templates().render(&name, &context) {
        Ok(html) => {
            shared.app.charge_render(html.len());
            Response::html(html)
        }
        Err(_) => {
            shared.stats.errors.increment();
            Response::error(StatusCode::INTERNAL_SERVER_ERROR)
        }
    };
    shared.render_tracker.record(&name, render_started.elapsed());
    shared.finish(conn, method, &response, keep_alive, kind);
}
