//! The connection governor: admission control shared by both servers.
//!
//! The five-pool scheduler protects the *precious* resources (database
//! connections, pool threads) from well-behaved traffic, but nothing in
//! the paper stops one hostile peer from simply holding sockets: accept
//! is free, and a keep-alive connection parks in the header queue
//! forever. The governor closes that gap at the accept boundary:
//!
//! * a **global cap** on concurrently open connections;
//! * a **per-peer-IP cap**, so one client cannot monopolize the global
//!   budget;
//! * a **keep-alive request cap** per connection, bounding how long any
//!   single socket can squat on the pipeline;
//! * **idle harvesting**: once open connections reach a watermark
//!   fraction of the global cap, finished keep-alive connections are
//!   closed instead of requeued, freeing slots for new peers.
//!
//! Rejected connections get the same well-formed `503` + `Retry-After`
//! the shed path sends — a turned-away client is told to come back, not
//! silently reset. Every decision is surfaced through the metrics
//! registry (`connections_open`, `connections_rejected_total{reason}`,
//! `keepalive_harvested_total`, `keepalive_capped_total`) and the
//! `/healthz` payload.
//!
//! All caps default to **off** (`0`), preserving pre-governor behavior;
//! the hostile-traffic suite and production-shaped configs opt in.

use staged_metrics::{Counter, Registry};
use staged_sync::atomic::{AtomicUsize, Ordering};
use staged_sync::{OrderedMutex, Rank};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, IoSlice, Read, Write};
use std::net::{IpAddr, TcpStream};
use std::sync::Arc;

/// Rank of the governor's per-IP count map (DESIGN.md §12): between the
/// overload sample window (110) and the stale-cache entries (120).
const PER_IP_RANK: Rank = Rank::new(115);

/// Count-zero per-IP entries are retained (steady-state admits are then
/// allocation-free) until the map grows past this many peers, at which
/// point dead entries are swept.
const PER_IP_SWEEP_LEN: usize = 4096;

/// Connection-admission caps. Every cap defaults to `0` = disabled, so
/// an unconfigured governor changes nothing.
///
/// # Examples
///
/// ```
/// use staged_core::GovernorConfig;
///
/// let g = GovernorConfig::default();
/// assert_eq!(g.max_connections, 0); // off by default
/// g.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Maximum concurrently open connections across all peers; the
    /// listener turns excess connections away with `503`. `0` disables.
    pub max_connections: usize,
    /// Maximum concurrently open connections per peer IP. `0` disables.
    pub per_ip_max_connections: usize,
    /// Maximum requests served over one keep-alive connection before the
    /// server closes it (the client may reconnect and re-enter admission
    /// control). `0` disables.
    pub keepalive_max_requests: u32,
    /// Fraction of `max_connections` above which finished keep-alive
    /// connections are harvested (closed instead of requeued) to free
    /// slots for new peers. Only meaningful with a global cap.
    pub harvest_watermark: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            max_connections: 0,
            per_ip_max_connections: 0,
            keepalive_max_requests: 0,
            harvest_watermark: 0.9,
        }
    }
}

impl GovernorConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `harvest_watermark` is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.harvest_watermark > 0.0 && self.harvest_watermark <= 1.0,
            "harvest_watermark must be in (0, 1]"
        );
    }
}

/// Why an accepted connection was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Turnaway {
    /// The global connection cap is exhausted.
    GlobalCap,
    /// The peer's IP is at its per-IP cap.
    PerIpCap,
}

struct Inner {
    cfg: GovernorConfig,
    /// `open >= harvest_threshold` ⇒ idle keep-alives are harvested.
    harvest_threshold: usize,
    open: AtomicUsize,
    rejected_global: Counter,
    rejected_per_ip: Counter,
    harvested: Counter,
    keepalive_capped: Counter,
    per_ip: OrderedMutex<HashMap<IpAddr, usize>>,
}

/// Shared admission-control state; cheap to clone (one `Arc`).
#[derive(Clone)]
pub(crate) struct ConnectionGovernor {
    inner: Arc<Inner>,
}

impl ConnectionGovernor {
    pub(crate) fn new(cfg: GovernorConfig) -> Self {
        cfg.validate();
        let harvest_threshold = if cfg.max_connections == 0 {
            usize::MAX
        } else {
            (((cfg.max_connections as f64) * cfg.harvest_watermark).ceil() as usize).max(1)
        };
        ConnectionGovernor {
            inner: Arc::new(Inner {
                cfg,
                harvest_threshold,
                open: AtomicUsize::new(0),
                rejected_global: Counter::new(),
                rejected_per_ip: Counter::new(),
                harvested: Counter::new(),
                keepalive_capped: Counter::new(),
                per_ip: OrderedMutex::new(PER_IP_RANK, "core.governor.per_ip", HashMap::new()),
            }),
        }
    }

    /// Admits or rejects one accepted connection. `None` for the peer IP
    /// (a failed `peer_addr()`) still counts against the global cap but
    /// bypasses the per-IP cap.
    ///
    /// The returned permit releases both counts on drop, wherever the
    /// connection ends its life.
    // lint: hot_path — runs in the accept loop: two atomics, plus one
    // per-IP map update whose entries are retained at count zero, so
    // steady-state admits never allocate.
    pub(crate) fn admit(&self, ip: Option<IpAddr>) -> Result<ConnPermit, Turnaway> {
        let inner = &self.inner;
        let open = inner.open.fetch_add(1, Ordering::AcqRel) + 1;
        if inner.cfg.max_connections > 0 && open > inner.cfg.max_connections {
            inner.open.fetch_sub(1, Ordering::AcqRel);
            inner.rejected_global.increment();
            return Err(Turnaway::GlobalCap);
        }
        let mut tracked = None;
        if inner.cfg.per_ip_max_connections > 0 {
            if let Some(ip) = ip {
                let mut map = inner.per_ip.lock();
                let count = map.entry(ip).or_insert(0);
                if *count >= inner.cfg.per_ip_max_connections {
                    drop(map);
                    inner.open.fetch_sub(1, Ordering::AcqRel);
                    inner.rejected_per_ip.increment();
                    return Err(Turnaway::PerIpCap);
                }
                *count += 1;
                tracked = Some(ip);
            }
        }
        Ok(ConnPermit {
            inner: Arc::clone(&self.inner),
            ip: tracked,
        })
    }

    /// `true` once a keep-alive connection has served its request quota;
    /// the caller closes it instead of requeuing. Counts the close.
    pub(crate) fn keepalive_exhausted(&self, served: u32) -> bool {
        let cap = self.inner.cfg.keepalive_max_requests;
        if cap > 0 && served >= cap {
            self.inner.keepalive_capped.increment();
            return true;
        }
        false
    }

    /// `true` when open connections have reached the harvest watermark;
    /// the caller closes the finished keep-alive connection to free its
    /// slot for a new peer. Counts the harvest.
    pub(crate) fn harvest_idle(&self) -> bool {
        if self.inner.open.load(Ordering::Acquire) >= self.inner.harvest_threshold {
            self.inner.harvested.increment();
            return true;
        }
        false
    }
    // lint: end_hot_path

    /// Currently open (admitted, not yet dropped) connections.
    pub(crate) fn open(&self) -> usize {
        self.inner.open.load(Ordering::Acquire)
    }

    /// Registers the governor's metric families. Both servers call this
    /// once at start, so `/metrics` and `/healthz` always carry the
    /// admission picture.
    pub(crate) fn register_into(&self, registry: &Registry) {
        let i = Arc::clone(&self.inner);
        registry.gauge_fn("connections_open", &[], move || {
            i.open.load(Ordering::Acquire) as f64
        });
        let i = Arc::clone(&self.inner);
        registry.counter_fn(
            "connections_rejected_total",
            &[("reason", "global-cap")],
            move || i.rejected_global.value(),
        );
        let i = Arc::clone(&self.inner);
        registry.counter_fn(
            "connections_rejected_total",
            &[("reason", "per-ip-cap")],
            move || i.rejected_per_ip.value(),
        );
        let i = Arc::clone(&self.inner);
        registry.counter_fn("keepalive_harvested_total", &[], move || {
            i.harvested.value()
        });
        let i = Arc::clone(&self.inner);
        registry.counter_fn("keepalive_capped_total", &[], move || {
            i.keepalive_capped.value()
        });
    }
}

impl fmt::Debug for ConnectionGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnectionGovernor")
            .field("cfg", &self.inner.cfg)
            .field("open", &self.open())
            .finish_non_exhaustive()
    }
}

/// An admitted connection's slot. Dropping the permit — wherever the
/// connection's life ends: a clean close, a shed, a worker panic —
/// releases the global and per-IP counts.
pub(crate) struct ConnPermit {
    inner: Arc<Inner>,
    ip: Option<IpAddr>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.inner.open.fetch_sub(1, Ordering::AcqRel);
        if let Some(ip) = self.ip {
            let mut map = self.inner.per_ip.lock();
            staged_sync::mutant!("governor_leak_ip_slot" => {
                // broken: the peer's slot is never released, so a
                // well-behaved reconnecting client eventually pins
                // itself out at the per-IP cap
            } else {
                if let Some(count) = map.get_mut(&ip) {
                    *count = count.saturating_sub(1);
                }
            });
            // Retain count-zero entries (steady-state is alloc-free);
            // sweep only if the peer set grows unreasonably large.
            if map.len() > PER_IP_SWEEP_LEN {
                map.retain(|_, c| *c > 0);
            }
        }
    }
}

impl fmt::Debug for ConnPermit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnPermit").field("ip", &self.ip).finish()
    }
}

/// A `TcpStream` carrying its admission permit and served-request count,
/// so the slot is released exactly when the connection is dropped — no
/// matter which stage, queue, or error path drops it — and the
/// keep-alive cap survives the connection's trips through the pipeline.
pub(crate) struct GovernedStream {
    stream: TcpStream,
    /// `None` for turn-away responses written outside admission.
    permit: Option<ConnPermit>,
    served: u32,
}

impl GovernedStream {
    pub(crate) fn new(stream: TcpStream, permit: Option<ConnPermit>) -> Self {
        GovernedStream {
            stream,
            permit,
            served: 0,
        }
    }

    /// The underlying socket, for socket options and the bounded
    /// pre-close drain.
    pub(crate) fn tcp(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Bumps and returns the served-request count (called once per
    /// completed response on the keep-alive path).
    pub(crate) fn count_served(&mut self) -> u32 {
        self.served += 1;
        self.served
    }
}

impl fmt::Debug for GovernedStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GovernedStream")
            .field("stream", &self.stream)
            .field("served", &self.served)
            .field("governed", &self.permit.is_some())
            .finish()
    }
}

impl Read for GovernedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for GovernedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    // Forwarded so the zero-copy vectored send path still leaves in one
    // syscall (the default impl would degrade to the first slice only).
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        self.stream.write_vectored(bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Option<IpAddr> {
        Some(IpAddr::from([127, 0, 0, last]))
    }

    #[test]
    fn disabled_governor_admits_everything() {
        let g = ConnectionGovernor::new(GovernorConfig::default());
        let permits: Vec<_> = (0..1000)
            .map(|i| g.admit(ip((i % 3) as u8)).expect("no caps configured"))
            .collect();
        assert_eq!(g.open(), 1000);
        assert!(!g.harvest_idle());
        assert!(!g.keepalive_exhausted(u32::MAX));
        drop(permits);
        assert_eq!(g.open(), 0);
    }

    #[test]
    fn global_cap_rejects_and_slot_frees_on_drop() {
        let g = ConnectionGovernor::new(GovernorConfig {
            max_connections: 2,
            ..GovernorConfig::default()
        });
        let a = g.admit(ip(1)).unwrap();
        let _b = g.admit(ip(1)).unwrap();
        assert_eq!(g.admit(ip(2)).unwrap_err(), Turnaway::GlobalCap);
        drop(a);
        assert!(g.admit(ip(2)).is_ok(), "closing a connection frees a slot");
    }

    #[test]
    fn per_ip_cap_is_per_peer() {
        let g = ConnectionGovernor::new(GovernorConfig {
            per_ip_max_connections: 2,
            ..GovernorConfig::default()
        });
        let _a = g.admit(ip(1)).unwrap();
        let b = g.admit(ip(1)).unwrap();
        assert_eq!(g.admit(ip(1)).unwrap_err(), Turnaway::PerIpCap);
        // A different peer is unaffected by the hog.
        let _c = g.admit(ip(2)).unwrap();
        // Closing one of the hog's connections frees its slot.
        drop(b);
        assert!(g.admit(ip(1)).is_ok());
    }

    #[test]
    fn unknown_peer_bypasses_per_ip_cap_only() {
        let g = ConnectionGovernor::new(GovernorConfig {
            max_connections: 1,
            per_ip_max_connections: 1,
            ..GovernorConfig::default()
        });
        let _a = g.admit(None).unwrap();
        assert_eq!(g.admit(None).unwrap_err(), Turnaway::GlobalCap);
    }

    #[test]
    fn keepalive_cap_and_harvest_watermark() {
        let g = ConnectionGovernor::new(GovernorConfig {
            max_connections: 10,
            keepalive_max_requests: 3,
            harvest_watermark: 0.5,
            ..GovernorConfig::default()
        });
        assert!(!g.keepalive_exhausted(2));
        assert!(g.keepalive_exhausted(3));
        let below: Vec<_> = (0..4).map(|_| g.admit(None).unwrap()).collect();
        assert!(!g.harvest_idle(), "below the watermark");
        let _at = g.admit(None).unwrap();
        assert!(g.harvest_idle(), "at the watermark (5 of 10 at 0.5)");
        drop(below);
        assert!(!g.harvest_idle());
    }

    #[test]
    fn rejections_and_harvests_are_counted() {
        let g = ConnectionGovernor::new(GovernorConfig {
            max_connections: 1,
            per_ip_max_connections: 1,
            harvest_watermark: 0.5,
            ..GovernorConfig::default()
        });
        let registry = Registry::new();
        g.register_into(&registry);
        let _held = g.admit(ip(1)).unwrap();
        let _ = g.admit(ip(1)); // global cap hit (checked before per-IP)
        let _ = g.admit(ip(2));
        assert!(g.harvest_idle());
        assert!(!g.keepalive_exhausted(0));
        assert_eq!(registry.value("connections_open", &[]), Some(1.0));
        let rejected: f64 = registry
            .samples("connections_rejected_total")
            .iter()
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(rejected, 2.0);
        assert_eq!(registry.value("keepalive_harvested_total", &[]), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "harvest_watermark")]
    fn zero_watermark_rejected() {
        GovernorConfig {
            harvest_watermark: 0.0,
            ..GovernorConfig::default()
        }
        .validate();
    }
}
