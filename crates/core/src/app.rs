//! The application contract shared by both servers.

use crate::error::AppError;
use staged_db::PooledConnection;
use staged_http::{Request, Response, RouteParams, Router, StaticFiles};
use staged_templates::{Context, TemplateStore};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// What a dynamic page handler returns.
///
/// The paper's entire template modification is the return statement
/// (§3.1): instead of `return get_template("tmpl.html").render(data)`
/// a handler returns `return ("tmpl.html", data)`. `PageOutcome`
/// encodes both forms:
///
/// * [`PageOutcome::Template`] is the modified form — the *unrendered*
///   template name plus the rendering data. The staged server ships it
///   to the template-rendering pool; the baseline renders it inline.
/// * [`PageOutcome::Body`] is a pre-rendered response — the backward
///   compatibility path. "Even if a function returns an already-rendered
///   template by mistake, the modified web server can still handle this
///   properly" (§3.1): the dynamic thread sends it directly.
#[derive(Debug, Clone)]
pub enum PageOutcome {
    /// A fully built response; sent by the dynamic-request thread.
    Body(Response),
    /// An unrendered template plus its data; rendered by the render
    /// pool (staged server) or inline (baseline).
    Template {
        /// Template name in the application's [`TemplateStore`].
        name: String,
        /// The data to render with.
        context: Context,
    },
}

impl PageOutcome {
    /// Convenience constructor for the modified return form.
    pub fn template(name: impl Into<String>, context: Context) -> Self {
        PageOutcome::Template {
            name: name.into(),
            context,
        }
    }
}

/// A dynamic page handler.
///
/// Handlers receive the parsed request and the database connection owned
/// by the worker thread executing them — the analogue of CherryPy
/// handlers calling `getconn()` for their thread's connection.
pub type Handler =
    Arc<dyn Fn(&Request, &PooledConnection) -> Result<PageOutcome, AppError> + Send + Sync>;

/// A registered dynamic route: its page name and handler.
pub struct Route {
    /// Stable page key used for per-page service-time tracking (the
    /// paper tracks "the average time spent in generating data for each
    /// page").
    pub name: String,
    /// The page handler ([`PageOutcome`]-producing function).
    pub handler: Handler,
    /// Whether successful renders of this page may be retained in (and
    /// served from) the staged server's stale cache when fresh
    /// generation is unavailable. Off by default: only read-only pages
    /// should opt in (serving a stale order-confirmation would lie).
    pub cacheable: bool,
}

/// A web application: dynamic routes, templates, and static files.
///
/// The same `App` runs unmodified on both servers, so experiments vary
/// only the request-processing model.
#[derive(Clone)]
pub struct App {
    inner: Arc<AppInner>,
}

struct AppInner {
    routes: HashMap<String, Route>,
    patterns: Router<Route>,
    templates: Arc<TemplateStore>,
    statics: StaticFiles,
    render_weight_per_kb: Duration,
    static_weight: Duration,
}

impl fmt::Debug for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.inner.routes.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("App")
            .field("routes", &names)
            .field("templates", &self.inner.templates.len())
            .finish()
    }
}

impl App {
    /// Starts building an application.
    pub fn builder() -> AppBuilder {
        AppBuilder {
            routes: HashMap::new(),
            patterns: Router::new(),
            templates: None,
            statics: StaticFiles::in_memory(),
            render_weight_per_kb: Duration::ZERO,
            static_weight: Duration::ZERO,
        }
    }

    /// Blocks for the configured per-kilobyte render weight — the
    /// emulation of the paper's CPython/Django rendering speed (see
    /// `AppBuilder::render_weight_per_kb`). Whichever thread renders
    /// (a baseline worker, or the staged server's render pool) pays it.
    pub fn charge_render(&self, rendered_bytes: usize) {
        let w = self.inner.render_weight_per_kb;
        if !w.is_zero() {
            std::thread::sleep(w.mul_f64(rendered_bytes as f64 / 1024.0));
        }
    }

    /// Blocks for the configured static-service weight (the emulation
    /// of CherryPy's per-request Python overhead on static files).
    pub fn charge_static(&self) {
        let w = self.inner.static_weight;
        if !w.is_zero() {
            std::thread::sleep(w);
        }
    }

    /// Resolves a path: exact routes first, then patterns (most
    /// specific wins). Pattern captures are returned so the server can
    /// merge them into the request's parameters. Public so tests and
    /// tools can invoke a page handler directly, outside a server.
    pub fn route(&self, path: &str) -> Option<(&Route, RouteParams)> {
        if let Some(route) = self.inner.routes.get(path) {
            return Some((route, RouteParams::default()));
        }
        self.inner.patterns.route(path)
    }

    /// The application's template store.
    pub fn templates(&self) -> &Arc<TemplateStore> {
        &self.inner.templates
    }

    /// The application's static file store.
    pub fn statics(&self) -> &StaticFiles {
        &self.inner.statics
    }

    /// Registered dynamic route paths, sorted (exact routes only;
    /// pattern routes are counted by [`App::pattern_count`]).
    pub fn route_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.inner.routes.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Number of registered pattern routes.
    pub fn pattern_count(&self) -> usize {
        self.inner.patterns.len()
    }
}

/// Builder for [`App`].
///
/// # Examples
///
/// ```
/// use staged_core::{App, PageOutcome};
/// use staged_http::Response;
///
/// let app = App::builder()
///     .route("/ping", "ping", |_req, _db| {
///         Ok(PageOutcome::Body(Response::text("pong")))
///     })
///     .build();
/// assert_eq!(app.route_paths(), vec!["/ping"]);
/// ```
pub struct AppBuilder {
    routes: HashMap<String, Route>,
    patterns: Router<Route>,
    templates: Option<Arc<TemplateStore>>,
    statics: StaticFiles,
    render_weight_per_kb: Duration,
    static_weight: Duration,
}

impl fmt::Debug for AppBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppBuilder")
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl AppBuilder {
    /// Registers a dynamic route. `name` is the page key the scheduler
    /// tracks service times under (one per page type, like the paper's
    /// 14 TPC-W pages).
    pub fn route<F>(mut self, path: impl Into<String>, name: impl Into<String>, handler: F) -> Self
    where
        F: Fn(&Request, &PooledConnection) -> Result<PageOutcome, AppError> + Send + Sync + 'static,
    {
        self.routes.insert(
            path.into(),
            Route {
                name: name.into(),
                handler: Arc::new(handler),
                cacheable: false,
            },
        );
        self
    }

    /// Marks an already-registered exact route as **stale-cacheable**:
    /// the staged server may retain its successful renders and serve
    /// them (with `Warning: 110` / `Age` headers) while the database is
    /// unavailable. Only mark read-only pages — a stale copy of a page
    /// that confirms a mutation would misreport what happened.
    ///
    /// # Panics
    ///
    /// Panics if no exact route is registered at `path` (a programming
    /// error caught at startup).
    pub fn stale_cacheable(mut self, path: &str) -> Self {
        self.routes
            .get_mut(path)
            .unwrap_or_else(|| panic!("stale_cacheable: no exact route at {path:?}"))
            .cacheable = true;
        self
    }

    /// Registers a pattern route (`/item/:id`, trailing `*rest`
    /// wildcards). Captures are merged into the request's query
    /// parameters before the handler runs, so `req.param("id")` works
    /// for both sources. Exact routes always win over patterns.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is malformed (a programming error caught
    /// at startup).
    pub fn route_pattern<F>(mut self, pattern: &str, name: impl Into<String>, handler: F) -> Self
    where
        F: Fn(&Request, &PooledConnection) -> Result<PageOutcome, AppError> + Send + Sync + 'static,
    {
        self.patterns
            .add(
                pattern,
                Route {
                    name: name.into(),
                    handler: Arc::new(handler),
                    cacheable: false,
                },
            )
            .unwrap_or_else(|e| panic!("invalid route pattern {pattern:?}: {e}"));
        self
    }

    /// Sets the template store handlers name templates from.
    pub fn templates(mut self, store: Arc<TemplateStore>) -> Self {
        self.templates = Some(store);
        self
    }

    /// Sets the static file store.
    pub fn static_files(mut self, statics: StaticFiles) -> Self {
        self.statics = statics;
        self
    }

    /// Emulates a slower template engine: rendering a page blocks the
    /// rendering thread for this duration per kilobyte of output. The
    /// paper's stack rendered Django templates under the CPython
    /// interpreter, where rendering cost is comparable to the database
    /// time of quick pages — that ratio is what makes moving rendering
    /// off connection-holding threads profitable. Zero (the default)
    /// means only the real Rust rendering cost is paid.
    pub fn render_weight_per_kb(mut self, weight: Duration) -> Self {
        self.render_weight_per_kb = weight;
        self
    }

    /// Emulates interpreter overhead on static file service: each
    /// static response blocks its serving thread this long. Zero (the
    /// default) pays only real cost.
    pub fn static_weight(mut self, weight: Duration) -> Self {
        self.static_weight = weight;
        self
    }

    /// Finishes the application.
    pub fn build(self) -> App {
        App {
            inner: Arc::new(AppInner {
                routes: self.routes,
                patterns: self.patterns,
                templates: self
                    .templates
                    .unwrap_or_else(|| Arc::new(TemplateStore::new())),
                statics: self.statics,
                render_weight_per_kb: self.render_weight_per_kb,
                static_weight: self.static_weight,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_http::StatusCode;

    #[test]
    fn builder_registers_routes_and_stores() {
        let templates = Arc::new(TemplateStore::new());
        templates.insert("a.html", "x").unwrap();
        let mut statics = StaticFiles::in_memory();
        statics.insert("/s.css", b"body{}".to_vec());
        let app = App::builder()
            .templates(Arc::clone(&templates))
            .static_files(statics)
            .route("/a", "page_a", |_r, _c| {
                Ok(PageOutcome::template("a.html", Context::new()))
            })
            .route("/b", "page_b", |_r, _c| {
                Ok(PageOutcome::Body(Response::text("b")))
            })
            .build();
        assert_eq!(app.route_paths(), vec!["/a", "/b"]);
        assert!(app.route("/a").is_some());
        assert!(app.route("/zzz").is_none());
        assert_eq!(app.route("/a").unwrap().0.name, "page_a");
        assert_eq!(app.templates().len(), 1);
        assert!(app.statics().lookup("/s.css").is_some());
    }

    #[test]
    fn outcome_constructors() {
        let o = PageOutcome::template("t.html", Context::new());
        match o {
            PageOutcome::Template { name, .. } => assert_eq!(name, "t.html"),
            o => panic!("unexpected {o:?}"),
        }
        let o = PageOutcome::Body(Response::error(StatusCode::NOT_FOUND));
        match o {
            PageOutcome::Body(r) => assert_eq!(r.status(), StatusCode::NOT_FOUND),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn stale_cacheable_flags_exact_routes() {
        let app = App::builder()
            .route("/ro", "ro", |_r, _c| {
                Ok(PageOutcome::template("t.html", Context::new()))
            })
            .route("/rw", "rw", |_r, _c| {
                Ok(PageOutcome::template("t.html", Context::new()))
            })
            .stale_cacheable("/ro")
            .build();
        assert!(app.route("/ro").unwrap().0.cacheable);
        assert!(!app.route("/rw").unwrap().0.cacheable);
    }

    #[test]
    #[should_panic(expected = "no exact route")]
    fn stale_cacheable_requires_registered_route() {
        let _ = App::builder().stale_cacheable("/missing");
    }

    #[test]
    fn debug_lists_routes() {
        let app = App::builder()
            .route("/x", "x", |_r, _c| {
                Ok(PageOutcome::Body(Response::text("")))
            })
            .build();
        assert!(format!("{app:?}").contains("/x"));
    }
}
