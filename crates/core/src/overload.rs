//! Overload-control and fault-injection machinery shared by both
//! servers: the shed (`503`) response, deterministic listener chaos,
//! and the worker-owned database slot that survives connection death.

use staged_db::{splitmix64, ConnectionPool, PooledConnection, ReadSet};
use staged_http::{Response, StatusCode};
use staged_sync::{OrderedMutex, Rank};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Rank of the retry estimator's sample window (DESIGN.md §10).
const SAMPLES_RANK: Rank = Rank::new(110);

/// What the listener does with one accepted socket under chaos testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Hand the socket to the header stage as usual.
    Pass,
    /// Drop the socket immediately (simulates a client vanishing or a
    /// network partition right after accept).
    Kill,
    /// Sleep in the accept loop before enqueuing (simulates an accept
    /// hiccup: interrupt storms, a stalled accept thread).
    Stall,
}

/// Deterministic listener-level chaos: a seeded fraction of accepted
/// sockets is killed or stalled. The decision is a pure function of
/// `(seed, connection sequence number)`, so a run is exactly
/// reproducible from its seed — the same property
/// [`staged_db::FaultPlan`] gives query faults.
///
/// # Examples
///
/// ```
/// use staged_core::{ChaosAction, ListenerChaos};
///
/// let chaos = ListenerChaos::seeded(7).kill_rate(0.5);
/// let first = chaos.decide(0);
/// assert_eq!(first, chaos.decide(0)); // deterministic
/// assert!(matches!(first, ChaosAction::Pass | ChaosAction::Kill));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListenerChaos {
    /// Seed for the per-connection decision hash.
    pub seed: u64,
    /// Probability an accepted socket is dropped on the floor.
    pub kill_rate: f64,
    /// Probability the listener stalls before enqueuing a socket.
    pub stall_rate: f64,
    /// How long a stall lasts.
    pub stall: Duration,
}

impl ListenerChaos {
    /// Creates a plan that does nothing yet (both rates zero).
    pub fn seeded(seed: u64) -> Self {
        ListenerChaos {
            seed,
            kill_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(1),
        }
    }

    /// Sets the kill probability (`[0, 1]`).
    pub fn kill_rate(mut self, rate: f64) -> Self {
        self.kill_rate = rate;
        self
    }

    /// Sets the stall probability (`[0, 1]`).
    pub fn stall_rate(mut self, rate: f64) -> Self {
        self.stall_rate = rate;
        self
    }

    /// Sets the stall duration.
    pub fn stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.kill_rate),
            "chaos kill_rate must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.stall_rate),
            "chaos stall_rate must be in [0, 1]"
        );
        assert!(
            self.kill_rate + self.stall_rate <= 1.0,
            "chaos kill_rate + stall_rate must not exceed 1"
        );
    }

    /// The fate of the `conn_seq`-th accepted socket.
    pub fn decide(&self, conn_seq: u64) -> ChaosAction {
        let draw = splitmix64(self.seed ^ conn_seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.kill_rate {
            ChaosAction::Kill
        } else if unit < self.kill_rate + self.stall_rate {
            ChaosAction::Stall
        } else {
            ChaosAction::Pass
        }
    }
}

/// The well-formed shed response: `503 Service Unavailable` with a
/// `Retry-After` hint and `Connection: close` (a shed connection is
/// never requeued — its next request would likely be shed too).
pub(crate) fn overload_response(retry_after: Duration) -> Response {
    let mut resp = Response::error(StatusCode::SERVICE_UNAVAILABLE);
    resp.headers_mut()
        .set("Retry-After", retry_after.as_secs().max(1).to_string());
    resp.set_close();
    resp
}

/// Most bytes [`drain_before_close`] will swallow before giving up on
/// a lingering client.
pub(crate) const DRAIN_MAX_BYTES: usize = 64 * 1024;

/// Longest [`drain_before_close`] will spend draining, wall-clock.
pub(crate) const DRAIN_MAX_WAIT: Duration = Duration::from_millis(200);

/// Discards whatever request bytes are still unread before a shed
/// connection is closed. Closing a socket with unread input makes the
/// kernel answer with `RST`, which can destroy the very `503` sitting
/// in the client's receive path; a short lingering drain lets the
/// client take the response and close first.
///
/// The drain is bounded twice over — [`DRAIN_MAX_BYTES`] total and
/// [`DRAIN_MAX_WAIT`] wall-clock — so a client trickling an enormous
/// body cannot pin a worker that is trying to shed load.
pub(crate) fn drain_before_close(stream: &mut std::net::TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let started = Instant::now();
    let mut remaining = DRAIN_MAX_BYTES;
    let mut scratch = [0u8; 1024];
    while remaining > 0 && started.elapsed() < DRAIN_MAX_WAIT {
        match std::io::Read::read(stream, &mut scratch) {
            Ok(n) if n > 0 => remaining = remaining.saturating_sub(n),
            _ => break,
        }
    }
}

/// Upper clamp on the adaptive `Retry-After` estimate.
pub(crate) const MAX_RETRY_AFTER: Duration = Duration::from_secs(30);

/// How much completion history [`RetryEstimator::advise`] keeps.
const RETRY_SAMPLE_WINDOW: Duration = Duration::from_secs(5);

/// Derives the `Retry-After` advertised on shed responses from the
/// measured drain rate — *queue depth ÷ recent completion rate* — so a
/// briefly saturated server invites clients back quickly while a deep
/// backlog pushes them further out, instead of advertising one fixed
/// constant regardless of conditions.
///
/// Completion-rate samples are taken on each call (sheds are exactly
/// when the estimate is needed), over a sliding ~5 s window. With no
/// measurable drain yet — cold start, or a stalled server — the
/// configured floor is advertised. Estimates clamp to
/// `[floor, MAX_RETRY_AFTER]`.
pub(crate) struct RetryEstimator {
    floor: Duration,
    depth: Box<dyn Fn() -> usize + Send + Sync>,
    completed: Box<dyn Fn() -> u64 + Send + Sync>,
    samples: OrderedMutex<VecDeque<(Instant, u64)>>,
}

impl RetryEstimator {
    pub(crate) fn new(
        floor: Duration,
        depth: Box<dyn Fn() -> usize + Send + Sync>,
        completed: Box<dyn Fn() -> u64 + Send + Sync>,
    ) -> Self {
        RetryEstimator {
            floor,
            depth,
            completed,
            samples: OrderedMutex::new(SAMPLES_RANK, "core.overload.samples", VecDeque::new()),
        }
    }

    /// The current `Retry-After` advice.
    pub(crate) fn advise(&self) -> Duration {
        let now = Instant::now();
        let total = (self.completed)();
        let mut samples = self.samples.lock();
        samples.push_back((now, total));
        while samples.len() > 1 {
            let (t, _) = samples[0];
            if now.duration_since(t) > RETRY_SAMPLE_WINDOW || samples.len() > 64 {
                samples.pop_front();
            } else {
                break;
            }
        }
        let (first_t, first_total) = samples[0];
        let elapsed = now.duration_since(first_t);
        drop(samples);
        if elapsed < Duration::from_millis(50) || total <= first_total {
            // No measurable drain: fall back to the configured floor.
            return self.floor;
        }
        let rate = (total - first_total) as f64 / elapsed.as_secs_f64();
        let depth = (self.depth)() as f64;
        let estimate = Duration::from_secs_f64((depth / rate).max(0.0));
        estimate.clamp(self.floor, MAX_RETRY_AFTER)
    }
}

/// A dynamic worker's database connection slot. The paper's contract —
/// each dynamic worker *owns* a connection for its lifetime — meets
/// fault injection here: when the owned connection dies (
/// [`PooledConnection::is_dead`]), the slot discards it and checks a
/// replacement out with a bounded, backed-off wait instead of blocking
/// the worker forever on an exhausted pool.
pub(crate) struct DbSlot {
    pool: ConnectionPool,
    conn: Option<PooledConnection>,
    acquire_timeout: Duration,
    retries: u32,
    /// Whether the current request wants its read set collected. Kept
    /// on the slot (not just the connection) so a replacement
    /// connection checked out mid-request re-arms tracking — otherwise
    /// the retried handler's reads would go unrecorded and a cache
    /// entry could be tagged with an incomplete dependency set.
    track_reads: bool,
}

impl DbSlot {
    /// Checks the worker's initial connection out, blocking like the
    /// original design did — at startup the pool is sized to cover
    /// every dynamic worker, so this returns immediately.
    pub(crate) fn new(pool: &ConnectionPool, acquire_timeout: Duration, retries: u32) -> Self {
        DbSlot {
            conn: Some(pool.get()),
            pool: pool.clone(),
            acquire_timeout,
            retries,
            track_reads: false,
        }
    }

    /// Starts read-set collection for the current request; any
    /// connection the slot hands out until [`DbSlot::take_read_set`]
    /// tracks its statements.
    pub(crate) fn begin_read_tracking(&mut self) {
        self.track_reads = true;
        if let Some(conn) = &self.conn {
            conn.begin_read_tracking();
        }
    }

    /// Ends collection and returns what the request read. `None` when
    /// tracking never started *or* the tracking connection was lost
    /// mid-request (callers must then skip caching or tag
    /// conservatively — an incomplete set must never tag an entry).
    pub(crate) fn take_read_set(&mut self) -> Option<ReadSet> {
        self.track_reads = false;
        self.conn.as_ref().and_then(|c| c.take_read_set())
    }

    /// The live connection, replacing a dead one if needed. Returns
    /// `None` when the pool stays starved through every retry — the
    /// request should be answered `503`, not block the stage.
    pub(crate) fn conn(&mut self) -> Option<&PooledConnection> {
        if self.conn.as_ref().is_some_and(|c| c.is_dead()) {
            self.conn = None;
        }
        if self.conn.is_none() {
            for attempt in 0..=self.retries {
                if attempt > 0 {
                    std::thread::sleep(Duration::from_millis(2u64 << attempt.min(6)));
                }
                if let Some(fresh) = self.pool.get_timeout(self.acquire_timeout) {
                    if self.track_reads {
                        // Re-arm tracking on the replacement: the retried
                        // handler's reads are the ones that produce the
                        // response that may be cached.
                        fresh.begin_read_tracking();
                    }
                    self.conn = Some(fresh);
                    break;
                }
            }
        }
        self.conn.as_ref()
    }

    /// Discards the held connection so the next [`DbSlot::conn`] call
    /// checks a fresh one out.
    pub(crate) fn invalidate(&mut self) {
        self.conn = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_db::Database;
    use std::sync::Arc;

    #[test]
    fn chaos_is_deterministic_and_rate_accurate() {
        let chaos = ListenerChaos::seeded(42).kill_rate(0.3).stall_rate(0.2);
        chaos.validate();
        let n = 20_000u64;
        let (mut kills, mut stalls) = (0u64, 0u64);
        for seq in 0..n {
            let action = chaos.decide(seq);
            assert_eq!(action, chaos.decide(seq));
            match action {
                ChaosAction::Kill => kills += 1,
                ChaosAction::Stall => stalls += 1,
                ChaosAction::Pass => {}
            }
        }
        let kill_frac = kills as f64 / n as f64;
        let stall_frac = stalls as f64 / n as f64;
        assert!((kill_frac - 0.3).abs() < 0.02, "kill fraction {kill_frac}");
        assert!(
            (stall_frac - 0.2).abs() < 0.02,
            "stall fraction {stall_frac}"
        );
    }

    #[test]
    fn zero_rates_always_pass() {
        let chaos = ListenerChaos::seeded(1);
        for seq in 0..1_000 {
            assert_eq!(chaos.decide(seq), ChaosAction::Pass);
        }
    }

    #[test]
    #[should_panic(expected = "kill_rate")]
    fn out_of_range_rate_rejected() {
        ListenerChaos::seeded(0).kill_rate(1.5).validate();
    }

    #[test]
    fn shed_response_is_wellformed() {
        let resp = overload_response(Duration::from_secs(2));
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers().get("retry-after"), Some("2"));
        assert_eq!(resp.headers().get("connection"), Some("close"));
        let bytes = resp.to_bytes();
        assert!(bytes.starts_with(b"HTTP/1.1 503 "));
    }

    #[test]
    fn shed_retry_after_is_at_least_one_second() {
        let resp = overload_response(Duration::from_millis(10));
        assert_eq!(resp.headers().get("retry-after"), Some("1"));
    }

    #[test]
    fn retry_estimator_falls_back_to_floor_when_cold() {
        let est = RetryEstimator::new(Duration::from_secs(1), Box::new(|| 100), Box::new(|| 0));
        assert_eq!(est.advise(), Duration::from_secs(1));
        assert_eq!(est.advise(), Duration::from_secs(1), "no completions yet");
    }

    #[test]
    fn retry_estimator_scales_with_backlog_and_drain_rate() {
        use staged_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        let completed = Arc::new(AtomicU64::new(0));
        let depth = Arc::new(AtomicUsize::new(5_000));
        let est = RetryEstimator::new(
            Duration::from_secs(1),
            Box::new({
                let d = Arc::clone(&depth);
                move || d.load(Ordering::Relaxed) // lint: allow(relaxed)
            }),
            Box::new({
                let c = Arc::clone(&completed);
                move || c.load(Ordering::Relaxed) // lint: allow(relaxed)
            }),
        );
        est.advise(); // first sample
        std::thread::sleep(Duration::from_millis(80));
        completed.store(40, Ordering::Relaxed); // ~500/s drain rate // lint: allow(relaxed)
        let advice = est.advise();
        assert!(
            advice > Duration::from_secs(2),
            "deep backlog must push clients out: {advice:?}"
        );
        assert!(advice <= MAX_RETRY_AFTER);

        // A much larger backlog clamps at the maximum.
        depth.store(usize::MAX / 2, Ordering::Relaxed); // lint: allow(relaxed)
        completed.store(80, Ordering::Relaxed); // lint: allow(relaxed)
        assert_eq!(est.advise(), MAX_RETRY_AFTER);

        // A shallow backlog drains fast: advice returns to the floor.
        depth.store(1, Ordering::Relaxed); // lint: allow(relaxed)
        completed.store(120, Ordering::Relaxed); // lint: allow(relaxed)
        assert_eq!(est.advise(), Duration::from_secs(1));
    }

    #[test]
    fn drain_before_close_is_bounded_against_trickling_clients() {
        use std::io::Write;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = std::net::TcpStream::connect(addr).unwrap();
            let chunk = [0u8; 4096];
            // Trickle far more than the byte cap, for longer than the
            // wall-clock cap.
            for _ in 0..400 {
                if client.write_all(&chunk).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        drain_before_close(&mut stream);
        let elapsed = started.elapsed();
        drop(stream);
        assert!(
            elapsed < DRAIN_MAX_WAIT + Duration::from_millis(300),
            "drain pinned the worker for {elapsed:?}"
        );
        writer.join().unwrap();
    }

    #[test]
    fn db_slot_replaces_dead_connection() {
        let pool = ConnectionPool::new(Arc::new(Database::new()), 2);
        let mut slot = DbSlot::new(&pool, Duration::from_millis(50), 1);
        assert!(!slot.conn().expect("initial checkout").is_dead());
        slot.invalidate();
        assert!(
            !slot.conn().expect("re-checkout").is_dead(),
            "the slot recovers a live connection"
        );
    }

    #[test]
    fn db_slot_reports_starvation() {
        let pool = ConnectionPool::new(Arc::new(Database::new()), 1);
        let held = pool.get(); // exhaust the pool
        let mut slot = DbSlot {
            pool: pool.clone(),
            conn: None,
            acquire_timeout: Duration::from_millis(10),
            retries: 1,
            track_reads: false,
        };
        assert!(slot.conn().is_none(), "starved pool must not block forever");
        drop(held);
        assert!(slot.conn().is_some(), "recovers once the pool frees up");
    }
}
