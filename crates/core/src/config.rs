//! Server configuration.

use crate::governor::GovernorConfig;
use crate::overload::ListenerChaos;
use staged_db::{BreakerConfig, DurabilityConfig, FaultPlan};
use staged_http::ParseLimits;
use std::net::SocketAddr;
use std::time::Duration;

/// Configuration shared by both servers. Fields irrelevant to a model
/// are ignored by it (the baseline only reads `baseline_workers` /
/// `db_connections` / generic fields).
///
/// Defaults follow the paper's proportions at laptop scale: the general
/// dynamic pool has **four times** the lengthy pool's threads (§3.3),
/// database connections equal the total dynamic thread count, the
/// quick/lengthy cutoff is the paper's 2 seconds scaled ×1000 to 2 ms,
/// and the controller ticks at the paper's 1 Hz scaled to 100 ms.
///
/// # Examples
///
/// ```
/// use staged_core::ServerConfig;
///
/// let cfg = ServerConfig::default();
/// assert_eq!(cfg.general_workers, 4 * cfg.lengthy_workers);
/// assert_eq!(cfg.db_connections, cfg.general_workers + cfg.lengthy_workers);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Header-parsing pool size (staged server).
    pub header_workers: usize,
    /// Static-request pool size (staged server).
    pub static_workers: usize,
    /// General dynamic pool size (staged server).
    pub general_workers: usize,
    /// Lengthy dynamic pool size (staged server).
    pub lengthy_workers: usize,
    /// Template-rendering pool size (staged server).
    pub render_workers: usize,
    /// Worker pool size for the baseline thread-per-request server.
    /// Matches the staged server's dynamic thread count by default so
    /// both models get the same connection budget.
    pub baseline_workers: usize,
    /// Database connections in the shared pool.
    pub db_connections: usize,
    /// Average data-generation time above which a page is *lengthy*
    /// (paper: 2 s; scaled default: 2 ms).
    pub lengthy_cutoff: Duration,
    /// How often the reserve controller updates `t_reserve` (paper:
    /// once per second; scaled default: 100 ms).
    pub controller_tick: Duration,
    /// The configured minimum of `t_reserve` (paper's example: 20; the
    /// scaled default reserves a quarter of the general pool).
    pub min_reserve: usize,
    /// Upper clamp on `t_reserve`; must stay below the general pool
    /// size or lengthy requests can be permanently locked out of the
    /// general pool (see `ReserveController::with_max`). Default: half
    /// the general pool.
    pub max_reserve: usize,
    /// Bucket width for throughput time series (paper reports per
    /// minute over a 50-minute window; scaled default: 1 s buckets).
    pub stats_bucket: Duration,
    /// HTTP parse limits.
    pub limits: ParseLimits,
    /// Socket read timeout: how long a worker waits for request bytes
    /// before dropping the connection (defends the header pool against
    /// slow-loris clients). `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// The paper's suggested extension (§3.3): also split **template
    /// rendering** into quick/lengthy pools, tracked per template name.
    /// Off by default, as in the paper ("applying this technique to …
    /// template rendering might be worthwhile on a different
    /// benchmark"). When on, a quarter of `render_workers` (at least
    /// one) forms the lengthy-render pool.
    pub split_render: bool,
    /// Average render time above which a template is *lengthy* (only
    /// used when `split_render` is on).
    pub render_cutoff: Duration,
    /// Multiplier sizing each stage's bounded queue from its pool width
    /// (`cap = workers × queue_factor`) when no explicit cap is set.
    /// Generous by default so the paper-reproduction runs never shed;
    /// shrink it (or set explicit per-stage caps) to exercise overload
    /// control.
    pub queue_factor: usize,
    /// Explicit bound for the header queue (accepted connections
    /// waiting to be parsed); overrides `queue_factor`.
    pub header_queue_cap: Option<usize>,
    /// Explicit bound for the static-request queue.
    pub static_queue_cap: Option<usize>,
    /// Explicit bound for the general dynamic queue.
    pub general_queue_cap: Option<usize>,
    /// Explicit bound for the lengthy dynamic queue.
    pub lengthy_queue_cap: Option<usize>,
    /// Explicit bound for the render queue(s).
    pub render_queue_cap: Option<usize>,
    /// Explicit bound for the baseline server's single worker queue.
    pub baseline_queue_cap: Option<usize>,
    /// End-to-end time budget per request, measured from the moment the
    /// request line arrives. Stages check the remaining budget when they
    /// dequeue work and answer `503` instead of serving requests whose
    /// deadline already passed (no point rendering a page the client
    /// gave up on). `None` (the default) disables deadline checking.
    pub request_deadline: Option<Duration>,
    /// `Retry-After` value advertised on shed (`503`) responses.
    pub retry_after: Duration,
    /// Socket write timeout: how long a worker blocks transmitting a
    /// response before the connection is dropped (defends workers
    /// against clients that stop reading). `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// How long a dynamic worker waits to check a replacement database
    /// connection out after its own dies mid-request.
    pub db_acquire_timeout: Duration,
    /// Re-checkout attempts (with backoff) before a request whose
    /// connection died is answered `503`.
    pub db_acquire_retries: u32,
    /// Deterministic listener-level chaos (randomly kill or stall
    /// accepted sockets). `None` (the default) disables it.
    pub chaos: Option<ListenerChaos>,
    /// Deterministic database fault plan, installed into the connection
    /// pool at startup. `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Circuit breaker wrapped around database checkout and query
    /// execution (see [`staged_db::CircuitBreaker`]). When the breaker
    /// opens, dynamic handlers fail fast instead of burning their
    /// deadline in acquisition backoff, and the staged server degrades
    /// to the stale-render cache. `None` (the default) disables it.
    pub breaker: Option<BreakerConfig>,
    /// How long a successful render stays servable from the staged
    /// server's stale cache once fresh generation becomes unavailable.
    pub stale_ttl: Duration,
    /// Entry bound of the stale-render cache; `0` disables stale
    /// serving entirely. Only routes marked
    /// [`AppBuilder::stale_cacheable`](crate::AppBuilder::stale_cacheable)
    /// are cached.
    pub stale_capacity: usize,
    /// Whether the staged server runs the dependency-tracked
    /// dynamic-page cache ([`DocCache`](crate::DocCache)): cacheable GET
    /// responses are retained tagged with the tables/keys they read and
    /// served straight from the header stage — zero DB checkouts, zero
    /// render work, zero allocations — until a committed write
    /// intersects their read-set. **Off by default** so the baseline
    /// server and the paper-comparison benches measure the paper's
    /// model, not the cache.
    pub doc_cache: bool,
    /// Freshness backstop for document-cache entries. Correctness comes
    /// from write invalidation; the TTL only bounds how long an entry
    /// whose tables never change may live.
    pub doc_cache_ttl: Duration,
    /// Entry bound of the document cache (oldest-out eviction past it).
    pub doc_cache_capacity: usize,
    /// Graceful-shutdown budget: how long [`ServerHandle::shutdown`]
    /// (see [`crate::ServerHandle`]) waits for queued and in-flight
    /// requests to finish before force-joining the pools.
    pub drain_deadline: Duration,
    /// Capacity of the slowest-trace ring served by `GET /debug/traces`
    /// (the N slowest served requests keep their full stage timeline).
    /// `0` disables trace retention; outcome counters still work.
    pub trace_ring: usize,
    /// Connection-admission caps (global / per-IP concurrency, keep-alive
    /// request quota, idle harvesting) shared by both servers. All caps
    /// default to off — see [`GovernorConfig`].
    pub governor: GovernorConfig,
    /// Durability for the embedded database: a write-ahead log plus
    /// checkpoints in the configured directory (DESIGN.md §13). `None`
    /// (the default) keeps the database purely in-memory, exactly as
    /// the paper-comparison benches expect. When set, the server
    /// attaches the WAL at startup (replaying whatever the directory
    /// holds) and — if [`DurabilityConfig::checkpoint_on_shutdown`] is
    /// on — writes a final checkpoint during graceful shutdown so the
    /// next open replays nothing.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let general_workers = 32;
        let lengthy_workers = 8;
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            header_workers: 16,
            static_workers: 32,
            general_workers,
            lengthy_workers,
            render_workers: 16,
            baseline_workers: general_workers + lengthy_workers,
            db_connections: general_workers + lengthy_workers,
            lengthy_cutoff: Duration::from_millis(5),
            controller_tick: Duration::from_millis(100),
            min_reserve: 8,
            max_reserve: general_workers / 2,
            stats_bucket: Duration::from_secs(1),
            limits: ParseLimits::default(),
            read_timeout: Some(Duration::from_secs(10)),
            split_render: false,
            render_cutoff: Duration::from_millis(5),
            queue_factor: 64,
            header_queue_cap: None,
            static_queue_cap: None,
            general_queue_cap: None,
            lengthy_queue_cap: None,
            render_queue_cap: None,
            baseline_queue_cap: None,
            request_deadline: None,
            retry_after: Duration::from_secs(1),
            write_timeout: Some(Duration::from_secs(10)),
            db_acquire_timeout: Duration::from_millis(500),
            db_acquire_retries: 2,
            chaos: None,
            fault_plan: None,
            breaker: None,
            stale_ttl: Duration::from_secs(30),
            stale_capacity: 256,
            doc_cache: false,
            doc_cache_ttl: Duration::from_secs(60),
            doc_cache_capacity: 1024,
            drain_deadline: Duration::from_secs(5),
            trace_ring: 32,
            governor: GovernorConfig::default(),
            durability: None,
        }
    }
}

impl ServerConfig {
    /// A small configuration for fast unit/integration tests.
    pub fn small() -> Self {
        ServerConfig {
            header_workers: 2,
            static_workers: 2,
            general_workers: 4,
            lengthy_workers: 1,
            render_workers: 2,
            baseline_workers: 5,
            db_connections: 5,
            min_reserve: 1,
            max_reserve: 2,
            controller_tick: Duration::from_millis(20),
            stats_bucket: Duration::from_millis(100),
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            db_acquire_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        }
    }

    /// Effective bound of the header (accepted-connection) queue.
    pub fn header_queue_bound(&self) -> usize {
        Self::bound(
            self.header_queue_cap,
            self.header_workers,
            self.queue_factor,
        )
    }

    /// Effective bound of the static-request queue.
    pub fn static_queue_bound(&self) -> usize {
        Self::bound(
            self.static_queue_cap,
            self.static_workers,
            self.queue_factor,
        )
    }

    /// Effective bound of the general dynamic queue.
    pub fn general_queue_bound(&self) -> usize {
        Self::bound(
            self.general_queue_cap,
            self.general_workers,
            self.queue_factor,
        )
    }

    /// Effective bound of the lengthy dynamic queue.
    pub fn lengthy_queue_bound(&self) -> usize {
        Self::bound(
            self.lengthy_queue_cap,
            self.lengthy_workers,
            self.queue_factor,
        )
    }

    /// Effective bound of the render queue(s).
    pub fn render_queue_bound(&self) -> usize {
        Self::bound(
            self.render_queue_cap,
            self.render_workers,
            self.queue_factor,
        )
    }

    /// Effective bound of the baseline server's worker queue.
    pub fn baseline_queue_bound(&self) -> usize {
        Self::bound(
            self.baseline_queue_cap,
            self.baseline_workers,
            self.queue_factor,
        )
    }

    fn bound(explicit: Option<usize>, workers: usize, factor: usize) -> usize {
        explicit
            .unwrap_or_else(|| workers.saturating_mul(factor))
            .max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any pool is empty or the dynamic pools outnumber the
    /// database connections (each dynamic worker owns a connection).
    pub fn validate(&self) {
        assert!(self.header_workers > 0, "header pool must not be empty");
        assert!(self.static_workers > 0, "static pool must not be empty");
        assert!(self.general_workers > 0, "general pool must not be empty");
        assert!(self.lengthy_workers > 0, "lengthy pool must not be empty");
        assert!(self.render_workers > 0, "render pool must not be empty");
        assert!(self.baseline_workers > 0, "baseline pool must not be empty");
        assert!(
            self.max_reserve >= self.min_reserve,
            "max_reserve must be at least min_reserve"
        );
        assert!(
            self.max_reserve < self.general_workers,
            "max_reserve must leave the general pool reachable by lengthy requests"
        );
        assert!(
            self.db_connections >= self.general_workers + self.lengthy_workers,
            "each dynamic worker owns a DB connection: need at least {} connections",
            self.general_workers + self.lengthy_workers
        );
        assert!(
            self.db_connections >= self.baseline_workers,
            "each baseline worker owns a DB connection: need at least {} connections",
            self.baseline_workers
        );
        assert!(self.queue_factor >= 1, "queue_factor must be at least 1");
        if self.doc_cache {
            assert!(
                self.doc_cache_capacity > 0,
                "an enabled document cache needs a nonzero capacity"
            );
            assert!(
                !self.doc_cache_ttl.is_zero(),
                "an enabled document cache needs a nonzero TTL backstop"
            );
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate();
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate();
        }
        if let Some(durability) = &self.durability {
            assert!(
                !durability.dir.as_os_str().is_empty(),
                "durability directory must not be empty"
            );
        }
        self.governor.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_proportions() {
        let c = ServerConfig::default();
        assert_eq!(c.general_workers, 4 * c.lengthy_workers);
        assert_eq!(c.db_connections, c.general_workers + c.lengthy_workers);
        assert_eq!(c.baseline_workers, c.db_connections);
        c.validate();
    }

    #[test]
    fn small_config_validates() {
        ServerConfig::small().validate();
    }

    #[test]
    #[should_panic(expected = "each dynamic worker owns a DB connection")]
    fn undersized_connection_pool_rejected() {
        let c = ServerConfig {
            db_connections: 1,
            ..ServerConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "general pool must not be empty")]
    fn empty_pool_rejected() {
        let c = ServerConfig {
            general_workers: 0,
            ..ServerConfig::default()
        };
        c.validate();
    }

    #[test]
    fn queue_bounds_follow_pool_widths() {
        let c = ServerConfig::default();
        assert_eq!(c.header_queue_bound(), c.header_workers * c.queue_factor);
        assert_eq!(c.general_queue_bound(), c.general_workers * c.queue_factor);
        assert_eq!(
            c.baseline_queue_bound(),
            c.baseline_workers * c.queue_factor
        );
    }

    #[test]
    fn explicit_queue_caps_override_factor() {
        let c = ServerConfig {
            header_queue_cap: Some(3),
            // clamped: a bound of zero would shed everything
            static_queue_cap: Some(0),
            ..ServerConfig::default()
        };
        assert_eq!(c.header_queue_bound(), 3);
        assert_eq!(c.static_queue_bound(), 1);
    }

    #[test]
    fn durability_defaults_off_and_validates_when_set() {
        let c = ServerConfig::default();
        assert!(c.durability.is_none(), "in-memory by default");
        let c = ServerConfig {
            durability: Some(DurabilityConfig::new("target/tmp/cfg-durability")),
            ..ServerConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "durability directory")]
    fn empty_durability_dir_rejected() {
        let c = ServerConfig {
            durability: Some(DurabilityConfig::new("")),
            ..ServerConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "queue_factor")]
    fn zero_queue_factor_rejected() {
        let c = ServerConfig {
            queue_factor: 0,
            ..ServerConfig::default()
        };
        c.validate();
    }
}
