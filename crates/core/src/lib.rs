//! Multi-thread-pool request scheduling for template-based web servers.
//!
//! This crate is the reproduction of the DSN 2009 paper *Efficient
//! Resource Management on Template-based Web Servers* (Courtwright, Yue,
//! Wang). It provides **two complete web servers** over the same
//! application contract, so experiments change only the request
//! processing model:
//!
//! * [`BaselineServer`] — the conventional **thread-per-request** model
//!   (paper Figure 4): one listener, one worker pool, every worker owns
//!   a database connection for its lifetime and carries each request
//!   through parsing, data generation, *and* template rendering.
//! * [`StagedServer`] — the paper's modified server (Figure 5): one
//!   listener and **five pools** (header parsing, static requests,
//!   general dynamic, lengthy dynamic, template rendering). Database
//!   connections belong only to the two dynamic pools, so they never sit
//!   idle during template rendering or static service. Dynamic requests
//!   are classified *quick*/*lengthy* from a per-page running average of
//!   data-generation time and dispatched per the paper's Table 1 rules,
//!   governed by the `t_spare`/`t_reserve` feedback controller
//!   ([`ReserveController`], which reproduces the paper's Table 2
//!   exactly — see its tests).
//!
//! Applications are built with [`App`]: handlers return
//! [`PageOutcome::Template`] — the paper's one-line
//! `return ("tmpl.html", data)` modification — or a pre-rendered
//! [`PageOutcome::Body`] for backward compatibility, which the staged
//! server detects and serves directly (paper §3.2).
//!
//! # Examples
//!
//! ```no_run
//! use staged_core::{App, PageOutcome, ServerConfig, StagedServer};
//! use staged_db::Database;
//! use staged_templates::{Context, TemplateStore};
//! use std::sync::Arc;
//!
//! let templates = Arc::new(TemplateStore::new());
//! templates.insert("hello.html", "<h1>Hello {{ name }}</h1>").unwrap();
//! let app = App::builder()
//!     .templates(templates)
//!     .route("/hello", "hello", |req, _db| {
//!         let mut ctx = Context::new();
//!         ctx.insert("name", req.param("name").unwrap_or("world"));
//!         Ok(PageOutcome::template("hello.html", ctx))
//!     })
//!     .build();
//! let db = Arc::new(Database::new());
//! let server = StagedServer::start(ServerConfig::default(), app, db).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown().expect("clean shutdown");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod baseline;
mod config;
mod doccache;
mod error;
mod governor;
mod handle;
mod health;
mod overload;
mod scheduler;
mod staged;
mod stale;
mod stats;

pub use app::{App, AppBuilder, Handler, PageOutcome, Route};
pub use baseline::BaselineServer;
pub use config::ServerConfig;
pub use doccache::{DocCache, Lookup};
pub use error::AppError;
pub use governor::GovernorConfig;
pub use handle::{PoolSnapshot, ServerHandle, ShutdownError};
pub use health::{Phase, Readiness};
pub use overload::{ChaosAction, ListenerChaos};
pub use scheduler::{DynamicPoolChoice, RequestClass, ReserveController, ServiceTimeTracker};
pub use staged::StagedServer;
pub use stale::write_key;
pub use stats::{RequestKind, ServerStats, ShedPoint, StatsSnapshot};

/// Crate-private protocol objects wrapped for the model checker.
///
/// The concurrency model suite (`crates/check`) drives the connection
/// governor, the stale cache, and the cache-invalidation helper directly
/// under the cooperative scheduler. Those types are deliberately
/// `pub(crate)` in release builds, so this module — which exists only
/// under `--cfg model` — exposes thin wrappers instead of widening the
/// production API.
#[cfg(model)]
pub mod model_fixtures {
    use crate::governor::{ConnPermit, ConnectionGovernor};
    use crate::stale::StaleCache;
    use staged_db::{ReadSet, WriteEvent};
    use std::net::IpAddr;
    use std::sync::Arc;
    use std::time::Duration;

    /// Wraps [`ConnectionGovernor`] for model tests.
    pub struct Governor(ConnectionGovernor);

    /// An admitted connection's slot; releases both counts on drop.
    pub struct Permit(#[allow(dead_code)] ConnPermit);

    impl Governor {
        /// A governor with the given caps (see [`crate::GovernorConfig`]).
        pub fn new(cfg: crate::GovernorConfig) -> Self {
            Governor(ConnectionGovernor::new(cfg))
        }

        /// Admits or turns away one connection; `Err` carries the
        /// turnaway reason as text.
        pub fn admit(&self, ip: Option<IpAddr>) -> Result<Permit, String> {
            self.0.admit(ip).map(Permit).map_err(|t| format!("{t:?}"))
        }

        /// Connections currently admitted.
        pub fn open(&self) -> usize {
            self.0.open()
        }
    }

    /// Wraps the crate-private [`StaleCache`] for model tests.
    pub struct Stale(StaleCache);

    impl Stale {
        /// A cache usable for `ttl` holding at most `capacity` entries.
        pub fn new(ttl: Duration, capacity: usize) -> Self {
            Stale(StaleCache::new(ttl, capacity))
        }

        /// Stores one rendered body tagged with its read dependencies.
        pub fn put_tagged(&self, key: &str, body: &str, reads: Option<Arc<ReadSet>>) {
            self.0.put_tagged(key, body, reads);
        }

        /// Evicts entries that depend on the written rows.
        pub fn invalidate(&self, event: &WriteEvent) {
            self.0.invalidate(event);
        }

        /// The cached body, if present and fresh enough to serve.
        pub fn get(&self, key: &str) -> Option<Vec<u8>> {
            self.0.get(key).map(|hit| hit.body.as_slice().to_vec())
        }

        /// Number of live entries.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// `true` when the cache holds no entries.
        pub fn is_empty(&self) -> bool {
            self.0.len() == 0
        }
    }

    /// Invalidates the document cache and the stale cache for one write,
    /// in the production order (doc cache first). This is the helper the
    /// staged server's write observer calls; the
    /// `core_invalidate_nesting_flip` mutant reverses the order.
    pub fn invalidate_caches(dc: Option<&crate::DocCache>, sc: &Stale, event: &WriteEvent) {
        crate::staged::invalidate_caches(dc, &sc.0, event);
    }
}

// Re-exported so callers can consume `ServerHandle::registry` and the
// shared snapshot encoding without a direct `staged_metrics` dependency.
pub use staged_metrics::{Registry, Snapshot};

// Re-exported so server configuration (`ServerConfig::breaker`,
// `ServerConfig::durability`) and health reporting can be used without
// a direct `staged_db` dependency.
pub use staged_db::{
    BreakerConfig, BreakerState, CircuitBreaker, DurabilityConfig, DurabilityStatus, FsyncPolicy,
};
