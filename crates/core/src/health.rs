//! Health and readiness reporting (`/healthz`, `/readyz`).
//!
//! Both servers answer these two paths ahead of routing and without
//! touching a database connection, so they stay truthful during the
//! exact outages they exist to report. `/healthz` is liveness plus a
//! JSON diagnostic payload (breaker state, queue depths, scheduler
//! gauges, shed/panic counters); `/readyz` carries the same payload but
//! flips to `503` while the server is starting or draining, which is
//! what a load balancer keys on.
//!
//! The JSON is assembled by hand: this repo deliberately has no JSON
//! dependency (see DESIGN.md §7), and every value here is a number or
//! a fixed label, so escaping is a non-issue.

use crate::stats::{ServerStats, ShedPoint};
use staged_db::CircuitBreaker;
use staged_http::{Response, StatusCode};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// Server lifecycle phase, as `/readyz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pools are spawning; not yet accepting work.
    Starting,
    /// Serving normally.
    Ready,
    /// Shutdown began; in-flight requests are finishing.
    Draining,
}

impl Phase {
    /// Label used in the health payloads.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Ready => "ready",
            Phase::Draining => "draining",
        }
    }
}

/// Shared readiness state: flipped to [`Phase::Ready`] once the server
/// is accepting, and to [`Phase::Draining`] the moment shutdown begins.
/// Obtainable from a running server via
/// [`ServerHandle::readiness`](crate::ServerHandle::readiness).
#[derive(Debug)]
pub struct Readiness {
    phase: AtomicU8,
}

impl Readiness {
    pub(crate) fn new() -> Self {
        Readiness {
            phase: AtomicU8::new(0),
        }
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        match self.phase.load(Ordering::Relaxed) {
            0 => Phase::Starting,
            1 => Phase::Ready,
            _ => Phase::Draining,
        }
    }

    /// Whether `/readyz` currently answers `200`.
    pub fn is_ready(&self) -> bool {
        self.phase() == Phase::Ready
    }

    pub(crate) fn set_ready(&self) {
        self.phase.store(1, Ordering::Relaxed);
    }

    pub(crate) fn set_draining(&self) {
        self.phase.store(2, Ordering::Relaxed);
    }
}

/// Everything one health payload is rendered from. Each server
/// assembles this from its own stage structure.
pub(crate) struct HealthView<'a> {
    pub phase: Phase,
    pub breaker: Option<&'a CircuitBreaker>,
    /// `(queue name, depth)` pairs, in pipeline order.
    pub queues: &'a [(&'static str, usize)],
    /// `(t_spare, t_reserve)`; `None` on the baseline server, which has
    /// no reserve scheduler.
    pub scheduler: Option<(usize, usize)>,
    pub stats: &'a ServerStats,
    /// `(pool name, stats)` pairs, in pipeline order.
    pub pools: &'a [(&'static str, &'a staged_pool::PoolStats)],
}

impl HealthView<'_> {
    fn body(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"status\":\"ok\",\"phase\":\"{}\",\"ready\":{}",
            self.phase.label(),
            self.phase == Phase::Ready
        );
        match self.breaker {
            Some(b) => {
                let _ = write!(
                    s,
                    ",\"breaker\":{{\"state\":\"{}\",\"opened\":{},\"half_opened\":{},\"closed\":{},\"fast_failures\":{}}}",
                    b.state().label(),
                    b.opened_total(),
                    b.half_open_total(),
                    b.closed_total(),
                    b.fast_failures()
                );
            }
            None => s.push_str(",\"breaker\":null"),
        }
        s.push_str(",\"queues\":{");
        for (i, (name, depth)) in self.queues.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{depth}");
        }
        s.push('}');
        if let Some((t_spare, t_reserve)) = self.scheduler {
            let _ = write!(
                s,
                ",\"scheduler\":{{\"t_spare\":{t_spare},\"t_reserve\":{t_reserve}}}"
            );
        }
        let st = self.stats;
        let _ = write!(
            s,
            ",\"counters\":{{\"completed\":{},\"errors\":{},\"degraded\":{},\"stale_misses\":{},\"deadline_expired\":{},\"pool_starved\":{},\"handler_panics\":{},\"dropped_connections\":{}}}",
            st.total_completed(),
            st.errors.value(),
            st.degraded.value(),
            st.stale_misses.value(),
            st.deadline_expired.value(),
            st.pool_starved.value(),
            st.handler_panics.value(),
            st.dropped_connections.value()
        );
        s.push_str(",\"sheds\":{");
        for (i, point) in ShedPoint::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", point.label(), st.shed(*point));
        }
        s.push('}');
        s.push_str(",\"pools\":[");
        for (i, (name, pool)) in self.pools.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"completed\":{},\"panicked\":{},\"rejected\":{},\"busy\":{}}}",
                name,
                pool.completed.value(),
                pool.panicked.value(),
                pool.rejected.value(),
                pool.busy.value().max(0)
            );
        }
        s.push_str("]}");
        s
    }

    /// The `/healthz` response: `200` whenever the process can answer
    /// at all (liveness), carrying the full diagnostic payload.
    pub(crate) fn healthz(&self) -> Response {
        Response::with_content_type("application/json", self.body())
    }

    /// The `/readyz` response: the same payload, but `503` (with a
    /// `Retry-After` hint) outside the [`Phase::Ready`] window.
    pub(crate) fn readyz(&self, retry_after: Duration) -> Response {
        let mut resp = self.healthz();
        if self.phase != Phase::Ready {
            resp.set_status(StatusCode::SERVICE_UNAVAILABLE);
            resp.headers_mut()
                .set("Retry-After", retry_after.as_secs().max(1).to_string());
            resp.set_close();
        }
        resp
    }
}

/// Whether a request path is one of the health endpoints (matched
/// before routing, query string already split off by the parser).
pub(crate) fn is_health_path(path: &str) -> bool {
    path == "/healthz" || path == "/readyz"
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_pool::PoolStats;
    use std::time::Duration;

    fn view<'a>(
        phase: Phase,
        stats: &'a ServerStats,
        pools: &'a [(&'static str, &'a PoolStats)],
        queues: &'a [(&'static str, usize)],
    ) -> HealthView<'a> {
        HealthView {
            phase,
            breaker: None,
            queues,
            scheduler: Some((3, 1)),
            stats,
            pools,
        }
    }

    #[test]
    fn healthz_payload_is_wellformed() {
        let stats = ServerStats::new(Duration::from_secs(1));
        stats.degraded.increment();
        let pool = PoolStats::default();
        let pools = [("general-dynamic", &pool)];
        let queues = [("header", 2usize), ("render", 0usize)];
        let v = view(Phase::Ready, &stats, &pools, &queues);
        let resp = v.healthz();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("content-type"), Some("application/json"));
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("\"phase\":\"ready\""), "{body}");
        assert!(body.contains("\"ready\":true"), "{body}");
        assert!(body.contains("\"breaker\":null"), "{body}");
        assert!(body.contains("\"header\":2"), "{body}");
        assert!(body.contains("\"t_spare\":3"), "{body}");
        assert!(body.contains("\"degraded\":1"), "{body}");
        assert!(body.contains("\"name\":\"general-dynamic\""), "{body}");
    }

    #[test]
    fn readyz_rejects_outside_ready_phase() {
        let stats = ServerStats::new(Duration::from_secs(1));
        let v = view(Phase::Draining, &stats, &[], &[]);
        let resp = v.readyz(Duration::from_secs(2));
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers().get("retry-after"), Some("2"));
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("\"phase\":\"draining\""), "{body}");

        let v = view(Phase::Ready, &stats, &[], &[]);
        assert_eq!(v.readyz(Duration::from_secs(2)).status(), StatusCode::OK);
    }

    #[test]
    fn breaker_state_appears_in_payload() {
        let stats = ServerStats::new(Duration::from_secs(1));
        let breaker = CircuitBreaker::new(staged_db::BreakerConfig::default());
        let v = HealthView {
            phase: Phase::Ready,
            breaker: Some(&breaker),
            queues: &[],
            scheduler: None,
            stats: &stats,
            pools: &[],
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(body.contains("\"state\":\"closed\""), "{body}");
        assert!(!body.contains("scheduler"), "{body}");
    }

    #[test]
    fn readiness_lifecycle() {
        let r = Readiness::new();
        assert_eq!(r.phase(), Phase::Starting);
        assert!(!r.is_ready());
        r.set_ready();
        assert!(r.is_ready());
        r.set_draining();
        assert_eq!(r.phase(), Phase::Draining);
        assert!(!r.is_ready());
    }

    #[test]
    fn health_paths_matched_exactly() {
        assert!(is_health_path("/healthz"));
        assert!(is_health_path("/readyz"));
        assert!(!is_health_path("/health"));
        assert!(!is_health_path("/healthz/x"));
    }
}
