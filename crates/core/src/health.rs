//! Health and readiness reporting (`/healthz`, `/readyz`).
//!
//! Both servers answer these two paths ahead of routing and without
//! touching a database connection, so they stay truthful during the
//! exact outages they exist to report. `/healthz` is liveness plus a
//! JSON diagnostic payload (breaker state, queue depths, scheduler
//! gauges, shed/panic counters); `/readyz` carries the same payload but
//! flips to `503` while the server is starting or draining, which is
//! what a load balancer keys on.
//!
//! The payload is rendered from the server's metrics [`Registry`] — the
//! same families `GET /metrics` exports — so the two surfaces cannot
//! disagree. The JSON is assembled by hand: this repo deliberately has
//! no JSON dependency (see DESIGN.md §7), and every value here is a
//! number or a fixed label, so escaping is a non-issue.

use staged_db::{CircuitBreaker, DurabilityStatus};
use staged_http::{Response, StatusCode};
use staged_metrics::Registry;
use staged_sync::atomic::{AtomicU8, Ordering};
use std::fmt::Write as _;
use std::time::Duration;

/// Server lifecycle phase, as `/readyz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pools are spawning; not yet accepting work.
    Starting,
    /// Serving normally.
    Ready,
    /// Shutdown began; in-flight requests are finishing.
    Draining,
}

impl Phase {
    /// Label used in the health payloads.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Ready => "ready",
            Phase::Draining => "draining",
        }
    }
}

/// Shared readiness state: flipped to [`Phase::Ready`] once the server
/// is accepting, and to [`Phase::Draining`] the moment shutdown begins.
/// Obtainable from a running server via
/// [`ServerHandle::readiness`](crate::ServerHandle::readiness).
#[derive(Debug)]
pub struct Readiness {
    phase: AtomicU8,
}

impl Readiness {
    pub(crate) fn new() -> Self {
        Readiness {
            phase: AtomicU8::new(0),
        }
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        match self.phase.load(Ordering::Acquire) {
            0 => Phase::Starting,
            1 => Phase::Ready,
            _ => Phase::Draining,
        }
    }

    /// Whether `/readyz` currently answers `200`.
    pub fn is_ready(&self) -> bool {
        self.phase() == Phase::Ready
    }

    pub(crate) fn set_ready(&self) {
        self.phase.store(1, Ordering::Release);
    }

    pub(crate) fn set_draining(&self) {
        self.phase.store(2, Ordering::Release);
    }
}

/// Everything one health payload is rendered from: the lifecycle phase,
/// the breaker (which has richer state than a gauge), and the metrics
/// registry both servers populate at start.
pub(crate) struct HealthView<'a> {
    pub phase: Phase,
    pub breaker: Option<&'a CircuitBreaker>,
    pub registry: &'a Registry,
    /// Point-in-time durability picture, when the server runs with a
    /// WAL ([`crate::ServerConfig::durability`]); `None` keeps the
    /// section out of the payload for in-memory servers.
    pub durability: Option<DurabilityStatus>,
}

impl HealthView<'_> {
    fn counter(&self, name: &str) -> u64 {
        self.registry.value(name, &[]).unwrap_or(0.0).max(0.0) as u64
    }

    /// Sums a labelled family — e.g. total completions across classes.
    fn family_sum(&self, name: &str) -> u64 {
        self.registry
            .samples(name)
            .iter()
            .map(|(_, v)| v.max(0.0))
            .sum::<f64>() as u64
    }

    fn body(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"status\":\"ok\",\"phase\":\"{}\",\"ready\":{}",
            self.phase.label(),
            self.phase == Phase::Ready
        );
        match self.breaker {
            Some(b) => {
                let _ = write!(
                    s,
                    ",\"breaker\":{{\"state\":\"{}\",\"opened\":{},\"half_opened\":{},\"closed\":{},\"fast_failures\":{}}}",
                    b.state().label(),
                    b.opened_total(),
                    b.half_open_total(),
                    b.closed_total(),
                    b.fast_failures()
                );
            }
            None => s.push_str(",\"breaker\":null"),
        }
        s.push_str(",\"queues\":{");
        for (i, stage) in self
            .registry
            .label_values("stage_queue_depth", "stage")
            .iter()
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let depth = self
                .registry
                .value("stage_queue_depth", &[("stage", stage)])
                .unwrap_or(0.0)
                .max(0.0) as u64;
            let _ = write!(s, "\"{stage}\":{depth}");
        }
        s.push('}');
        if let (Some(t_spare), Some(t_reserve)) = (
            self.registry.value("scheduler_t_spare", &[]),
            self.registry.value("scheduler_t_reserve", &[]),
        ) {
            let _ = write!(
                s,
                ",\"scheduler\":{{\"t_spare\":{},\"t_reserve\":{}}}",
                t_spare.max(0.0) as u64,
                t_reserve.max(0.0) as u64
            );
        }
        let _ = write!(
            s,
            ",\"counters\":{{\"completed\":{},\"errors\":{},\"degraded\":{},\"stale_misses\":{},\"deadline_expired\":{},\"pool_starved\":{},\"handler_panics\":{},\"dropped_connections\":{}}}",
            self.family_sum("requests_completed_total"),
            self.counter("errors_total"),
            self.counter("degraded_total"),
            self.counter("stale_misses_total"),
            self.counter("deadline_expired_total"),
            self.counter("pool_starved_total"),
            self.counter("handler_panics_total"),
            self.counter("dropped_connections_total")
        );
        s.push_str(",\"sheds\":{");
        for (i, point) in self
            .registry
            .label_values("sheds_total", "point")
            .iter()
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let n = self
                .registry
                .value("sheds_total", &[("point", point)])
                .unwrap_or(0.0)
                .max(0.0) as u64;
            let _ = write!(s, "\"{point}\":{n}");
        }
        s.push('}');
        // Connection-admission picture (only present once a governor has
        // registered — both servers do at start; absent in unit-test
        // registries that predate it).
        if let Some(open) = self.registry.value("connections_open", &[]) {
            let rejected = |reason: &str| {
                self.registry
                    .value("connections_rejected_total", &[("reason", reason)])
                    .unwrap_or(0.0)
                    .max(0.0) as u64
            };
            let _ = write!(
                s,
                ",\"connections\":{{\"open\":{},\"rejected_global\":{},\"rejected_per_ip\":{},\"harvested\":{},\"keepalive_capped\":{},\"slowloris_kills\":{}}}",
                open.max(0.0) as u64,
                rejected("global-cap"),
                rejected("per-ip-cap"),
                self.counter("keepalive_harvested_total"),
                self.counter("keepalive_capped_total"),
                self.counter("slowloris_kills_total")
            );
        }
        // Document-cache picture (only when the staged server runs the
        // dependency-tracked cache and registered its families).
        if let Some(entries) = self.registry.value("doc_cache_entries", &[]) {
            let _ = write!(
                s,
                ",\"doc_cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\"publishes\":{},\"invalidations\":{},\"stale_discards\":{},\"bytes_served\":{}}}",
                entries.max(0.0) as u64,
                self.counter("doc_cache_hits_total"),
                self.counter("doc_cache_misses_total"),
                self.counter("doc_cache_publishes_total"),
                self.counter("doc_cache_invalidations_total"),
                self.counter("doc_cache_stale_discards_total"),
                self.counter("doc_cache_bytes_served_total")
            );
        }
        // Durability picture (only when the server runs with a WAL).
        // `poisoned` is reported as a boolean: the message is free-form
        // I/O error text and this payload never escapes strings.
        if let Some(d) = &self.durability {
            let _ = write!(
                s,
                ",\"durability\":{{\"mode\":\"{}\",\"last_checkpoint_age_ms\":{},\"replayed\":{},\"checkpoints\":{},\"wal_appends\":{},\"wal_bytes\":{},\"wal_written_seq\":{},\"wal_synced_seq\":{},\"checkpoint_on_shutdown\":{},\"poisoned\":{}}}",
                d.mode,
                d.last_checkpoint_age.as_millis(),
                d.replay_count,
                d.checkpoints,
                d.wal.appends,
                d.wal.bytes,
                d.wal.written_seq,
                d.wal.synced_seq,
                d.checkpoint_on_shutdown,
                d.poisoned.is_some()
            );
        }
        s.push_str(",\"pools\":[");
        for (i, pool) in self
            .registry
            .label_values("pool_completed_total", "pool")
            .iter()
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let labels = [("pool", pool.as_str())];
            let read =
                |metric: &str| self.registry.value(metric, &labels).unwrap_or(0.0).max(0.0) as u64;
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"completed\":{},\"panicked\":{},\"rejected\":{},\"busy\":{}}}",
                pool,
                read("pool_completed_total"),
                read("pool_panics_total"),
                read("pool_rejected_total"),
                read("pool_busy_workers")
            );
        }
        s.push_str("]}");
        s
    }

    /// The `/healthz` response: `200` whenever the process can answer
    /// at all (liveness), carrying the full diagnostic payload.
    pub(crate) fn healthz(&self) -> Response {
        Response::with_content_type("application/json", self.body())
    }

    /// The `/readyz` response: the same payload, but `503` (with a
    /// `Retry-After` hint) outside the [`Phase::Ready`] window.
    pub(crate) fn readyz(&self, retry_after: Duration) -> Response {
        let mut resp = self.healthz();
        if self.phase != Phase::Ready {
            resp.set_status(StatusCode::SERVICE_UNAVAILABLE);
            resp.headers_mut()
                .set("Retry-After", retry_after.as_secs().max(1).to_string());
            resp.set_close();
        }
        resp
    }
}

/// Whether a request path is one of the health endpoints (matched
/// before routing, query string already split off by the parser).
pub(crate) fn is_health_path(path: &str) -> bool {
    path == "/healthz" || path == "/readyz"
}

/// Whether a request path is one of the observability endpoints
/// (`/metrics` Prometheus exposition, `/debug/traces` slow-trace ring,
/// `/debug/explain` query-plan trees), matched alongside the health
/// paths ahead of routing.
pub(crate) fn is_observability_path(path: &str) -> bool {
    path == "/metrics" || path == "/debug/traces" || path == "/debug/explain"
}

/// Renders `GET /debug/explain`: with `?route=<page>`, every statement
/// that page has executed with its query-plan tree (node kind, chosen
/// index, estimated vs measured rows, cumulative per-node time); bare,
/// the list of routes seen so far. A route the server has not served
/// yet answers `404` with that same list.
pub(crate) fn explain_response(db: &staged_db::Database, route: Option<&str>) -> Response {
    let route_list = |routes: &[String]| {
        let mut out = String::from("[");
        for (i, r) in routes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Route names are the servers' own fixed page names: quoting
            // without escape analysis is safe, but stay defensive.
            out.push('"');
            out.extend(r.chars().filter(|c| *c != '"' && *c != '\\'));
            out.push('"');
        }
        out.push(']');
        out
    };
    match route {
        Some(route) => match db.explain_route(route) {
            Some(json) => Response::with_content_type("application/json", json),
            None => {
                let mut resp = Response::with_content_type(
                    "application/json",
                    format!(
                        "{{\"error\":\"unknown route (serve it once first)\",\"routes\":{}}}",
                        route_list(&db.known_routes())
                    ),
                );
                resp.set_status(StatusCode::NOT_FOUND);
                resp
            }
        },
        None => Response::with_content_type(
            "application/json",
            format!("{{\"routes\":{}}}", route_list(&db.known_routes())),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_pool::PoolStats;
    use std::sync::Arc;
    use std::time::Duration;

    /// Builds a registry shaped like the staged server's: stage depth
    /// gauges, scheduler gauges, stats counters, and one pool family.
    fn populated_registry() -> Registry {
        let r = Registry::new();
        r.gauge_fn("stage_queue_depth", &[("stage", "header")], || 2.0);
        r.gauge_fn("stage_queue_depth", &[("stage", "render")], || 0.0);
        r.gauge_fn("scheduler_t_spare", &[], || 3.0);
        r.gauge_fn("scheduler_t_reserve", &[], || 1.0);
        r.counter_fn("requests_completed_total", &[("class", "static")], || 4);
        r.counter_fn(
            "requests_completed_total",
            &[("class", "quick-dynamic")],
            || 6,
        );
        r.counter_fn("errors_total", &[], || 0);
        r.counter_fn("degraded_total", &[], || 1);
        r.counter_fn("stale_misses_total", &[], || 0);
        r.counter_fn("deadline_expired_total", &[], || 0);
        r.counter_fn("pool_starved_total", &[], || 0);
        r.counter_fn("handler_panics_total", &[], || 0);
        r.counter_fn("dropped_connections_total", &[], || 0);
        r.counter_fn("sheds_total", &[("point", "listener")], || 5);
        let pool = Arc::new(PoolStats::default());
        pool.completed.add(9);
        let p = Arc::clone(&pool);
        r.counter_fn("pool_completed_total", &[("pool", "general-dynamic")], {
            let p = Arc::clone(&p);
            move || p.completed.value()
        });
        r.counter_fn("pool_panics_total", &[("pool", "general-dynamic")], {
            let p = Arc::clone(&p);
            move || p.panicked.value()
        });
        r.counter_fn("pool_rejected_total", &[("pool", "general-dynamic")], {
            let p = Arc::clone(&p);
            move || p.rejected.value()
        });
        r.gauge_fn("pool_busy_workers", &[("pool", "general-dynamic")], {
            let p = Arc::clone(&p);
            move || p.busy.value() as f64
        });
        r
    }

    #[test]
    fn healthz_payload_is_wellformed() {
        let registry = populated_registry();
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        let resp = v.healthz();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("content-type"), Some("application/json"));
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("\"phase\":\"ready\""), "{body}");
        assert!(body.contains("\"ready\":true"), "{body}");
        assert!(body.contains("\"breaker\":null"), "{body}");
        assert!(body.contains("\"header\":2"), "{body}");
        assert!(body.contains("\"t_spare\":3"), "{body}");
        assert!(body.contains("\"completed\":10"), "{body}");
        assert!(body.contains("\"degraded\":1"), "{body}");
        assert!(body.contains("\"listener\":5"), "{body}");
        assert!(body.contains("\"name\":\"general-dynamic\""), "{body}");
        assert!(body.contains("\"completed\":9"), "{body}");
    }

    #[test]
    fn readyz_rejects_outside_ready_phase() {
        let registry = Registry::new();
        let v = HealthView {
            phase: Phase::Draining,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        let resp = v.readyz(Duration::from_secs(2));
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers().get("retry-after"), Some("2"));
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("\"phase\":\"draining\""), "{body}");

        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        assert_eq!(v.readyz(Duration::from_secs(2)).status(), StatusCode::OK);
    }

    #[test]
    fn breaker_state_appears_in_payload() {
        let registry = Registry::new();
        let breaker = CircuitBreaker::new(staged_db::BreakerConfig::default());
        let v = HealthView {
            phase: Phase::Ready,
            breaker: Some(&breaker),
            registry: &registry,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(body.contains("\"state\":\"closed\""), "{body}");
        // No scheduler gauges registered → no scheduler object at all.
        assert!(!body.contains("scheduler"), "{body}");
    }

    #[test]
    fn connections_section_appears_once_governor_registers() {
        let registry = populated_registry();
        registry.gauge_fn("connections_open", &[], || 7.0);
        registry.counter_fn(
            "connections_rejected_total",
            &[("reason", "global-cap")],
            || 3,
        );
        registry.counter_fn(
            "connections_rejected_total",
            &[("reason", "per-ip-cap")],
            || 2,
        );
        registry.counter_fn("keepalive_harvested_total", &[], || 1);
        registry.counter_fn("keepalive_capped_total", &[], || 4);
        registry.counter_fn("slowloris_kills_total", &[], || 5);
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(body.contains("\"connections\":{\"open\":7"), "{body}");
        assert!(body.contains("\"rejected_global\":3"), "{body}");
        assert!(body.contains("\"rejected_per_ip\":2"), "{body}");
        assert!(body.contains("\"slowloris_kills\":5"), "{body}");

        // A registry without the governor families omits the section.
        let bare = populated_registry();
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &bare,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(!body.contains("\"connections\""), "{body}");
    }

    #[test]
    fn doc_cache_section_appears_once_cache_registers() {
        let registry = populated_registry();
        registry.gauge_fn("doc_cache_entries", &[], || 3.0);
        registry.counter_fn("doc_cache_hits_total", &[], || 12);
        registry.counter_fn("doc_cache_misses_total", &[], || 4);
        registry.counter_fn("doc_cache_publishes_total", &[], || 4);
        registry.counter_fn("doc_cache_invalidations_total", &[], || 1);
        registry.counter_fn("doc_cache_stale_discards_total", &[], || 0);
        registry.counter_fn("doc_cache_bytes_served_total", &[], || 4096);
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(body.contains("\"doc_cache\":{\"entries\":3"), "{body}");
        assert!(body.contains("\"hits\":12"), "{body}");
        assert!(body.contains("\"bytes_served\":4096"), "{body}");

        // A registry without the cache families omits the section.
        let bare = populated_registry();
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &bare,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(!body.contains("\"doc_cache\""), "{body}");
    }

    #[test]
    fn durability_section_appears_when_wal_attached() {
        let registry = populated_registry();
        let status = DurabilityStatus {
            mode: "always",
            last_checkpoint_age: Duration::from_millis(250),
            replay_count: 3,
            checkpoints: 2,
            wal: staged_db::WalStats {
                appends: 10,
                bytes: 640,
                fsyncs: 10,
                written_seq: 10,
                synced_seq: 10,
            },
            checkpoint_on_shutdown: true,
            poisoned: None,
        };
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: Some(status),
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(
            body.contains("\"durability\":{\"mode\":\"always\""),
            "{body}"
        );
        assert!(body.contains("\"last_checkpoint_age_ms\":250"), "{body}");
        assert!(body.contains("\"replayed\":3"), "{body}");
        assert!(body.contains("\"wal_appends\":10"), "{body}");
        assert!(body.contains("\"poisoned\":false"), "{body}");

        // In-memory servers omit the section entirely.
        let v = HealthView {
            phase: Phase::Ready,
            breaker: None,
            registry: &registry,
            durability: None,
        };
        let body = String::from_utf8(v.healthz().body().to_vec()).unwrap();
        assert!(!body.contains("\"durability\""), "{body}");
    }

    #[test]
    fn readiness_lifecycle() {
        let r = Readiness::new();
        assert_eq!(r.phase(), Phase::Starting);
        assert!(!r.is_ready());
        r.set_ready();
        assert!(r.is_ready());
        r.set_draining();
        assert_eq!(r.phase(), Phase::Draining);
        assert!(!r.is_ready());
    }

    #[test]
    fn health_paths_matched_exactly() {
        assert!(is_health_path("/healthz"));
        assert!(is_health_path("/readyz"));
        assert!(!is_health_path("/health"));
        assert!(!is_health_path("/healthz/x"));
    }

    #[test]
    fn observability_paths_matched_exactly() {
        assert!(is_observability_path("/metrics"));
        assert!(is_observability_path("/debug/traces"));
        assert!(is_observability_path("/debug/explain"));
        assert!(!is_observability_path("/metrics/"));
        assert!(!is_observability_path("/debug"));
        assert!(!is_observability_path("/debug/explain/x"));
        assert!(!is_health_path("/metrics"));
    }
}
