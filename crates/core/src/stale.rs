//! The stale-render cache: the middle rung of the degradation ladder.
//!
//! Successful renders of cache-marked pages ([`crate::AppBuilder::
//! stale_cacheable`]) are retained with a TTL. When fresh generation is
//! unavailable — the database circuit breaker is open, the worker's
//! connection pool is starved, or the request's deadline expired while
//! it sat in a queue — the staged server serves the stale copy with
//! `Warning: 110` / `Age` headers instead of failing outright, and
//! falls to `503` + `Retry-After` only when no stale copy exists
//! (fresh → stale → shed). The baseline server deliberately has no
//! such cache, preserving the paper's model comparison.

use staged_db::{ReadSet, WriteEvent};
use staged_http::{Body, Response};
use staged_sync::{OrderedMutex, Rank};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rank of the stale-render cache map (DESIGN.md §10). Above the
/// document cache's `core.doccache.state` (118): the invalidation
/// engine may touch both under one write event, doc cache first.
const ENTRIES_RANK: Rank = Rank::new(120);

/// The RFC 7234 warning attached to every stale response.
pub(crate) const STALE_WARNING: &str = "110 - \"Response is Stale\"";

struct Entry {
    body: Body,
    stored: Instant,
    /// What the render read — the invalidation predicate. `None` means
    /// the dependencies are unknown, so any write evicts the entry.
    reads: Option<Arc<ReadSet>>,
}

/// A successful lookup: the cached body plus how old it is.
pub(crate) struct StaleHit {
    pub body: Body,
    pub age: Duration,
}

impl StaleHit {
    /// Builds the degraded `200` carrying the staleness headers. The
    /// cached page is shared into the response, not copied.
    pub(crate) fn response(&self) -> Response {
        let mut resp = Response::html(self.body.clone());
        resp.headers_mut().set("Warning", STALE_WARNING);
        resp.headers_mut()
            .set("Age", self.age.as_secs().to_string());
        resp
    }
}

/// A TTL'd `(page, key) → rendered body` cache with a bounded entry
/// count (oldest-out eviction).
pub(crate) struct StaleCache {
    entries: OrderedMutex<HashMap<String, Entry>>,
    ttl: Duration,
    capacity: usize,
}

impl StaleCache {
    /// A cache holding at most `capacity` entries, each usable for
    /// `ttl` after insertion. `capacity == 0` disables the cache.
    pub(crate) fn new(ttl: Duration, capacity: usize) -> Self {
        StaleCache {
            entries: OrderedMutex::new(ENTRIES_RANK, "core.stale.entries", HashMap::new()),
            ttl,
            capacity,
        }
    }

    /// Retains one successful render with unknown read dependencies —
    /// any later write evicts it. Prefer [`StaleCache::put_tagged`].
    #[cfg(test)]
    pub(crate) fn put(&self, key: &str, body: impl Into<Body>) {
        self.put_tagged(key, body, None);
    }

    /// Retains one successful render — a reference-count bump on the
    /// shared body, never a copy. Refreshes the entry's age if the key
    /// is already present. `reads` is the render's collected read set;
    /// entries stored without one are conservatively evicted by *any*
    /// write.
    pub(crate) fn put_tagged(&self, key: &str, body: impl Into<Body>, reads: Option<Arc<ReadSet>>) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        if !entries.contains_key(key) && entries.len() >= self.capacity {
            // Evict expired entries first, then the oldest survivor.
            let ttl = self.ttl;
            entries.retain(|_, e| e.stored.elapsed() <= ttl);
            if entries.len() >= self.capacity {
                if let Some(oldest) = entries
                    .iter()
                    .min_by_key(|(_, e)| e.stored)
                    .map(|(k, _)| k.clone())
                {
                    entries.remove(&oldest);
                }
            }
        }
        entries.insert(
            key.to_string(),
            Entry {
                body: body.into(),
                stored: Instant::now(),
                reads,
            },
        );
    }

    /// Applies one committed write: evicts every entry whose read-set
    /// the write intersects, plus every untagged entry (unknown
    /// dependencies must be assumed touched). A brownout fallback then
    /// serves the freshest copy that survived, never one predating the
    /// write — the stale ladder degrades *age*, not *correctness*.
    pub(crate) fn invalidate(&self, event: &WriteEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        entries.retain(|_, e| match &e.reads {
            Some(reads) => !reads.depends_on(event),
            None => false,
        });
    }

    /// Whether the cache retains anything at all.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks a stale copy up; expired entries are dropped on access.
    pub(crate) fn get(&self, key: &str) -> Option<StaleHit> {
        let mut entries = self.entries.lock();
        let entry = entries.get(key)?;
        let age = entry.stored.elapsed();
        if age > self.ttl {
            entries.remove(key);
            return None;
        }
        Some(StaleHit {
            body: entry.body.clone(),
            age,
        })
    }

    /// Live entry count (expired-but-unevicted entries included).
    #[cfg(any(test, model))]
    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

/// Writes the normalized cache key for one request into `out`: the page
/// name plus its sorted query parameters, so `/product_detail?i_id=7`
/// and `?i_id=8` cache separately while parameter order doesn't split
/// entries. Shared by the stale ladder and the document cache — one key
/// space, one derivation.
///
/// Emits in selection order rather than materializing a sorted `Vec`,
/// so a reused `out` (the header stage's per-thread buffer) makes key
/// derivation allocation-free once the buffer has grown to page size.
/// Quadratic in the parameter count, which TPC-W bounds at a handful.
// lint: hot_path — runs per dynamic GET before cache lookup; must not
// allocate beyond the caller's reusable buffer.
pub fn write_key(out: &mut String, page: &str, params: &[(String, String)]) {
    out.clear();
    out.push_str(page);
    let mut last: Option<&(String, String)> = None;
    loop {
        let mut next: Option<&(String, String)> = None;
        for p in params {
            if let Some(done) = last {
                if p <= done {
                    continue;
                }
            }
            match next {
                Some(n) if p >= n => {}
                _ => next = Some(p),
            }
        }
        let Some(n) = next else { break };
        // Duplicated parameters are emitted as many times as they
        // appear, matching a sort-then-emit of the full list.
        for _ in 0..params.iter().filter(|p| *p == n).count() {
            out.push('&');
            out.push_str(&n.0);
            out.push('=');
            out.push_str(&n.1);
        }
        last = Some(n);
    }
}
// lint: end_hot_path

/// The allocating convenience form of [`write_key`] for tests.
#[cfg(test)]
pub(crate) fn cache_key(page: &str, params: &[(String, String)]) -> String {
    let mut key = String::with_capacity(page.len() + 16 * params.len());
    write_key(&mut key, page, params);
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_ttl_reports_age() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        c.put("home", "<h1>hi</h1>");
        let hit = c.get("home").expect("fresh entry");
        assert_eq!(&hit.body[..], b"<h1>hi</h1>");
        assert!(hit.age < Duration::from_secs(1));
        let resp = hit.response();
        assert_eq!(resp.headers().get("warning"), Some(STALE_WARNING));
        assert_eq!(resp.headers().get("age"), Some("0"));
    }

    #[test]
    fn expired_entries_are_dropped() {
        let c = StaleCache::new(Duration::from_millis(10), 8);
        c.put("home", "x");
        std::thread::sleep(Duration::from_millis(15));
        assert!(c.get("home").is_none());
        assert_eq!(c.len(), 0, "expired entry removed on access");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let c = StaleCache::new(Duration::from_secs(60), 2);
        c.put("a", "1");
        std::thread::sleep(Duration::from_millis(2));
        c.put("b", "2");
        std::thread::sleep(Duration::from_millis(2));
        c.put("c", "3");
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_none(), "oldest entry evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = StaleCache::new(Duration::from_secs(60), 0);
        c.put("a", "1");
        assert!(c.get("a").is_none());
    }

    #[test]
    fn refresh_updates_in_place_without_eviction() {
        let c = StaleCache::new(Duration::from_secs(60), 2);
        c.put("a", "1");
        c.put("b", "2");
        c.put("a", "1-new");
        assert_eq!(c.len(), 2);
        assert_eq!(&c.get("a").unwrap().body[..], b"1-new");
        assert!(c.get("b").is_some());
    }

    #[test]
    fn hits_share_the_stored_allocation() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        let body = Body::from("<h1>page</h1>");
        c.put("home", body.clone());
        let hit = c.get("home").unwrap();
        assert_eq!(hit.body.as_ptr(), body.as_ptr(), "get must not copy");
        let resp = hit.response();
        assert_eq!(
            resp.body().as_ptr(),
            body.as_ptr(),
            "response must not copy"
        );
    }

    fn reads_for_pk(id: i64) -> Arc<ReadSet> {
        let db = staged_db::Database::new();
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        let mut rs = ReadSet::new();
        db.execute_tracked(
            "SELECT v FROM item WHERE id = ?",
            &[staged_db::DbValue::Int(id)],
            Some(&mut rs),
        )
        .unwrap();
        Arc::new(rs)
    }

    fn item_event(id: i64) -> WriteEvent {
        let db = staged_db::Database::new();
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        let events = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        db.set_write_observer(move |e| sink.lock().unwrap().push(e.clone()));
        db.execute(
            "INSERT INTO item (id, v) VALUES (?, 0)",
            &[staged_db::DbValue::Int(id)],
        )
        .unwrap();
        let e = events.lock().unwrap().pop().unwrap();
        e
    }

    #[test]
    fn write_evicts_dependent_entries_only() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        c.put_tagged("item?id=1", "one", Some(reads_for_pk(1)));
        c.put_tagged("item?id=2", "two", Some(reads_for_pk(2)));
        c.invalidate(&item_event(1));
        assert!(c.get("item?id=1").is_none(), "dependent entry evicted");
        assert!(c.get("item?id=2").is_some(), "independent entry survives");
    }

    #[test]
    fn untagged_entries_are_evicted_by_any_write() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        c.put("home", "page");
        c.invalidate(&item_event(7));
        assert!(
            c.get("home").is_none(),
            "unknown dependencies must be assumed touched"
        );
    }

    #[test]
    fn write_key_matches_sort_then_emit() {
        let params = [
            ("y".to_string(), "2".to_string()),
            ("x".to_string(), "1".to_string()),
            ("y".to_string(), "2".to_string()),
            ("a".to_string(), "0".to_string()),
        ];
        let mut sorted = params.to_vec();
        sorted.sort_unstable();
        let mut reference = String::from("page");
        for (k, v) in &sorted {
            reference.push('&');
            reference.push_str(k);
            reference.push('=');
            reference.push_str(v);
        }
        let mut out = String::from("junk from a previous request");
        write_key(&mut out, "page", &params);
        assert_eq!(out, reference);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn doccache_under_stale_lock_is_a_deliberate_inversion() {
        // Documents the rank design: `core.doccache.state` (118) sits
        // below `core.stale.entries` (120), so doc-cache work while
        // holding the stale map is an inversion the detector must catch.
        let dc = crate::doccache::DocCache::new(Duration::from_secs(1), 4);
        let sc = StaleCache::new(Duration::from_secs(1), 4);
        let _guard = sc.entries.lock();
        let _ = dc.len();
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a = [
            ("x".to_string(), "1".to_string()),
            ("y".to_string(), "2".to_string()),
        ];
        let b = [
            ("y".to_string(), "2".to_string()),
            ("x".to_string(), "1".to_string()),
        ];
        assert_eq!(cache_key("page", &a), cache_key("page", &b));
        assert_ne!(cache_key("page", &a), cache_key("page", &[]));
        assert_eq!(cache_key("page", &[]), "page");
    }
}
