//! The stale-render cache: the middle rung of the degradation ladder.
//!
//! Successful renders of cache-marked pages ([`crate::AppBuilder::
//! stale_cacheable`]) are retained with a TTL. When fresh generation is
//! unavailable — the database circuit breaker is open, the worker's
//! connection pool is starved, or the request's deadline expired while
//! it sat in a queue — the staged server serves the stale copy with
//! `Warning: 110` / `Age` headers instead of failing outright, and
//! falls to `503` + `Retry-After` only when no stale copy exists
//! (fresh → stale → shed). The baseline server deliberately has no
//! such cache, preserving the paper's model comparison.

use staged_http::{Body, Response};
use staged_sync::{OrderedMutex, Rank};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Rank of the stale-render cache map (DESIGN.md §10).
const ENTRIES_RANK: Rank = Rank::new(120);

/// The RFC 7234 warning attached to every stale response.
pub(crate) const STALE_WARNING: &str = "110 - \"Response is Stale\"";

struct Entry {
    body: Body,
    stored: Instant,
}

/// A successful lookup: the cached body plus how old it is.
pub(crate) struct StaleHit {
    pub body: Body,
    pub age: Duration,
}

impl StaleHit {
    /// Builds the degraded `200` carrying the staleness headers. The
    /// cached page is shared into the response, not copied.
    pub(crate) fn response(&self) -> Response {
        let mut resp = Response::html(self.body.clone());
        resp.headers_mut().set("Warning", STALE_WARNING);
        resp.headers_mut()
            .set("Age", self.age.as_secs().to_string());
        resp
    }
}

/// A TTL'd `(page, key) → rendered body` cache with a bounded entry
/// count (oldest-out eviction).
pub(crate) struct StaleCache {
    entries: OrderedMutex<HashMap<String, Entry>>,
    ttl: Duration,
    capacity: usize,
}

impl StaleCache {
    /// A cache holding at most `capacity` entries, each usable for
    /// `ttl` after insertion. `capacity == 0` disables the cache.
    pub(crate) fn new(ttl: Duration, capacity: usize) -> Self {
        StaleCache {
            entries: OrderedMutex::new(ENTRIES_RANK, "core.stale.entries", HashMap::new()),
            ttl,
            capacity,
        }
    }

    /// Retains one successful render — a reference-count bump on the
    /// shared body, never a copy. Refreshes the entry's age if the key
    /// is already present.
    pub(crate) fn put(&self, key: &str, body: impl Into<Body>) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        if !entries.contains_key(key) && entries.len() >= self.capacity {
            // Evict expired entries first, then the oldest survivor.
            let ttl = self.ttl;
            entries.retain(|_, e| e.stored.elapsed() <= ttl);
            if entries.len() >= self.capacity {
                if let Some(oldest) = entries
                    .iter()
                    .min_by_key(|(_, e)| e.stored)
                    .map(|(k, _)| k.clone())
                {
                    entries.remove(&oldest);
                }
            }
        }
        entries.insert(
            key.to_string(),
            Entry {
                body: body.into(),
                stored: Instant::now(),
            },
        );
    }

    /// Looks a stale copy up; expired entries are dropped on access.
    pub(crate) fn get(&self, key: &str) -> Option<StaleHit> {
        let mut entries = self.entries.lock();
        let entry = entries.get(key)?;
        let age = entry.stored.elapsed();
        if age > self.ttl {
            entries.remove(key);
            return None;
        }
        Some(StaleHit {
            body: entry.body.clone(),
            age,
        })
    }

    /// Live entry count (expired-but-unevicted entries included).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

/// The cache key for one request: the page name plus its sorted query
/// parameters, so `/product_detail?i_id=7` and `?i_id=8` cache
/// separately while parameter order doesn't split entries.
pub(crate) fn cache_key(page: &str, params: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = params.iter().collect();
    sorted.sort_unstable();
    let mut key = String::with_capacity(page.len() + 16 * sorted.len());
    key.push_str(page);
    for (k, v) in sorted {
        key.push('&');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_ttl_reports_age() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        c.put("home", "<h1>hi</h1>");
        let hit = c.get("home").expect("fresh entry");
        assert_eq!(&hit.body[..], b"<h1>hi</h1>");
        assert!(hit.age < Duration::from_secs(1));
        let resp = hit.response();
        assert_eq!(resp.headers().get("warning"), Some(STALE_WARNING));
        assert_eq!(resp.headers().get("age"), Some("0"));
    }

    #[test]
    fn expired_entries_are_dropped() {
        let c = StaleCache::new(Duration::from_millis(10), 8);
        c.put("home", "x");
        std::thread::sleep(Duration::from_millis(15));
        assert!(c.get("home").is_none());
        assert_eq!(c.len(), 0, "expired entry removed on access");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let c = StaleCache::new(Duration::from_secs(60), 2);
        c.put("a", "1");
        std::thread::sleep(Duration::from_millis(2));
        c.put("b", "2");
        std::thread::sleep(Duration::from_millis(2));
        c.put("c", "3");
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_none(), "oldest entry evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = StaleCache::new(Duration::from_secs(60), 0);
        c.put("a", "1");
        assert!(c.get("a").is_none());
    }

    #[test]
    fn refresh_updates_in_place_without_eviction() {
        let c = StaleCache::new(Duration::from_secs(60), 2);
        c.put("a", "1");
        c.put("b", "2");
        c.put("a", "1-new");
        assert_eq!(c.len(), 2);
        assert_eq!(&c.get("a").unwrap().body[..], b"1-new");
        assert!(c.get("b").is_some());
    }

    #[test]
    fn hits_share_the_stored_allocation() {
        let c = StaleCache::new(Duration::from_secs(60), 8);
        let body = Body::from("<h1>page</h1>");
        c.put("home", body.clone());
        let hit = c.get("home").unwrap();
        assert_eq!(hit.body.as_ptr(), body.as_ptr(), "get must not copy");
        let resp = hit.response();
        assert_eq!(
            resp.body().as_ptr(),
            body.as_ptr(),
            "response must not copy"
        );
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a = [
            ("x".to_string(), "1".to_string()),
            ("y".to_string(), "2".to_string()),
        ];
        let b = [
            ("y".to_string(), "2".to_string()),
            ("x".to_string(), "1".to_string()),
        ];
        assert_eq!(cache_key("page", &a), cache_key("page", &b));
        assert_ne!(cache_key("page", &a), cache_key("page", &[]));
        assert_eq!(cache_key("page", &[]), "page");
    }
}
