//! The handle returned by both servers.

use crate::health::Readiness;
use crate::scheduler::ServiceTimeTracker;
use crate::stats::ServerStats;
use staged_db::{CircuitBreaker, FaultPlan};
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

/// A gauge closure reporting a live queue length.
pub(crate) type GaugeFn = Arc<dyn Fn() -> usize + Send + Sync>;

/// A closure that swaps the server's database fault plan at runtime.
pub(crate) type FaultFn = Arc<dyn Fn(Option<FaultPlan>) + Send + Sync>;

/// A point-in-time view of one worker pool's health, for overload and
/// fault-injection reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Pool name (matches the pool's thread-name prefix).
    pub name: String,
    /// Jobs fully processed.
    pub completed: u64,
    /// Handler panics survived (the worker kept serving).
    pub panicked: u64,
    /// Jobs refused at submission because the bounded queue was full.
    pub rejected: u64,
    /// Workers currently processing a job.
    pub busy: usize,
}

/// A running server: its address, statistics, live queue gauges, and
/// shutdown control.
///
/// Dropping the handle also shuts the server down (without blocking on
/// worker joins; call [`ServerHandle::shutdown`] for a fully joined
/// stop).
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    tracker: Arc<ServiceTimeTracker>,
    gauges: Vec<(String, GaugeFn)>,
    pools: Vec<(String, Arc<staged_pool::PoolStats>)>,
    readiness: Arc<Readiness>,
    set_fault: FaultFn,
    breaker: Option<Arc<CircuitBreaker>>,
    shutdown: Option<Box<dyn FnOnce() + Send>>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("gauges", &self.gauge_names())
            .finish()
    }
}

impl ServerHandle {
    // A private constructor with one caller per server; a builder would
    // be ceremony without benefit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        addr: SocketAddr,
        stats: Arc<ServerStats>,
        tracker: Arc<ServiceTimeTracker>,
        gauges: Vec<(String, GaugeFn)>,
        pools: Vec<(String, Arc<staged_pool::PoolStats>)>,
        readiness: Arc<Readiness>,
        set_fault: FaultFn,
        breaker: Option<Arc<CircuitBreaker>>,
        shutdown: Box<dyn FnOnce() + Send>,
    ) -> Self {
        ServerHandle {
            addr,
            stats,
            tracker,
            gauges,
            pools,
            readiness,
            set_fault,
            breaker,
            shutdown: Some(shutdown),
        }
    }

    /// The server's lifecycle phase, as `/readyz` reports it. Flips to
    /// [`crate::Phase::Draining`] the moment [`ServerHandle::shutdown`]
    /// begins.
    pub fn readiness(&self) -> &Arc<Readiness> {
        &self.readiness
    }

    /// Replaces the database fault plan on the **running** server —
    /// `None` heals the database. This is how chaos tests and the
    /// brownout benchmark switch between healthy, brownout, and outage
    /// phases without restarting (a restart would also reset the
    /// circuit breaker, hiding exactly the recovery being measured).
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        (self.set_fault)(plan);
    }

    /// The database circuit breaker, when one was configured
    /// ([`crate::ServerConfig::breaker`]).
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server statistics.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The live per-page data-generation tracker (the scheduler's
    /// classification input; on the baseline server it is
    /// measurement-only).
    pub fn service_times(&self) -> &Arc<ServiceTimeTracker> {
        &self.tracker
    }

    /// Names of the exposed gauges. The baseline server exposes
    /// `"worker"`; the staged server exposes the queue gauges
    /// `"header"`, `"static"`, `"general"`, `"lengthy"`, `"render"`
    /// (plus `"render-lengthy"` when the render split is on) and the
    /// scheduler gauges `"treserve"` and `"tspare"`.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Current value of a named queue gauge.
    pub fn gauge(&self, name: &str) -> Option<usize> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f())
    }

    /// A shareable closure for a named gauge, suitable for
    /// `staged_pool::QueueSampler::track`.
    pub fn gauge_fn(&self, name: &str) -> Option<impl Fn() -> usize + Send + Sync + 'static> {
        let f = self
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| Arc::clone(f))?;
        Some(move || f())
    }

    /// Point-in-time health of every worker pool: completions, panics
    /// survived, and capacity rejections (sheds). The baseline server
    /// reports one pool; the staged server reports all five (six with
    /// the render split).
    pub fn pool_snapshots(&self) -> Vec<PoolSnapshot> {
        self.pools
            .iter()
            .map(|(name, stats)| PoolSnapshot {
                name: name.clone(),
                completed: stats.completed.value(),
                panicked: stats.panicked.value(),
                rejected: stats.rejected.value(),
                busy: usize::try_from(stats.busy.value().max(0)).unwrap_or(0),
            })
            .collect()
    }

    /// Stops accepting connections, drains all pools, and joins every
    /// worker thread.
    pub fn shutdown(mut self) {
        if let Some(f) = self.shutdown.take() {
            f();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(f) = self.shutdown.take() {
            f();
        }
    }
}
