//! The handle returned by both servers.

use crate::health::Readiness;
use crate::scheduler::ServiceTimeTracker;
use crate::stats::ServerStats;
use staged_db::{CircuitBreaker, FaultPlan};
use staged_metrics::{Registry, Snapshot};
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

/// A closure that swaps the server's database fault plan at runtime.
pub(crate) type FaultFn = Arc<dyn Fn(Option<FaultPlan>) + Send + Sync>;

/// The shutdown closure installed by each server. It may fail: the
/// final durability checkpoint is part of graceful shutdown, and
/// swallowing its error would turn "cleanly stopped" into silent data
/// loss.
pub(crate) type ShutdownFn = Box<dyn FnOnce() -> Result<(), ShutdownError> + Send>;

/// A failure during graceful shutdown. The pools are already joined
/// when this is returned — the server *is* stopped — but some part of
/// the stop protocol (today: the final durability checkpoint) did not
/// complete, so the next open will replay the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownError {
    message: String,
}

impl ShutdownError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ShutdownError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shutdown incomplete: {}", self.message)
    }
}

impl std::error::Error for ShutdownError {}

/// A point-in-time view of one worker pool's health, for overload and
/// fault-injection reporting. Derived from the registry's
/// `pool_*{pool=…}` families by [`ServerHandle::pool_snapshots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Pool name (matches the pool's thread-name prefix).
    pub name: String,
    /// Jobs fully processed.
    pub completed: u64,
    /// Handler panics survived (the worker kept serving).
    pub panicked: u64,
    /// Jobs refused at submission because the bounded queue was full.
    pub rejected: u64,
    /// Workers currently processing a job.
    pub busy: usize,
}

impl Snapshot for PoolSnapshot {
    fn fields(&self, emit: &mut dyn FnMut(&'static str, f64)) {
        emit("completed", self.completed as f64);
        emit("panicked", self.panicked as f64);
        emit("rejected", self.rejected as f64);
        emit("busy", self.busy as f64);
    }
}

/// A running server: its address, statistics, metrics registry, and
/// shutdown control.
///
/// All introspection flows through one [`Registry`]
/// ([`ServerHandle::registry`]): queue depths, scheduler gauges, pool
/// counters, latency histograms. `/healthz`, `/metrics`, and the bench
/// bins read the same surface. The name-based accessors
/// ([`ServerHandle::gauge`], [`ServerHandle::gauge_fn`],
/// [`ServerHandle::pool_snapshots`]) remain as thin views over the
/// registry for existing callers.
///
/// Dropping the handle also shuts the server down (without blocking on
/// worker joins; call [`ServerHandle::shutdown`] for a fully joined
/// stop).
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    tracker: Arc<ServiceTimeTracker>,
    registry: Arc<Registry>,
    /// Legacy gauge names, in registration order, backing
    /// [`ServerHandle::gauge_names`].
    gauge_names: Vec<String>,
    readiness: Arc<Readiness>,
    set_fault: FaultFn,
    breaker: Option<Arc<CircuitBreaker>>,
    shutdown: Option<ShutdownFn>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("gauges", &self.gauge_names())
            .finish()
    }
}

/// Maps a legacy gauge name to its registry coordinates: the scheduler
/// gauges have their own families, everything else is a stage queue
/// depth.
fn gauge_coords(name: &str) -> (&'static str, Vec<(&'static str, &str)>) {
    match name {
        "tspare" => ("scheduler_t_spare", Vec::new()),
        "treserve" => ("scheduler_t_reserve", Vec::new()),
        _ => ("stage_queue_depth", vec![("stage", name)]),
    }
}

impl ServerHandle {
    // A private constructor with one caller per server; a builder would
    // be ceremony without benefit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        addr: SocketAddr,
        stats: Arc<ServerStats>,
        tracker: Arc<ServiceTimeTracker>,
        registry: Arc<Registry>,
        gauge_names: Vec<String>,
        readiness: Arc<Readiness>,
        set_fault: FaultFn,
        breaker: Option<Arc<CircuitBreaker>>,
        shutdown: ShutdownFn,
    ) -> Self {
        ServerHandle {
            addr,
            stats,
            tracker,
            registry,
            gauge_names,
            readiness,
            set_fault,
            breaker,
            shutdown: Some(shutdown),
        }
    }

    /// The server's metrics registry — queue depths, scheduler gauges,
    /// per-pool counters, and latency histograms under one roof. This
    /// is what `GET /metrics` encodes.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The server's lifecycle phase, as `/readyz` reports it. Flips to
    /// [`crate::Phase::Draining`] the moment [`ServerHandle::shutdown`]
    /// begins.
    pub fn readiness(&self) -> &Arc<Readiness> {
        &self.readiness
    }

    /// Replaces the database fault plan on the **running** server —
    /// `None` heals the database. This is how chaos tests and the
    /// brownout benchmark switch between healthy, brownout, and outage
    /// phases without restarting (a restart would also reset the
    /// circuit breaker, hiding exactly the recovery being measured).
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        (self.set_fault)(plan);
    }

    /// The database circuit breaker, when one was configured
    /// ([`crate::ServerConfig::breaker`]).
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server statistics.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The live per-page data-generation tracker (the scheduler's
    /// classification input; on the baseline server it is
    /// measurement-only).
    pub fn service_times(&self) -> &Arc<ServiceTimeTracker> {
        &self.tracker
    }

    /// Names of the exposed gauges. The baseline server exposes
    /// `"worker"`; the staged server exposes the queue gauges
    /// `"header"`, `"static"`, `"general"`, `"lengthy"`, `"render"`
    /// (plus `"render-lengthy"` when the render split is on) and the
    /// scheduler gauges `"treserve"` and `"tspare"`.
    ///
    /// Deprecated view: new code should read
    /// `stage_queue_depth{stage=…}` / `scheduler_t_spare` /
    /// `scheduler_t_reserve` from [`ServerHandle::registry`] instead.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauge_names.iter().map(String::as_str).collect()
    }

    /// Current value of a named queue gauge.
    ///
    /// Deprecated view over [`ServerHandle::registry`]; see
    /// [`ServerHandle::gauge_names`] for the name → registry mapping.
    pub fn gauge(&self, name: &str) -> Option<usize> {
        if !self.gauge_names.iter().any(|n| n == name) {
            return None;
        }
        let (metric, labels) = gauge_coords(name);
        let v = self.registry.value(metric, &labels)?;
        Some(v.max(0.0) as usize)
    }

    /// A shareable closure for a named gauge, suitable for
    /// `staged_pool::QueueSampler::track`.
    ///
    /// Deprecated view over [`ServerHandle::registry`]; new code should
    /// use [`Registry::gauge_read`] directly.
    pub fn gauge_fn(&self, name: &str) -> Option<impl Fn() -> usize + Send + Sync + 'static> {
        if !self.gauge_names.iter().any(|n| n == name) {
            return None;
        }
        let (metric, labels) = gauge_coords(name);
        let read = self.registry.gauge_read(metric, &labels)?;
        Some(move || read().max(0.0) as usize)
    }

    /// Point-in-time health of every worker pool: completions, panics
    /// survived, and capacity rejections (sheds). The baseline server
    /// reports one pool; the staged server reports all five (six with
    /// the render split).
    ///
    /// Derived from the registry's `pool_*{pool=…}` families.
    pub fn pool_snapshots(&self) -> Vec<PoolSnapshot> {
        self.registry
            .label_values("pool_completed_total", "pool")
            .into_iter()
            .map(|name| {
                let labels = [("pool", name.as_str())];
                let read =
                    |metric: &str| self.registry.value(metric, &labels).unwrap_or(0.0).max(0.0);
                PoolSnapshot {
                    completed: read("pool_completed_total") as u64,
                    panicked: read("pool_panics_total") as u64,
                    rejected: read("pool_rejected_total") as u64,
                    busy: read("pool_busy_workers") as usize,
                    name,
                }
            })
            .collect()
    }

    /// Stops accepting connections, drains all pools, joins every
    /// worker thread, and — when durability is configured with
    /// checkpoint-on-shutdown — writes the final checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ShutdownError`] when part of the stop protocol failed
    /// (today: the final durability flush/checkpoint). The server is
    /// stopped either way; on error the next open replays the WAL
    /// instead of starting from a fresh checkpoint.
    pub fn shutdown(mut self) -> Result<(), ShutdownError> {
        match self.shutdown.take() {
            Some(f) => f(),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(f) = self.shutdown.take() {
            // Nobody is left to observe the error on the drop path; the
            // explicit `shutdown()` is the fallible API.
            let _ = f();
        }
    }
}
