//! The paper's scheduling policy: per-page service-time tracking, the
//! quick/lengthy classifier, the `t_reserve` feedback controller, and
//! the Table 1 dispatch rules.

use staged_sync::atomic::{AtomicUsize, Ordering};
use staged_sync::{OrderedMutex, Rank};
use std::collections::HashMap;
use std::time::Duration;

/// Rank of the per-page service-time table (DESIGN.md §10): the
/// outermost core lock — the scheduler consults it before touching any
/// queue or cache.
const PAGES_RANK: Rank = Rank::new(100);

/// The scheduler's classification of a dynamic page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Average data-generation time at or below the cutoff.
    Quick,
    /// Average data-generation time above the cutoff (paper: 2 s).
    Lengthy,
}

/// Which dynamic pool a request is dispatched to (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPoolChoice {
    /// The general dynamic pool (quick requests, and lengthy ones while
    /// spare threads are abundant).
    General,
    /// The lengthy dynamic pool.
    Lengthy,
}

/// Tracks the running average of **data-generation** time per page.
///
/// The measurement window is the paper's: "from when the request is
/// acquired through when its unrendered template is placed in the
/// template rendering queue" (§3.3) — rendering time is excluded, which
/// the paper credits for the increased accuracy of its measurements.
/// Pages with no history default to *quick*.
///
/// # Examples
///
/// ```
/// use staged_core::{RequestClass, ServiceTimeTracker};
/// use std::time::Duration;
///
/// let tracker = ServiceTimeTracker::new(Duration::from_millis(2));
/// assert_eq!(tracker.classify("home"), RequestClass::Quick);
/// tracker.record("search", Duration::from_millis(20));
/// assert_eq!(tracker.classify("search"), RequestClass::Lengthy);
/// ```
#[derive(Debug)]
pub struct ServiceTimeTracker {
    cutoff: Duration,
    pages: OrderedMutex<HashMap<String, (Duration, u64)>>,
}

impl ServiceTimeTracker {
    /// Creates a tracker with the given quick/lengthy cutoff.
    pub fn new(cutoff: Duration) -> Self {
        ServiceTimeTracker {
            cutoff,
            pages: OrderedMutex::new(PAGES_RANK, "core.scheduler.pages", HashMap::new()),
        }
    }

    /// Records one data-generation measurement for `page`.
    pub fn record(&self, page: &str, elapsed: Duration) {
        let mut pages = self.pages.lock();
        match pages.get_mut(page) {
            Some((sum, count)) => {
                *sum += elapsed;
                *count += 1;
            }
            None => {
                pages.insert(page.to_string(), (elapsed, 1));
            }
        }
    }

    /// The running average for `page`, if any measurement exists.
    pub fn average(&self, page: &str) -> Option<Duration> {
        let pages = self.pages.lock();
        let (sum, count) = pages.get(page)?;
        Some(*sum / u32::try_from(*count).unwrap_or(u32::MAX).max(1))
    }

    /// Classifies a page; unknown pages are optimistically quick (their
    /// first observation reclassifies them).
    pub fn classify(&self, page: &str) -> RequestClass {
        match self.average(page) {
            Some(avg) if avg > self.cutoff => RequestClass::Lengthy,
            _ => RequestClass::Quick,
        }
    }

    /// The configured cutoff.
    pub fn cutoff(&self) -> Duration {
        self.cutoff
    }

    /// Number of pages with at least one measurement.
    pub fn tracked_pages(&self) -> usize {
        self.pages.lock().len()
    }

    /// A snapshot of every tracked page: `(page, average, samples)`,
    /// sorted by descending average — the scheduler's live view of the
    /// workload (the paper's per-page service-time table).
    pub fn snapshot(&self) -> Vec<(String, Duration, u64)> {
        let pages = self.pages.lock();
        let mut out: Vec<(String, Duration, u64)> = pages
            .iter()
            .map(|(name, (sum, count))| {
                let avg = *sum / u32::try_from(*count).unwrap_or(u32::MAX).max(1);
                (name.clone(), avg, *count)
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// The `t_reserve` feedback controller (paper §3.3).
///
/// `t_reserve` is "a dynamically adjusted value that reflects the
/// targeted number of threads that should be reserved for quick
/// requests" in the general pool; `t_spare` is the measured number of
/// idle general-pool threads. Once per tick:
///
/// * if `t_spare < t_reserve` (a possible traffic spike):
///   `t_reserve += (t_reserve − t_spare) + max(0, min − t_spare)`;
/// * if `t_spare > t_reserve`: `t_reserve −= (t_spare − t_reserve) / 2`,
///   never dropping below the configured minimum (spikes are assumed
///   over only slowly).
///
/// The unit test `controller_reproduces_paper_table_2` replays the
/// paper's Table 2 trace and checks every ∆ exactly.
#[derive(Debug)]
pub struct ReserveController {
    reserve: AtomicUsize,
    min: usize,
    max: usize,
}

impl ReserveController {
    /// Creates a controller with `t_reserve` starting at its minimum
    /// and no upper bound (the paper's Table 2 setting).
    pub fn new(min: usize) -> Self {
        Self::with_max(min, usize::MAX)
    }

    /// Creates a controller whose `t_reserve` is clamped to
    /// `[min, max]`.
    ///
    /// The cap is essential in a real deployment: `t_reserve` can only
    /// shrink while `t_spare > t_reserve`, and `t_spare` is bounded by
    /// the general pool size — so an uncapped `t_reserve` that grows
    /// past the pool size under a sustained spike can never recover,
    /// and lengthy requests would be locked out of the general pool
    /// permanently (the Table 1 overflow rule would never fire again).
    /// The staged server caps it at half the general pool.
    ///
    /// # Panics
    ///
    /// Panics if `max < min`.
    pub fn with_max(min: usize, max: usize) -> Self {
        assert!(max >= min, "t_reserve cap must be at least the minimum");
        ReserveController {
            reserve: AtomicUsize::new(min),
            min,
            max,
        }
    }

    /// The current `t_reserve`.
    pub fn reserve(&self) -> usize {
        self.reserve.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// The configured minimum.
    pub fn min(&self) -> usize {
        self.min
    }

    /// The configured maximum.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Applies one controller tick given the measured `t_spare`;
    /// returns the signed change to `t_reserve`.
    pub fn update(&self, tspare: usize) -> i64 {
        let old = self.reserve.load(Ordering::Relaxed); // lint: allow(relaxed)
        let new = if tspare < old {
            // Suspected traffic spike: grow by the shortfall, plus how
            // far tspare has dropped beneath the configured minimum —
            // clamped so the reserve stays recoverable (see
            // [`ReserveController::with_max`]).
            (old + (old - tspare) + self.min.saturating_sub(tspare)).min(self.max)
        } else if tspare > old {
            // Spike receding: shrink by half the surplus, floored at min.
            old.saturating_sub((tspare - old) / 2).max(self.min)
        } else {
            old
        };
        self.reserve.store(new, Ordering::Relaxed); // lint: allow(relaxed)
        new as i64 - old as i64
    }

    /// The paper's Table 1 dispatch rules: quick requests always go to
    /// the general pool; lengthy requests go to the general pool only
    /// while spare threads exceed the reserve.
    pub fn dispatch(&self, class: RequestClass, tspare: usize) -> DynamicPoolChoice {
        match class {
            RequestClass::Quick => DynamicPoolChoice::General,
            RequestClass::Lengthy => {
                if tspare > self.reserve() {
                    DynamicPoolChoice::General
                } else {
                    DynamicPoolChoice::Lengthy
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_running_average() {
        let t = ServiceTimeTracker::new(Duration::from_millis(2));
        t.record("p", Duration::from_millis(1));
        t.record("p", Duration::from_millis(3));
        assert_eq!(t.average("p"), Some(Duration::from_millis(2)));
        assert_eq!(t.average("q"), None);
        assert_eq!(t.tracked_pages(), 1);
    }

    #[test]
    fn classification_boundaries() {
        let t = ServiceTimeTracker::new(Duration::from_millis(2));
        // Exactly at the cutoff is quick ("take a long time" = above).
        t.record("at", Duration::from_millis(2));
        assert_eq!(t.classify("at"), RequestClass::Quick);
        t.record("above", Duration::from_millis(2) + Duration::from_nanos(1));
        assert_eq!(t.classify("above"), RequestClass::Lengthy);
        assert_eq!(t.classify("unknown"), RequestClass::Quick);
    }

    #[test]
    fn classification_moves_with_average() {
        let t = ServiceTimeTracker::new(Duration::from_millis(10));
        t.record("p", Duration::from_millis(100));
        assert_eq!(t.classify("p"), RequestClass::Lengthy);
        // Many fast observations drag the average back under the cutoff.
        for _ in 0..99 {
            t.record("p", Duration::from_millis(1));
        }
        assert_eq!(t.classify("p"), RequestClass::Quick);
    }

    /// Replays the paper's Table 2 exactly: minimum 20, tspare trace
    /// over ten seconds, expected ∆treserve each tick.
    #[test]
    fn controller_reproduces_paper_table_2() {
        let c = ReserveController::new(20);
        let trace: [(usize, i64, usize); 10] = [
            // (tspare, expected ∆, expected treserve after)
            (35, 0, 20),
            (24, 0, 20),
            (17, 6, 26),
            (21, 5, 31),
            (30, 1, 32),
            (36, -2, 30),
            (38, -4, 26),
            (37, -5, 21),
            (35, -1, 20),
            (39, 0, 20),
        ];
        for (i, (tspare, delta, after)) in trace.into_iter().enumerate() {
            let got = c.update(tspare);
            assert_eq!(got, delta, "tick {}: wrong ∆treserve", i + 1);
            assert_eq!(c.reserve(), after, "tick {}: wrong treserve", i + 1);
        }
    }

    #[test]
    fn controller_never_drops_below_min() {
        let c = ReserveController::new(5);
        for tspare in [100, 1000, 50, 7, 6] {
            c.update(tspare);
            assert!(c.reserve() >= 5);
        }
        assert_eq!(c.reserve(), 5);
    }

    #[test]
    fn controller_equal_spare_is_stable() {
        let c = ReserveController::new(10);
        assert_eq!(c.update(10), 0);
        assert_eq!(c.reserve(), 10);
    }

    #[test]
    fn capped_controller_recovers_after_sustained_spike() {
        // Uncapped, a sustained spike ratchets t_reserve past the pool
        // size and the overflow valve never reopens; the cap keeps it
        // recoverable.
        let c = ReserveController::with_max(8, 16);
        for _ in 0..50 {
            c.update(0); // pool fully busy for 50 ticks
        }
        assert_eq!(c.reserve(), 16);
        // Load recedes: a 32-thread pool reports tspare = 32.
        c.update(32);
        assert!(c.reserve() < 16, "reserve must shrink once spare recovers");
        for _ in 0..20 {
            c.update(32);
        }
        assert_eq!(c.reserve(), 8, "reserve returns to its minimum");
    }

    #[test]
    #[should_panic(expected = "t_reserve cap must be at least the minimum")]
    fn inverted_bounds_rejected() {
        let _ = ReserveController::with_max(10, 5);
    }

    #[test]
    fn controller_grows_fast_under_starvation() {
        let c = ReserveController::new(20);
        // tspare = 0: treserve += treserve + min
        let delta = c.update(0);
        assert_eq!(delta, 40);
        assert_eq!(c.reserve(), 60);
    }

    /// The three rows of the paper's Table 1.
    #[test]
    fn dispatch_rules_match_table_1() {
        let c = ReserveController::new(20); // treserve = 20
        assert_eq!(
            c.dispatch(RequestClass::Quick, 0),
            DynamicPoolChoice::General
        );
        assert_eq!(
            c.dispatch(RequestClass::Quick, 100),
            DynamicPoolChoice::General
        );
        // Lengthy with tspare > treserve → general.
        assert_eq!(
            c.dispatch(RequestClass::Lengthy, 21),
            DynamicPoolChoice::General
        );
        // Lengthy with tspare <= treserve → lengthy.
        assert_eq!(
            c.dispatch(RequestClass::Lengthy, 20),
            DynamicPoolChoice::Lengthy
        );
        assert_eq!(
            c.dispatch(RequestClass::Lengthy, 3),
            DynamicPoolChoice::Lengthy
        );
    }

    #[test]
    fn snapshot_sorts_by_average_descending() {
        let t = ServiceTimeTracker::new(Duration::from_millis(1));
        t.record("fast", Duration::from_micros(100));
        t.record("slow", Duration::from_millis(50));
        t.record("slow", Duration::from_millis(70));
        t.record("mid", Duration::from_millis(5));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].0, "slow");
        assert_eq!(snap[0].1, Duration::from_millis(60));
        assert_eq!(snap[0].2, 2);
        assert_eq!(snap[1].0, "mid");
        assert_eq!(snap[2].0, "fast");
    }

    #[test]
    fn tracker_is_thread_safe() {
        use std::sync::Arc;
        use std::thread;
        let t = Arc::new(ServiceTimeTracker::new(Duration::from_millis(1)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    for _ in 0..250 {
                        t.record("p", Duration::from_micros(500));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.average("p"), Some(Duration::from_micros(500)));
    }
}
