//! Application-level errors surfaced as HTTP 500s.

use staged_db::DbError;
use staged_templates::TemplateError;
use std::error::Error;
use std::fmt;

/// An error raised by a page handler (or the machinery around it).
/// Servers convert these into `500 Internal Server Error` responses;
/// the worker thread itself always survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// A database operation failed.
    Db(String),
    /// Template lookup or rendering failed.
    Template(String),
    /// Anything else a handler wants to report.
    Handler(String),
    /// A transient resource failure (the worker's database connection
    /// died, the pool is starved). Servers answer `503 Service
    /// Unavailable` — the request may succeed on retry — instead of the
    /// `500` the other variants get.
    Unavailable(String),
}

impl AppError {
    /// Creates a handler error from any message.
    pub fn handler(msg: impl Into<String>) -> Self {
        AppError::Handler(msg.into())
    }

    /// `true` for transient failures that should surface as `503`
    /// rather than `500`.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, AppError::Unavailable(_))
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Db(m) => write!(f, "database error: {m}"),
            AppError::Template(m) => write!(f, "template error: {m}"),
            AppError::Handler(m) => write!(f, "handler error: {m}"),
            AppError::Unavailable(m) => write!(f, "service unavailable: {m}"),
        }
    }
}

impl Error for AppError {}

impl From<DbError> for AppError {
    fn from(e: DbError) -> Self {
        if e.is_connection_lost() || e.is_circuit_open() {
            AppError::Unavailable(e.to_string())
        } else {
            AppError::Db(e.to_string())
        }
    }
}

impl From<TemplateError> for AppError {
    fn from(e: TemplateError) -> Self {
        AppError::Template(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: AppError = DbError::NoSuchTable("t".into()).into();
        assert!(e.to_string().contains("no such table: t"));
        let e: AppError = TemplateError::NotFound("x".into()).into();
        assert!(e.to_string().contains("template not found"));
        assert_eq!(AppError::handler("boom").to_string(), "handler error: boom");
    }

    #[test]
    fn connection_loss_maps_to_unavailable() {
        let e: AppError = DbError::ConnectionLost.into();
        assert!(e.is_unavailable(), "lost connections are retryable: {e}");
        let e: AppError = DbError::NoSuchTable("t".into()).into();
        assert!(!e.is_unavailable(), "query errors stay 500s");
    }

    #[test]
    fn open_breaker_maps_to_unavailable() {
        let e: AppError = DbError::CircuitOpen.into();
        assert!(e.is_unavailable(), "breaker rejections are retryable: {e}");
    }
}
