//! The conventional thread-per-request server (paper §2.2, Figure 4).

use crate::app::{App, PageOutcome};
use crate::config::ServerConfig;
use crate::error::AppError;
use crate::handle::{GaugeFn, ServerHandle};
use crate::scheduler::{RequestClass, ServiceTimeTracker};
use crate::stats::{RequestKind, ServerStats};
use staged_db::{ConnectionPool, Database, PooledConnection};
use staged_http::{Connection, HttpError, Request, Response, StatusCode};
use staged_pool::{PoolConfig, WorkerPool};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The unmodified request-processing model: a single listener thread
/// feeds accepted connections to one pool of worker threads; each
/// worker owns a database connection for its lifetime and carries each
/// request through header parsing, data generation, **and** template
/// rendering.
///
/// This is the paper's comparison baseline. Its pathology under heavy
/// load is structural: the pool size is coupled to the connection count,
/// so threads rendering templates or serving static files hold
/// connections idle, and short requests queue behind lengthy ones in
/// the single queue (the Figure 7 spikes).
#[derive(Debug)]
pub struct BaselineServer;

impl BaselineServer {
    /// Binds, spawns the worker pool (each worker checking a database
    /// connection out for its lifetime), and starts the listener.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listen address.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`ServerConfig::validate`]).
    pub fn start(
        config: ServerConfig,
        app: App,
        db: Arc<Database>,
    ) -> io::Result<ServerHandle> {
        config.validate();
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(config.stats_bucket));
        // The baseline has no scheduler; the tracker exists purely so
        // completions can be labelled quick/lengthy for the Figure 10
        // breakdown, using the same signal the staged server schedules
        // on.
        let tracker = Arc::new(ServiceTimeTracker::new(config.lengthy_cutoff));
        let connections = ConnectionPool::new(db, config.db_connections);

        let worker_stats = Arc::clone(&stats);
        let worker_tracker = Arc::clone(&tracker);
        let worker_app = app.clone();
        let limits = config.limits;
        let read_timeout = config.read_timeout;
        let pool = WorkerPool::new(
            PoolConfig::new("baseline-worker", config.baseline_workers),
            |_| connections.get(),
            move |db_conn: &mut PooledConnection, stream: TcpStream| {
                let _ = stream.set_read_timeout(read_timeout);
                serve_connection(
                    stream,
                    limits,
                    &worker_app,
                    db_conn,
                    &worker_tracker,
                    &worker_stats,
                );
            },
        );

        let queue = pool.queue_handle();
        let gauge_queue = pool.queue_handle();
        let gauges: Vec<(String, GaugeFn)> = vec![(
            "worker".to_string(),
            Arc::new(move || gauge_queue.len()),
        )];

        let stop = Arc::new(AtomicBool::new(false));
        let listener_stop = Arc::clone(&stop);
        let drop_stats = Arc::clone(&stats);
        let listener_thread = std::thread::Builder::new()
            .name("baseline-listener".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if listener_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match incoming {
                        Ok(stream) => {
                            if queue.push(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => drop_stats.dropped_connections.increment(),
                    }
                }
            })
            .expect("failed to spawn listener thread");

        let shutdown = Box::new(move || {
            stop.store(true, Ordering::Relaxed);
            // Poke the blocking accept() so the listener notices.
            let _ = TcpStream::connect(addr);
            let _ = listener_thread.join();
            pool.shutdown();
        });

        Ok(ServerHandle::new(addr, stats, tracker, gauges, shutdown))
    }
}

/// Serves every request on one connection, thread-per-request style:
/// the whole request lifecycle runs on the calling worker thread.
fn serve_connection(
    stream: TcpStream,
    limits: staged_http::ParseLimits,
    app: &App,
    db_conn: &PooledConnection,
    tracker: &ServiceTimeTracker,
    stats: &ServerStats,
) {
    let mut conn = Connection::with_limits(stream, limits);
    loop {
        let request = match conn.read_request() {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed { clean: true }) => return,
            Err(e) => {
                if e.wants_bad_request() {
                    let mut resp = Response::error(StatusCode::BAD_REQUEST);
                    resp.set_close();
                    let _ = conn.send(&resp);
                    stats.errors.increment();
                } else {
                    stats.dropped_connections.increment();
                }
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let (response, kind) = process_request(app, &request, db_conn, tracker, stats);
        if conn.send_for_method(request.method(), &response).is_err() {
            stats.dropped_connections.increment();
            return;
        }
        stats.record_completion(kind);
        if !keep_alive {
            return;
        }
    }
}

/// Full request processing on the current thread (parse already done):
/// static lookup, or handler + inline template rendering.
fn process_request(
    app: &App,
    request: &Request,
    db_conn: &PooledConnection,
    tracker: &ServiceTimeTracker,
    stats: &ServerStats,
) -> (Response, RequestKind) {
    if request.line.is_static() {
        let response = app.statics().response_for(request.path());
        app.charge_static();
        return (response, RequestKind::Static);
    }
    let Some((route, captures)) = app.route(request.path()) else {
        stats.errors.increment();
        return (
            Response::error(StatusCode::NOT_FOUND),
            RequestKind::QuickDynamic,
        );
    };
    // Classify from history *before* this request, mirroring the staged
    // server's dispatch-time decision.
    let class = tracker.classify(&route.name);
    let kind = match class {
        RequestClass::Quick => RequestKind::QuickDynamic,
        RequestClass::Lengthy => RequestKind::LengthyDynamic,
    };
    let started = Instant::now();
    let merged;
    let request = if captures.is_empty() {
        request
    } else {
        merged = merge_captures(request, &captures);
        &merged
    };
    let outcome = run_handler(route, request, db_conn, stats);
    // Data-generation time excludes rendering, as in the staged model.
    tracker.record(&route.name, started.elapsed());
    let response = match outcome {
        Ok(PageOutcome::Body(resp)) => resp,
        Ok(PageOutcome::Template { name, context }) => {
            match app.templates().render(&name, &context) {
                Ok(html) => {
                    app.charge_render(html.len());
                    Response::html(html)
                }
                Err(_) => {
                    stats.errors.increment();
                    Response::error(StatusCode::INTERNAL_SERVER_ERROR)
                }
            }
        }
        Err(_) => {
            stats.errors.increment();
            Response::error(StatusCode::INTERNAL_SERVER_ERROR)
        }
    };
    (response, kind)
}

/// Merges pattern captures into the request's parameter list (captures
/// are appended, so query parameters of the same name win).
pub(crate) fn merge_captures(
    request: &Request,
    captures: &staged_http::RouteParams,
) -> Request {
    let mut merged = request.clone();
    merged
        .params
        .extend(captures.iter().map(|(k, v)| (k.to_string(), v.to_string())));
    merged
}

/// Runs a route handler, converting panics into errors so the worker
/// thread (and its database connection) survives.
pub(crate) fn run_handler(
    route: &crate::app::Route,
    request: &Request,
    db_conn: &PooledConnection,
    stats: &ServerStats,
) -> Result<PageOutcome, AppError> {
    match panic::catch_unwind(AssertUnwindSafe(|| (route.handler)(request, db_conn))) {
        Ok(result) => result,
        Err(_) => {
            stats.handler_panics.increment();
            Err(AppError::handler("handler panicked"))
        }
    }
}
