//! The conventional thread-per-request server (paper §2.2, Figure 4).

use crate::app::{App, PageOutcome};
use crate::config::ServerConfig;
use crate::error::AppError;
use crate::governor::{ConnectionGovernor, GovernedStream};
use crate::handle::{FaultFn, ServerHandle};
use crate::health::{self, HealthView, Readiness};
use crate::overload::{overload_response, ChaosAction, DbSlot, RetryEstimator};
use crate::scheduler::{RequestClass, ServiceTimeTracker};
use crate::staged::{
    register_page_tracker, register_plan_observer, register_pool, register_stage, setup_durability,
    shutdown_checkpoint,
};
use crate::stats::{RequestKind, ServerStats, ShedPoint};
use staged_db::{CircuitBreaker, ConnectionPool, Database, PooledConnection};
use staged_http::{Connection, HttpError, ParseLimits, Request, Response, StatusCode};
use staged_metrics::Registry;
use staged_pool::{PoolConfig, PoolStats, PushError, SyncQueue, WorkerPool};
use staged_sync::atomic::{AtomicBool, Ordering};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a baseline worker needs to serve a connection.
struct WorkerCtx {
    app: App,
    tracker: Arc<ServiceTimeTracker>,
    stats: Arc<ServerStats>,
    limits: ParseLimits,
    /// Per-request time budget (`None` disables deadline checking).
    budget: Option<Duration>,
    /// Adaptive `Retry-After` advice for shed responses.
    retry: RetryEstimator,
    /// The worker queue, held for health reporting and retry advice.
    queue: Arc<SyncQueue<(GovernedStream, Instant)>>,
    /// The worker pool's stats, held for health reporting.
    pool_stats: Arc<PoolStats>,
    /// Lifecycle phase, served by `/readyz`.
    readiness: Arc<Readiness>,
    /// The database circuit breaker, surfaced in the health payloads.
    breaker: Option<Arc<CircuitBreaker>>,
    /// The metrics registry; `/metrics` and `/healthz` both read it.
    registry: Arc<Registry>,
    /// Connection-admission caps (global/per-IP concurrency, keep-alive
    /// quotas, idle harvesting) — same machinery as the staged server.
    governor: ConnectionGovernor,
    /// The database, kept for the health payload's durability section
    /// (`None` status on in-memory databases omits the section).
    db: Arc<Database>,
    /// Set when shutdown begins: keep-alive connections are closed
    /// after their in-flight response instead of being read again.
    draining: Arc<AtomicBool>,
}

impl WorkerCtx {
    /// Builds the health payload from the metrics registry. The
    /// baseline registers one queue, one pool, and no scheduler gauges.
    fn health_response(&self, path: &str) -> Response {
        let view = HealthView {
            phase: self.readiness.phase(),
            breaker: self.breaker.as_deref(),
            registry: &self.registry,
            durability: self.db.durability_status(),
        };
        if path == "/readyz" {
            view.readyz(self.retry.advise())
        } else {
            view.healthz()
        }
    }
}

/// The unmodified request-processing model: a single listener thread
/// feeds accepted connections to one pool of worker threads; each
/// worker owns a database connection for its lifetime and carries each
/// request through header parsing, data generation, **and** template
/// rendering.
///
/// This is the paper's comparison baseline. Its pathology under heavy
/// load is structural: the pool size is coupled to the connection count,
/// so threads rendering templates or serving static files hold
/// connections idle, and short requests queue behind lengthy ones in
/// the single queue (the Figure 7 spikes).
///
/// Overload semantics match the staged server's: the worker queue is
/// bounded, the listener sheds with `503` + `Retry-After` instead of
/// blocking the accept loop, and connections whose queue wait exceeds
/// `request_deadline` are answered `503` at dequeue.
#[derive(Debug)]
pub struct BaselineServer;

impl BaselineServer {
    /// Binds, spawns the worker pool (each worker checking a database
    /// connection out for its lifetime), and starts the listener.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listen address.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`ServerConfig::validate`]).
    pub fn start(config: ServerConfig, app: App, db: Arc<Database>) -> io::Result<ServerHandle> {
        config.validate();
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(config.stats_bucket));
        // The baseline has no scheduler; the tracker exists purely so
        // completions can be labelled quick/lengthy for the Figure 10
        // breakdown, using the same signal the staged server schedules
        // on.
        let tracker = Arc::new(ServiceTimeTracker::new(config.lengthy_cutoff));
        let durable_db = Arc::clone(&db);
        let connections = ConnectionPool::new(db, config.db_connections);
        connections.set_fault_plan(config.fault_plan);
        connections.set_breaker(config.breaker);
        let breaker = connections.breaker();
        let fault_pool = connections.clone();
        let set_fault: FaultFn = Arc::new(move |plan| fault_pool.set_fault_plan(plan));
        let readiness = Arc::new(Readiness::new());
        let draining = Arc::new(AtomicBool::new(false));

        // Queue and stats exist before the pool so the worker context
        // can report them on `/healthz` and feed the retry estimator.
        let queue = Arc::new(SyncQueue::<(GovernedStream, Instant)>::bounded(
            config.baseline_queue_bound(),
        ));
        let pool_stats = Arc::new(PoolStats::default());
        let governor = ConnectionGovernor::new(config.governor);

        // One registry for `/metrics`, `/healthz`, and the handle's
        // accessors — the baseline registers its single stage and pool
        // under the same family names the staged server uses, so
        // dashboards and the bench bins read both models identically.
        let registry = Arc::new(Registry::new());
        register_stage(&registry, "worker", &queue);
        register_pool(&registry, "baseline-worker", "worker", &pool_stats);
        stats.register_into(&registry);
        register_page_tracker(&registry, &tracker);
        register_plan_observer(&registry, &durable_db);
        governor.register_into(&registry);
        setup_durability(&config, &registry, &durable_db)?;

        let retry = {
            let q = Arc::clone(&queue);
            let st = Arc::clone(&stats);
            RetryEstimator::new(
                config.retry_after,
                Box::new(move || q.len()),
                Box::new(move || st.total_completed()),
            )
        };

        let ctx = Arc::new(WorkerCtx {
            app,
            tracker: Arc::clone(&tracker),
            stats: Arc::clone(&stats),
            limits: config.limits,
            budget: config.request_deadline,
            retry,
            queue: Arc::clone(&queue),
            pool_stats: Arc::clone(&pool_stats),
            readiness: Arc::clone(&readiness),
            breaker: breaker.clone(),
            registry: Arc::clone(&registry),
            governor,
            db: Arc::clone(&durable_db),
            draining: Arc::clone(&draining),
        });

        let worker_ctx = Arc::clone(&ctx);
        let db_acquire_timeout = config.db_acquire_timeout;
        let db_acquire_retries = config.db_acquire_retries;
        let pool = WorkerPool::with_parts(
            Arc::clone(&queue),
            Arc::clone(&pool_stats),
            PoolConfig::new("baseline-worker", config.baseline_workers),
            |_| DbSlot::new(&connections, db_acquire_timeout, db_acquire_retries),
            move |slot: &mut DbSlot, (stream, arrived): (GovernedStream, Instant)| {
                // Queue-wait check: a connection that waited longer
                // than the whole request budget is shed, not served.
                if worker_ctx.budget.is_some_and(|b| arrived.elapsed() > b) {
                    worker_ctx.stats.deadline_expired.increment();
                    let mut conn = Connection::with_limits(stream, worker_ctx.limits);
                    if conn
                        .send(&overload_response(worker_ctx.retry.advise()))
                        .is_ok()
                    {
                        // The request was never read; drain it so the
                        // close doesn't RST the 503 away.
                        crate::overload::drain_before_close(conn.stream_mut().tcp());
                    }
                    return;
                }
                serve_connection(stream, slot, &worker_ctx);
            },
        );

        // Legacy gauge name for `ServerHandle::gauge_names`, mapped to
        // `stage_queue_depth{stage="worker"}` by the handle.
        let gauge_names = vec!["worker".to_string()];

        let stop = Arc::new(AtomicBool::new(false));
        let listener_stop = Arc::clone(&stop);
        let listen_ctx = Arc::clone(&ctx);
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let chaos = config.chaos;
        let listener_thread = std::thread::Builder::new()
            .name("baseline-listener".to_string())
            .spawn(move || {
                let mut conn_seq: u64 = 0;
                for incoming in listener.incoming() {
                    if listener_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match incoming {
                        Ok(stream) => {
                            let seq = conn_seq;
                            conn_seq += 1;
                            match chaos.map_or(ChaosAction::Pass, |c| c.decide(seq)) {
                                ChaosAction::Pass => {}
                                ChaosAction::Kill => {
                                    listen_ctx.stats.chaos_killed.increment();
                                    drop(stream);
                                    continue;
                                }
                                ChaosAction::Stall => {
                                    listen_ctx.stats.chaos_stalled.increment();
                                    std::thread::sleep(chaos.expect("stall implies chaos").stall);
                                }
                            }
                            let _ = stream.set_read_timeout(read_timeout);
                            let _ = stream.set_write_timeout(write_timeout);
                            // Admission control: over-cap connections are
                            // turned away with the well-formed 503 +
                            // Retry-After, not silently reset.
                            let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
                            let stream = match listen_ctx.governor.admit(peer_ip) {
                                Ok(permit) => GovernedStream::new(stream, Some(permit)),
                                Err(_) => {
                                    let mut conn = Connection::with_limits(
                                        GovernedStream::new(stream, None),
                                        listen_ctx.limits,
                                    );
                                    let resp = overload_response(listen_ctx.retry.advise());
                                    if conn.send(&resp).is_err() {
                                        listen_ctx.stats.dropped_connections.increment();
                                    } else {
                                        crate::overload::drain_before_close(
                                            conn.stream_mut().tcp(),
                                        );
                                    }
                                    continue;
                                }
                            };
                            // Non-blocking enqueue: a full queue sheds
                            // the connection instead of stalling accept.
                            match queue.try_push((stream, Instant::now())) {
                                Ok(()) => {}
                                Err(PushError::Full((stream, _))) => {
                                    pool_stats.rejected.increment();
                                    listen_ctx.stats.record_shed(ShedPoint::Listener);
                                    let mut conn =
                                        Connection::with_limits(stream, listen_ctx.limits);
                                    if conn
                                        .send(&overload_response(listen_ctx.retry.advise()))
                                        .is_err()
                                    {
                                        listen_ctx.stats.dropped_connections.increment();
                                    } else {
                                        crate::overload::drain_before_close(
                                            conn.stream_mut().tcp(),
                                        );
                                    }
                                }
                                Err(PushError::Closed(_)) => break,
                            }
                        }
                        Err(_) => listen_ctx.stats.dropped_connections.increment(),
                    }
                }
            })
            .expect("failed to spawn listener thread");

        // The listener is live: accepted connections will be served.
        readiness.set_ready();

        let drain_ctx = Arc::clone(&ctx);
        let drain_deadline = config.drain_deadline;
        let shutdown: crate::handle::ShutdownFn = Box::new(move || {
            // Drain-aware shutdown: advertise not-ready, close
            // keep-alive connections after their in-flight response,
            // stop accepting — then let every already-accepted request
            // finish before closing the pool.
            drain_ctx.readiness.set_draining();
            drain_ctx.draining.store(true, Ordering::Release);
            stop.store(true, Ordering::Release);
            // Poke the blocking accept() so the listener notices.
            let _ = TcpStream::connect(addr);
            let _ = listener_thread.join();
            // `pool.shutdown()` drains the queue's backlog, but only
            // this bounded wait covers the window between a worker
            // popping a connection and finishing its response.
            let deadline = Instant::now() + drain_deadline;
            while (!drain_ctx.queue.is_empty() || drain_ctx.pool_stats.busy.value() > 0)
                && Instant::now() <= deadline
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            pool.shutdown();
            // Last: with every worker joined, checkpoint the database
            // so a graceful stop never replays on the next open.
            shutdown_checkpoint(&drain_ctx.db)
        });

        Ok(ServerHandle::new(
            addr,
            stats,
            tracker,
            registry,
            gauge_names,
            readiness,
            set_fault,
            breaker,
            shutdown,
        ))
    }
}

/// Serves every request on one connection, thread-per-request style:
/// the whole request lifecycle runs on the calling worker thread.
fn serve_connection(stream: GovernedStream, slot: &mut DbSlot, ctx: &WorkerCtx) {
    let mut conn = Connection::with_limits(stream, ctx.limits);
    loop {
        let request = match conn.read_request() {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed { clean: true }) => return,
            Err(e) => {
                // Map the parse failure to its real status — 400 for
                // malformed, 431/413 for oversized headers/bodies, 408
                // for an expired lifecycle budget — instead of a silent
                // drop (or a blanket 400).
                match e.response_status() {
                    Some(status) => {
                        if e.is_lifecycle_timeout() {
                            ctx.stats.slowloris_kills.increment();
                        }
                        let mut resp = Response::error(status);
                        resp.set_close();
                        let _ = conn.send(&resp);
                        ctx.stats.errors.increment();
                    }
                    None => ctx.stats.dropped_connections.increment(),
                }
                return;
            }
        };
        let keep_alive = request.keep_alive();
        // Health endpoints are answered ahead of routing, without a
        // database round trip, and without counting as completions —
        // monitoring traffic must not skew the goodput series.
        if health::is_health_path(request.path()) || health::is_observability_path(request.path()) {
            let response = if health::is_health_path(request.path()) {
                ctx.health_response(request.path())
            } else if request.path() == "/metrics" {
                Response::metrics_text(ctx.registry.encode_prometheus())
            } else if request.path() == "/debug/explain" {
                health::explain_response(&ctx.db, request.param("route"))
            } else {
                // The baseline is untraced (preserving the paper's
                // model comparison); the ring is always empty.
                Response::with_content_type("application/json", "{\"traces\":[]}")
            };
            if conn.send_for_method(request.method(), &response).is_err() {
                ctx.stats.dropped_connections.increment();
                return;
            }
            let server_closed = response
                .headers()
                .get("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
            if !keep_alive || server_closed || ctx.draining.load(Ordering::Acquire) {
                return;
            }
            if keepalive_over_budget(&mut conn, ctx) {
                return;
            }
            continue;
        }
        let (response, kind) = process_request(ctx, &request, slot);
        if conn.send_for_method(request.method(), &response).is_err() {
            ctx.stats.dropped_connections.increment();
            return;
        }
        ctx.stats.record_completion(kind);
        // Responses the server marked `Connection: close` (503s) end
        // the connection even if the client asked for keep-alive — as
        // does a draining server, so shutdown isn't held open by idle
        // keep-alive connections.
        let server_closed = response
            .headers()
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !keep_alive || server_closed || ctx.draining.load(Ordering::Acquire) {
            return;
        }
        if keepalive_over_budget(&mut conn, ctx) {
            return;
        }
    }
}

/// Keep-alive lifecycle caps: `true` when this connection has served
/// its request quota, or when open connections sit at the governor's
/// harvest watermark (an idle keep-alive connection is then closed to
/// free its admission slot for a new peer).
fn keepalive_over_budget(conn: &mut Connection<GovernedStream>, ctx: &WorkerCtx) -> bool {
    let served = conn.stream_mut().count_served();
    ctx.governor.keepalive_exhausted(served) || ctx.governor.harvest_idle()
}

/// Full request processing on the current thread (parse already done):
/// static lookup, or handler + inline template rendering.
fn process_request(
    ctx: &WorkerCtx,
    request: &Request,
    slot: &mut DbSlot,
) -> (Response, RequestKind) {
    if request.line.is_static() {
        let response = ctx
            .app
            .statics()
            .response_for_request(request.path(), &request.headers);
        ctx.app.charge_static();
        return (response, RequestKind::Static);
    }
    let Some((route, captures)) = ctx.app.route(request.path()) else {
        ctx.stats.errors.increment();
        return (
            Response::error(StatusCode::NOT_FOUND),
            RequestKind::QuickDynamic,
        );
    };
    // Classify from history *before* this request, mirroring the staged
    // server's dispatch-time decision.
    let class = ctx.tracker.classify(&route.name);
    let kind = match class {
        RequestClass::Quick => RequestKind::QuickDynamic,
        RequestClass::Lengthy => RequestKind::LengthyDynamic,
    };
    let started = Instant::now();
    let merged;
    let request = if captures.is_empty() {
        request
    } else {
        merged = merge_captures(request, &captures);
        &merged
    };
    let outcome = run_handler_with_slot(route, request, slot, &ctx.stats);
    // Data-generation time excludes rendering, as in the staged model.
    ctx.tracker.record(&route.name, started.elapsed());
    let response = match outcome {
        Ok(PageOutcome::Body(resp)) => resp,
        Ok(PageOutcome::Template { name, context }) => {
            // Same pooled-buffer render path as the staged server's
            // render workers, so the model comparison stays fair.
            let mut buf = staged_http::BufferPool::global().get();
            match ctx.app.templates().render_into(&name, &context, &mut buf) {
                Ok(()) => {
                    ctx.app.charge_render(buf.len());
                    Response::html(buf.freeze())
                }
                Err(_) => {
                    ctx.stats.errors.increment();
                    Response::error(StatusCode::INTERNAL_SERVER_ERROR)
                }
            }
        }
        Err(e) if e.is_unavailable() => {
            // Transient resource failure (open breaker, dead
            // connection, starved pool): 503, retryable — not the 500 a
            // handler bug gets. No stale fallback here: the baseline
            // deliberately has no render cache, preserving the paper's
            // model comparison.
            ctx.stats.errors.increment();
            overload_response(ctx.retry.advise())
        }
        Err(_) => {
            ctx.stats.errors.increment();
            Response::error(StatusCode::INTERNAL_SERVER_ERROR)
        }
    };
    (response, kind)
}

/// Merges pattern captures into the request's parameter list (captures
/// are appended, so query parameters of the same name win).
pub(crate) fn merge_captures(request: &Request, captures: &staged_http::RouteParams) -> Request {
    let mut merged = request.clone();
    merged
        .params
        .extend(captures.iter().map(|(k, v)| (k.to_string(), v.to_string())));
    merged
}

/// Runs a route handler, converting panics into errors so the worker
/// thread (and its database connection) survives.
pub(crate) fn run_handler(
    route: &crate::app::Route,
    request: &Request,
    db_conn: &PooledConnection,
    stats: &ServerStats,
) -> Result<PageOutcome, AppError> {
    // Tag the connection with the page it is serving so every statement
    // the handler runs is attributed to it on `/debug/explain`.
    db_conn.set_route(Some(&route.name));
    let result = match panic::catch_unwind(AssertUnwindSafe(|| (route.handler)(request, db_conn))) {
        Ok(result) => result,
        Err(_) => {
            stats.handler_panics.increment();
            Err(AppError::handler("handler panicked"))
        }
    };
    db_conn.set_route(None);
    result
}

/// Runs a route handler through the worker's [`DbSlot`]: a request that
/// fails because the slot's connection died is retried **once** on a
/// freshly checked-out connection; pool starvation (and a second loss)
/// surfaces as [`AppError::Unavailable`] for a `503`.
pub(crate) fn run_handler_with_slot(
    route: &crate::app::Route,
    request: &Request,
    slot: &mut DbSlot,
    stats: &ServerStats,
) -> Result<PageOutcome, AppError> {
    for attempt in 0..2 {
        let Some(db_conn) = slot.conn() else {
            stats.pool_starved.increment();
            return Err(AppError::Unavailable("database pool starved".into()));
        };
        let result = run_handler(route, request, db_conn, stats);
        match &result {
            Err(e) if e.is_unavailable() && attempt == 0 => {
                // The connection died mid-request; discard it and retry
                // on a fresh one.
                slot.invalidate();
            }
            _ => return result,
        }
    }
    unreachable!("the second attempt always returns");
}
