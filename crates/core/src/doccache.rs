//! The dependency-tracked dynamic-page cache (DESIGN.md §14).
//!
//! PAPERS.md "Vcache" insight: a dynamic page is cacheable *if you know
//! what it read*. Each miss renders normally while the connection
//! accumulates a [`ReadSet`]; the finished response is published tagged
//! with that set. Every committed mutation reports a [`WriteEvent`]
//! (table + primary keys), and the cache evicts exactly the entries
//! whose read-sets intersect it — so a cached response is *never*
//! stale. TTL and capacity are backstops against unbounded growth, not
//! the correctness mechanism.
//!
//! Freshness across the publish race: a request snapshots the cache
//! epoch *before* its first query ([`DocCache::lookup`] returns it on a
//! miss). [`DocCache::publish`] discards the render if any table it
//! depends on was written after that snapshot — the worst case is a
//! lost caching opportunity, never a stale entry.
//!
//! The hit path is allocation-free: one rank-118 read lock, a `HashMap`
//! probe, an `Arc` bump, and relaxed counter increments.

use staged_db::{ReadSet, WriteEvent};
use staged_http::Response;
use staged_sync::atomic::{AtomicU64, Ordering};
use staged_sync::{OrderedRwLock, Rank};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rank of the cache state (DESIGN.md §10): below the stale ladder's
/// `core.stale.entries` (120) so the invalidation engine may evict from
/// the document cache and then the stale cache under one write event.
const STATE_RANK: Rank = Rank::new(118);

/// One cached rendered page.
struct CacheEntry {
    /// The complete prebuilt response (headers included — building one
    /// on the hit path would allocate). `Arc`-shared with every hit.
    response: Arc<Response>,
    /// What the render read; the invalidation predicate.
    reads: Arc<ReadSet>,
    /// When the entry was published (TTL backstop, LRU-ish eviction).
    stored: Instant,
    /// Body size, for the bytes-served counter.
    bytes: u64,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    /// Per-table last-write epoch; compared against a request's miss
    /// snapshot to reject renders that raced a write.
    table_versions: HashMap<String, u64>,
    /// Bumped once per write event; `table_versions` values are drawn
    /// from it.
    epoch: u64,
}

/// A cache lookup outcome: either a complete response to serve from the
/// front line, or the epoch snapshot a miss must carry to `publish`.
pub enum Lookup {
    /// Serve this; skip the DB and render stages entirely.
    Hit(Arc<Response>),
    /// Render normally; pass this snapshot back to
    /// [`DocCache::publish`].
    Miss(u64),
}

/// The dependency-tracked dynamic-page cache.
///
/// See the module docs for the model. Constructed by the staged server
/// when [`ServerConfig::doc_cache`](crate::ServerConfig) is on; the
/// baseline server and the paper-comparison bench legs never build one,
/// keeping Table 2 runs valid.
pub struct DocCache {
    state: OrderedRwLock<CacheState>,
    ttl: Duration,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
    /// Entries evicted because a write intersected their read-set.
    invalidations: AtomicU64,
    /// Renders discarded at publish time because a dependent table was
    /// written after the request's epoch snapshot.
    stale_discards: AtomicU64,
    bytes_served: AtomicU64,
    /// Published dependencies that were row-level (`Exact` keys) rather
    /// than whole-table — the planner's read-set refinement at work, so
    /// writes to unrelated rows leave these entries cached.
    row_level_deps: AtomicU64,
}

impl DocCache {
    /// Creates an empty cache. Entries older than `ttl` stop being
    /// served (backstop only — invalidation is the correctness
    /// mechanism); `capacity` bounds the entry count, evicting oldest
    /// first.
    pub fn new(ttl: Duration, capacity: usize) -> Self {
        DocCache {
            state: OrderedRwLock::new(
                STATE_RANK,
                "core.doccache.state",
                CacheState {
                    entries: HashMap::new(),
                    table_versions: HashMap::new(),
                    epoch: 0,
                },
            ),
            ttl,
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_discards: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            row_level_deps: AtomicU64::new(0),
        }
    }

    // lint: hot_path — the cache-hit serve path: one read lock, one map
    // probe, one Arc bump; no allocation.
    /// Looks `key` up. A fresh entry is a [`Lookup::Hit`]; anything else
    /// is a [`Lookup::Miss`] carrying the epoch snapshot the render must
    /// hand back to [`DocCache::publish`]. Public so the `cache_series`
    /// bench can drive the hit path in-process under a counting
    /// allocator.
    pub fn lookup(&self, key: &str) -> Lookup {
        let state = self.state.read();
        if let Some(entry) = state.entries.get(key) {
            if entry.stored.elapsed() <= self.ttl {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_served.fetch_add(entry.bytes, Ordering::Relaxed);
                return Lookup::Hit(Arc::clone(&entry.response));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss(state.epoch)
    }
    // lint: end_hot_path

    /// Publishes a rendered page under `key`, tagged with the read set
    /// collected during its render and the epoch `snapshot` its lookup
    /// returned. Returns `false` (and caches nothing) when a dependent
    /// table was written after the snapshot — the render may embed
    /// pre-write data, and correctness beats reuse.
    pub fn publish(
        &self,
        key: &str,
        response: Arc<Response>,
        reads: Arc<ReadSet>,
        snapshot: u64,
    ) -> bool {
        let mut state = self.state.write();
        let raced = staged_sync::mutant!("doccache_skip_epoch_check" => {
            // broken: trust every render, even one that raced a write
            // to a table it read — the classic stale-publish bug
            false
        } else {
            reads
                .reads()
                .iter()
                .any(|r| state.table_versions.get(&r.table).copied().unwrap_or(0) > snapshot)
        });
        if raced {
            self.stale_discards.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if state.entries.len() >= self.capacity && !state.entries.contains_key(key) {
            // Capacity backstop: drop the oldest entry.
            if let Some(oldest) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stored)
                .map(|(k, _)| k.clone())
            {
                state.entries.remove(&oldest);
            }
        }
        let bytes = response.body().len() as u64;
        let keyed = reads.reads().iter().filter(|r| r.keys.is_some()).count() as u64;
        if keyed > 0 {
            self.row_level_deps.fetch_add(keyed, Ordering::Relaxed);
        }
        state.entries.insert(
            key.to_string(),
            CacheEntry {
                response,
                reads,
                stored: Instant::now(),
                bytes,
            },
        );
        self.publishes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Applies one committed write: bumps the table's version (so
    /// in-flight renders that read the old data cannot publish) and
    /// evicts every entry whose read-set the write intersects.
    pub(crate) fn invalidate(&self, event: &WriteEvent) {
        let mut state = self.state.write();
        state.epoch += 1;
        let epoch = state.epoch;
        match state.table_versions.get_mut(&event.table) {
            Some(v) => *v = epoch,
            None => {
                state.table_versions.insert(event.table.clone(), epoch);
            }
        }
        let before = state.entries.len();
        staged_sync::mutant!("doccache_skip_evict" => {
            // broken: bump the epoch but leave intersecting entries in
            // place — hits serve pre-write bodies forever
        } else {
            state.entries.retain(|_, e| !e.reads.depends_on(event));
        });
        let evicted = (before - state.entries.len()) as u64;
        if evicted > 0 {
            self.invalidations.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.state.read().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Lookups that missed (cold, TTL-expired, or evicted).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Pages published.
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Entries evicted by write invalidation.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Renders discarded at publish time for racing a write.
    pub fn stale_discards(&self) -> u64 {
        self.stale_discards.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Body bytes served from cache hits.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed) // lint: allow(relaxed)
    }

    /// Row-level (`Exact`-key) dependencies published, vs whole-table.
    pub fn row_level_deps(&self) -> u64 {
        self.row_level_deps.load(Ordering::Relaxed) // lint: allow(relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_db::{Database, DbValue};

    fn page(body: &str) -> Arc<Response> {
        Arc::new(Response::html(body.to_string()))
    }

    /// Builds a ReadSet through the real executor: `SELECT … WHERE id = ?`
    /// on a PK records an exact key; a scan records the whole table.
    fn reads_for(sql: &str) -> Arc<ReadSet> {
        let db = Database::new();
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        db.execute(
            "INSERT INTO item (id, v) VALUES (?, ?)",
            &[DbValue::Int(1), DbValue::Int(10)],
        )
        .unwrap();
        let mut rs = ReadSet::new();
        db.execute_tracked(sql, &[], Some(&mut rs)).unwrap();
        Arc::new(rs)
    }

    fn event_for(db_sql: &str) -> WriteEvent {
        let db = Database::new();
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        db.execute(
            "INSERT INTO item (id, v) VALUES (?, ?)",
            &[DbValue::Int(1), DbValue::Int(10)],
        )
        .unwrap();
        let events = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        db.set_write_observer(move |e| sink.lock().unwrap().push(e.clone()));
        db.execute(db_sql, &[]).unwrap();
        let mut events = events.lock().unwrap();
        events.pop().expect("mutation fired an event")
    }

    #[test]
    fn miss_then_publish_then_hit() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("item?id=1") else {
            panic!("cold cache should miss");
        };
        let reads = reads_for("SELECT v FROM item WHERE id = 1");
        assert!(cache.publish("item?id=1", page("<p>10</p>"), reads, s0));
        match cache.lookup("item?id=1") {
            Lookup::Hit(r) => assert_eq!(r.body(), b"<p>10</p>"),
            Lookup::Miss(_) => panic!("published entry should hit"),
        }
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.bytes_served(), 9);
    }

    #[test]
    fn write_to_read_key_evicts() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        let reads = reads_for("SELECT v FROM item WHERE id = 1");
        cache.publish("k", page("x"), reads, s0);
        cache.invalidate(&event_for("UPDATE item SET v = 11 WHERE id = 1"));
        assert!(matches!(cache.lookup("k"), Lookup::Miss(_)));
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn write_to_other_key_spares_exact_read() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        let reads = reads_for("SELECT v FROM item WHERE id = 1");
        cache.publish("k", page("x"), reads, s0);
        cache.invalidate(&event_for("INSERT INTO item (id, v) VALUES (2, 20)"));
        assert!(
            matches!(cache.lookup("k"), Lookup::Hit(_)),
            "a write to another row must not evict an exact-key entry"
        );
    }

    #[test]
    fn write_evicts_whole_table_readers() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        let reads = reads_for("SELECT COUNT(*) FROM item");
        cache.publish("k", page("x"), reads, s0);
        cache.invalidate(&event_for("INSERT INTO item (id, v) VALUES (2, 20)"));
        assert!(
            matches!(cache.lookup("k"), Lookup::Miss(_)),
            "a scan depends on every row, including new ones"
        );
    }

    #[test]
    fn publish_racing_a_write_is_discarded() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        let reads = reads_for("SELECT v FROM item WHERE id = 1");
        // A write to the dependent table lands between the lookup and
        // the publish: the render may embed pre-write data.
        cache.invalidate(&event_for("UPDATE item SET v = 11 WHERE id = 1"));
        assert!(!cache.publish("k", page("stale"), reads, s0));
        assert!(matches!(cache.lookup("k"), Lookup::Miss(_)));
        assert_eq!(cache.stale_discards(), 1);
    }

    #[test]
    fn ttl_expiry_is_a_miss() {
        let cache = DocCache::new(Duration::ZERO, 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        cache.publish("k", page("x"), reads_for("SELECT COUNT(*) FROM item"), s0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(cache.lookup("k"), Lookup::Miss(_)));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = DocCache::new(Duration::from_secs(60), 2);
        let reads = reads_for("SELECT COUNT(*) FROM item");
        for key in ["a", "b", "c"] {
            let Lookup::Miss(s0) = cache.lookup(key) else {
                panic!()
            };
            cache.publish(key, page(key), Arc::clone(&reads), s0);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup("a"), Lookup::Miss(_)), "oldest out");
        assert!(matches!(cache.lookup("c"), Lookup::Hit(_)));
    }

    #[test]
    fn hits_share_one_response_allocation() {
        let cache = DocCache::new(Duration::from_secs(60), 16);
        let Lookup::Miss(s0) = cache.lookup("k") else {
            panic!()
        };
        let published = page("shared");
        cache.publish(
            "k",
            Arc::clone(&published),
            reads_for("SELECT COUNT(*) FROM item"),
            s0,
        );
        let (Lookup::Hit(a), Lookup::Hit(b)) = (cache.lookup("k"), cache.lookup("k")) else {
            panic!("both lookups should hit")
        };
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &published));
    }
}
