//! Property-based tests for the scheduling policy.

use proptest::prelude::*;
use staged_core::{DynamicPoolChoice, RequestClass, ReserveController, ServiceTimeTracker};
use std::time::Duration;

proptest! {
    /// For every `t_spare` trace, `t_reserve` stays within its bounds.
    #[test]
    fn reserve_stays_within_bounds(
        min in 1usize..20,
        extra in 0usize..30,
        trace in proptest::collection::vec(0usize..200, 0..100),
    ) {
        let max = min + extra;
        let c = ReserveController::with_max(min, max);
        for tspare in trace {
            c.update(tspare);
            prop_assert!(c.reserve() >= min, "reserve {} < min {}", c.reserve(), min);
            prop_assert!(c.reserve() <= max, "reserve {} > max {}", c.reserve(), max);
        }
    }

    /// The controller is monotone in the right direction each tick:
    /// scarcity never lowers the reserve, abundance never raises it.
    #[test]
    fn update_direction_is_correct(
        min in 1usize..20,
        trace in proptest::collection::vec(0usize..100, 1..60),
    ) {
        let c = ReserveController::with_max(min, 1000);
        for tspare in trace {
            let before = c.reserve();
            let delta = c.update(tspare);
            if tspare < before {
                prop_assert!(delta >= 0, "scarcity lowered the reserve");
            } else if tspare > before {
                prop_assert!(delta <= 0, "abundance raised the reserve");
            } else {
                prop_assert_eq!(delta, 0);
            }
        }
    }

    /// Dispatch obeys Table 1 for every state: quick always general;
    /// lengthy goes general exactly when `t_spare > t_reserve`.
    #[test]
    fn dispatch_matches_table_1(
        min in 1usize..10,
        warmup in proptest::collection::vec(0usize..50, 0..20),
        tspare in 0usize..50,
    ) {
        let c = ReserveController::with_max(min, 40);
        for t in warmup {
            c.update(t);
        }
        prop_assert_eq!(
            c.dispatch(RequestClass::Quick, tspare),
            DynamicPoolChoice::General
        );
        let expected = if tspare > c.reserve() {
            DynamicPoolChoice::General
        } else {
            DynamicPoolChoice::Lengthy
        };
        prop_assert_eq!(c.dispatch(RequestClass::Lengthy, tspare), expected);
    }

    /// The tracker's average is the true arithmetic mean (to µs
    /// rounding), and classification is consistent with it.
    #[test]
    fn tracker_average_is_exact_mean(
        samples in proptest::collection::vec(0u64..100_000, 1..50),
        cutoff_us in 1u64..50_000,
    ) {
        let cutoff = Duration::from_micros(cutoff_us);
        let tracker = ServiceTimeTracker::new(cutoff);
        for &us in &samples {
            tracker.record("page", Duration::from_micros(us));
        }
        let avg = tracker.average("page").unwrap();
        let want = Duration::from_micros(samples.iter().sum::<u64>()) / samples.len() as u32;
        prop_assert_eq!(avg, want);
        let class = tracker.classify("page");
        if avg > cutoff {
            prop_assert_eq!(class, RequestClass::Lengthy);
        } else {
            prop_assert_eq!(class, RequestClass::Quick);
        }
    }

    /// A sustained spike then sustained recovery always returns the
    /// capped controller to its minimum (no ratchet).
    #[test]
    fn no_ratchet_after_recovery(
        min in 1usize..10,
        extra in 1usize..20,
        spike_len in 1usize..30,
        pool_size in 30usize..100,
    ) {
        let c = ReserveController::with_max(min, min + extra);
        for _ in 0..spike_len {
            c.update(0);
        }
        for _ in 0..200 {
            c.update(pool_size);
        }
        prop_assert_eq!(c.reserve(), min);
    }
}
