//! Freshness property test for the dependency-tracked document cache.
//!
//! Random admin writes interleave with cached browsing reads across
//! threads. The invariant: once a write's HTTP response has returned,
//! every subsequent read of the page whose read-set covers that row
//! reflects the write (or something newer). The cache must never serve
//! a response that predates a committed write to its read-set.
//!
//! Seeded and deterministic in its schedule choices; the thread
//! interleaving itself is free, which is the point — the invariant has
//! to hold under every interleaving.

use staged_core::{App, PageOutcome, ServerConfig, StagedServer};
use staged_db::{Database, DbValue};
use staged_http::{fetch, Method, Response, StatusCode};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

const N_IDS: i64 = 4;
const READERS: usize = 4;
const WRITERS: usize = 2;
const READS_PER_THREAD: usize = 200;
const WRITES_PER_THREAD: usize = 40;
const SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Minimal xorshift so the id schedule is reproducible without pulling
/// a PRNG crate into the test.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick_id(&mut self) -> i64 {
        (self.next() % N_IDS as u64) as i64
    }
}

fn app() -> App {
    App::builder()
        .route("/item", "item", |req, db| {
            let id: i64 = req.param("id").unwrap_or("0").parse().unwrap_or(0);
            let result = db.execute("SELECT val FROM items WHERE id = ?", &[DbValue::Int(id)])?;
            let val = match result.rows.first().map(|r| &r[0]) {
                Some(DbValue::Int(v)) => *v,
                _ => -1,
            };
            Ok(PageOutcome::Body(Response::html(format!("val={val}"))))
        })
        .route("/set", "set", |req, db| {
            let id: i64 = req.param("id").unwrap_or("0").parse().unwrap_or(0);
            let val: i64 = req.param("val").unwrap_or("0").parse().unwrap_or(0);
            db.execute(
                "UPDATE items SET val = ? WHERE id = ?",
                &[DbValue::Int(val), DbValue::Int(id)],
            )?;
            Ok(PageOutcome::Body(Response::html("ok")))
        })
        .stale_cacheable("/item")
        .build()
}

fn seeded_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE items (id INT PRIMARY KEY, val INT)", &[])
        .unwrap();
    for id in 0..N_IDS {
        db.execute(
            "INSERT INTO items (id, val) VALUES (?, ?)",
            &[DbValue::Int(id), DbValue::Int(0)],
        )
        .unwrap();
    }
    db
}

fn parse_val(body: &str) -> i64 {
    body.trim_start_matches("val=").trim().parse().unwrap_or(-1)
}

#[test]
fn cached_reads_never_predate_committed_writes() {
    let config = ServerConfig {
        doc_cache: true,
        ..ServerConfig::small()
    };
    let server = StagedServer::start(config, app(), seeded_db()).unwrap();
    let addr = server.addr();

    // Per-id state: the newest value whose write response has returned
    // (the freshness floor a reader may rely on), a monotone counter
    // handing out values, and a lock serializing same-id writes so the
    // floor tracks database commit order.
    let floors: Arc<Vec<AtomicI64>> = Arc::new((0..N_IDS).map(|_| AtomicI64::new(0)).collect());
    let counters: Arc<Vec<AtomicI64>> = Arc::new((0..N_IDS).map(|_| AtomicI64::new(0)).collect());
    let write_locks: Arc<Vec<Mutex<()>>> = Arc::new((0..N_IDS).map(|_| Mutex::new(())).collect());
    let violations = Arc::new(Mutex::new(Vec::<String>::new()));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let floors = Arc::clone(&floors);
        let counters = Arc::clone(&counters);
        let write_locks = Arc::clone(&write_locks);
        handles.push(std::thread::spawn(move || {
            let mut rng = XorShift(SEED ^ (0x1000 + w as u64));
            for _ in 0..WRITES_PER_THREAD {
                let id = rng.pick_id();
                let guard = write_locks[id as usize].lock().unwrap();
                let val = counters[id as usize].fetch_add(1, Ordering::SeqCst) + 1;
                let resp =
                    fetch(addr, Method::Get, &format!("/set?id={id}&val={val}"), &[]).unwrap();
                assert_eq!(resp.status, StatusCode::OK, "write rejected");
                // The write's response has returned: its commit — and the
                // cache eviction that precedes the commit returning — is
                // done, so readers may rely on seeing at least this value.
                floors[id as usize].fetch_max(val, Ordering::SeqCst);
                drop(guard);
            }
        }));
    }
    for r in 0..READERS {
        let floors = Arc::clone(&floors);
        let violations = Arc::clone(&violations);
        handles.push(std::thread::spawn(move || {
            let mut rng = XorShift(SEED ^ (0x2000 + r as u64));
            for _ in 0..READS_PER_THREAD {
                let id = rng.pick_id();
                // Load the floor BEFORE issuing the read: any write that
                // finished by now must be visible in the response.
                let floor = floors[id as usize].load(Ordering::SeqCst);
                let resp = fetch(addr, Method::Get, &format!("/item?id={id}"), &[]).unwrap();
                assert_eq!(resp.status, StatusCode::OK, "read rejected");
                let got = parse_val(&resp.text());
                if got < floor {
                    violations.lock().unwrap().push(format!(
                        "id={id}: read val={got} but a write of val={floor} had already returned"
                    ));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let violations = violations.lock().unwrap();
    assert!(
        violations.is_empty(),
        "stale serves detected:\n{}",
        violations.join("\n")
    );

    // The test only exercises the cache if hits actually happened —
    // guard against the cache silently disabling itself.
    let hits = server
        .registry()
        .value("doc_cache_hits_total", &[])
        .expect("doc cache families registered");
    assert!(hits > 0.0, "expected cache hits during the run, got {hits}");

    server.shutdown().expect("clean shutdown");
}
