//! Freshness property test for the dependency-tracked document cache.
//!
//! Random admin writes interleave with cached browsing reads across
//! threads. The invariant: once a write's HTTP response has returned,
//! every subsequent read of the page whose read-set covers that row
//! reflects the write (or something newer). The cache must never serve
//! a response that predates a committed write to its read-set.
//!
//! Seeded and deterministic in its schedule choices; the thread
//! interleaving itself is free, which is the point — the invariant has
//! to hold under every interleaving.

use staged_core::{App, PageOutcome, ServerConfig, StagedServer};
use staged_db::{Database, DbValue};
use staged_http::{fetch, Method, Response, StatusCode};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

const N_IDS: i64 = 4;
const READERS: usize = 4;
const WRITERS: usize = 2;
const READS_PER_THREAD: usize = 200;
const WRITES_PER_THREAD: usize = 40;
const SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Minimal xorshift so the id schedule is reproducible without pulling
/// a PRNG crate into the test.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick_id(&mut self) -> i64 {
        (self.next() % N_IDS as u64) as i64
    }
}

fn app() -> App {
    App::builder()
        .route("/item", "item", |req, db| {
            let id: i64 = req.param("id").unwrap_or("0").parse().unwrap_or(0);
            let result = db.execute("SELECT val FROM items WHERE id = ?", &[DbValue::Int(id)])?;
            let val = match result.rows.first().map(|r| &r[0]) {
                Some(DbValue::Int(v)) => *v,
                _ => -1,
            };
            Ok(PageOutcome::Body(Response::html(format!("val={val}"))))
        })
        .route("/set", "set", |req, db| {
            let id: i64 = req.param("id").unwrap_or("0").parse().unwrap_or(0);
            let val: i64 = req.param("val").unwrap_or("0").parse().unwrap_or(0);
            db.execute(
                "UPDATE items SET val = ? WHERE id = ?",
                &[DbValue::Int(val), DbValue::Int(id)],
            )?;
            Ok(PageOutcome::Body(Response::html("ok")))
        })
        .stale_cacheable("/item")
        .build()
}

fn seeded_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE items (id INT PRIMARY KEY, val INT)", &[])
        .unwrap();
    for id in 0..N_IDS {
        db.execute(
            "INSERT INTO items (id, val) VALUES (?, ?)",
            &[DbValue::Int(id), DbValue::Int(0)],
        )
        .unwrap();
    }
    db
}

fn parse_val(body: &str) -> i64 {
    body.trim_start_matches("val=").trim().parse().unwrap_or(-1)
}

#[test]
fn cached_reads_never_predate_committed_writes() {
    let config = ServerConfig {
        doc_cache: true,
        ..ServerConfig::small()
    };
    let server = StagedServer::start(config, app(), seeded_db()).unwrap();
    let addr = server.addr();

    // Per-id state: the newest value whose write response has returned
    // (the freshness floor a reader may rely on), a monotone counter
    // handing out values, and a lock serializing same-id writes so the
    // floor tracks database commit order.
    let floors: Arc<Vec<AtomicI64>> = Arc::new((0..N_IDS).map(|_| AtomicI64::new(0)).collect());
    let counters: Arc<Vec<AtomicI64>> = Arc::new((0..N_IDS).map(|_| AtomicI64::new(0)).collect());
    let write_locks: Arc<Vec<Mutex<()>>> = Arc::new((0..N_IDS).map(|_| Mutex::new(())).collect());
    let violations = Arc::new(Mutex::new(Vec::<String>::new()));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let floors = Arc::clone(&floors);
        let counters = Arc::clone(&counters);
        let write_locks = Arc::clone(&write_locks);
        handles.push(std::thread::spawn(move || {
            let mut rng = XorShift(SEED ^ (0x1000 + w as u64));
            for _ in 0..WRITES_PER_THREAD {
                let id = rng.pick_id();
                let guard = write_locks[id as usize].lock().unwrap();
                let val = counters[id as usize].fetch_add(1, Ordering::SeqCst) + 1;
                let resp =
                    fetch(addr, Method::Get, &format!("/set?id={id}&val={val}"), &[]).unwrap();
                assert_eq!(resp.status, StatusCode::OK, "write rejected");
                // The write's response has returned: its commit — and the
                // cache eviction that precedes the commit returning — is
                // done, so readers may rely on seeing at least this value.
                floors[id as usize].fetch_max(val, Ordering::SeqCst);
                drop(guard);
            }
        }));
    }
    for r in 0..READERS {
        let floors = Arc::clone(&floors);
        let violations = Arc::clone(&violations);
        handles.push(std::thread::spawn(move || {
            let mut rng = XorShift(SEED ^ (0x2000 + r as u64));
            for _ in 0..READS_PER_THREAD {
                let id = rng.pick_id();
                // Load the floor BEFORE issuing the read: any write that
                // finished by now must be visible in the response.
                let floor = floors[id as usize].load(Ordering::SeqCst);
                let resp = fetch(addr, Method::Get, &format!("/item?id={id}"), &[]).unwrap();
                assert_eq!(resp.status, StatusCode::OK, "read rejected");
                let got = parse_val(&resp.text());
                if got < floor {
                    violations.lock().unwrap().push(format!(
                        "id={id}: read val={got} but a write of val={floor} had already returned"
                    ));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let violations = violations.lock().unwrap();
    assert!(
        violations.is_empty(),
        "stale serves detected:\n{}",
        violations.join("\n")
    );

    // The test only exercises the cache if hits actually happened —
    // guard against the cache silently disabling itself.
    let hits = server
        .registry()
        .value("doc_cache_hits_total", &[])
        .expect("doc cache families registered");
    assert!(hits > 0.0, "expected cache hits during the run, got {hits}");

    server.shutdown().expect("clean shutdown");
}

/// Row-level join dependencies: a page whose SQL joins through primary
/// keys records `Exact` row keys for both tables, so an admin write to
/// one row evicts only the pages that actually read it — unrelated
/// pages keep serving from cache.
#[test]
fn row_level_join_deps_spare_unrelated_pages() {
    let app = App::builder()
        .route("/pair", "pair", |req, db| {
            let id: i64 = req.param("id").unwrap_or("0").parse().unwrap_or(0);
            let result = db.execute(
                "SELECT val, name FROM items JOIN labels ON lab = lid WHERE id = ?",
                &[DbValue::Int(id)],
            )?;
            let body = match result.rows.first() {
                Some(row) => format!("val={} label={}", row[0], row[1]),
                None => "missing".to_string(),
            };
            Ok(PageOutcome::Body(Response::html(body)))
        })
        .route("/setlabel", "setlabel", |req, db| {
            let lid: i64 = req.param("lid").unwrap_or("0").parse().unwrap_or(0);
            let name = req.param("name").unwrap_or("x").to_string();
            db.execute(
                "UPDATE labels SET name = ? WHERE lid = ?",
                &[DbValue::from(name), DbValue::Int(lid)],
            )?;
            Ok(PageOutcome::Body(Response::html("ok")))
        })
        .stale_cacheable("/pair")
        .build();

    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, val INT, lab INT)",
        &[],
    )
    .unwrap();
    db.execute("CREATE TABLE labels (lid INT PRIMARY KEY, name TEXT)", &[])
        .unwrap();
    for id in 0..N_IDS {
        db.execute(
            "INSERT INTO labels (lid, name) VALUES (?, ?)",
            &[DbValue::Int(id), DbValue::from(format!("label{id}"))],
        )
        .unwrap();
        db.execute(
            "INSERT INTO items (id, val, lab) VALUES (?, ?, ?)",
            &[DbValue::Int(id), DbValue::Int(id * 10), DbValue::Int(id)],
        )
        .unwrap();
    }

    let config = ServerConfig {
        doc_cache: true,
        ..ServerConfig::small()
    };
    let server = StagedServer::start(config, app, db).unwrap();
    let addr = server.addr();
    let metric = |name: &str| server.registry().value(name, &[]).unwrap_or(0.0);

    // Warm the cache with two pages that share no rows.
    let a0 = fetch(addr, Method::Get, "/pair?id=0", &[]).unwrap().text();
    let b0 = fetch(addr, Method::Get, "/pair?id=1", &[]).unwrap().text();
    assert!(a0.contains("label0"), "{a0}");
    assert!(b0.contains("label1"), "{b0}");
    assert!(
        metric("doc_cache_row_level_deps_total") > 0.0,
        "joined pages should publish row-level dependencies"
    );

    // Write the label only page 0 read.
    let resp = fetch(addr, Method::Get, "/setlabel?lid=0&name=renamed", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);

    // Page 1 is untouched by the write: served from cache.
    let hits_before = metric("doc_cache_hits_total");
    let b1 = fetch(addr, Method::Get, "/pair?id=1", &[]).unwrap().text();
    assert_eq!(b0, b1, "unrelated page must be unchanged");
    assert_eq!(
        metric("doc_cache_hits_total"),
        hits_before + 1.0,
        "the write to lid=0 must not evict the page that read lid=1"
    );

    // Page 0 was evicted and re-renders with the new label.
    let a1 = fetch(addr, Method::Get, "/pair?id=0", &[]).unwrap().text();
    assert!(a1.contains("renamed"), "{a1}");

    server.shutdown().expect("clean shutdown");
}
