//! End-to-end tests driving both servers over real TCP.

use staged_core::{App, BaselineServer, PageOutcome, ServerConfig, ServerHandle, StagedServer};
use staged_db::{Database, DbValue};
use staged_http::{fetch, Method, Response, StaticFiles, StatusCode};
use staged_templates::{Context, TemplateStore, Value};
use std::sync::Arc;
use std::time::Duration;

fn demo_app() -> App {
    let templates = Arc::new(TemplateStore::new());
    templates
        .insert(
            "page.html",
            "<html><head><title>{{ title }}</title></head>\
             <body><ul>{% for b in books %}<li>{{ b }}</li>{% endfor %}</ul></body></html>",
        )
        .unwrap();
    let mut statics = StaticFiles::in_memory();
    statics.insert("/img/flowers.gif", b"GIF89a-flowers".to_vec());
    App::builder()
        .templates(templates)
        .static_files(statics)
        .route("/books", "books", |req, db| {
            let subject = req.param("subject").unwrap_or("SCIFI").to_string();
            let result = db.execute(
                "SELECT title FROM book WHERE subject = ? ORDER BY title",
                &[DbValue::from(subject.as_str())],
            )?;
            let mut ctx = Context::new();
            ctx.insert("title", subject);
            ctx.insert(
                "books",
                Value::from(
                    result
                        .rows
                        .iter()
                        .map(|r| Value::from(r[0].to_string()))
                        .collect::<Vec<_>>(),
                ),
            );
            Ok(PageOutcome::template("page.html", ctx))
        })
        .route("/prerendered", "prerendered", |_req, _db| {
            Ok(PageOutcome::Body(Response::html("<p>old-style page</p>")))
        })
        .route("/explode", "explode", |_req, _db| {
            panic!("handler bug");
        })
        .route("/slow", "slow", |_req, db| {
            // A full scan, lengthy by construction.
            db.execute("SELECT COUNT(*) FROM book WHERE title LIKE '%a%'", &[])?;
            std::thread::sleep(Duration::from_millis(5));
            Ok(PageOutcome::Body(Response::text("slow done")))
        })
        .build()
}

fn demo_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE book (id INT PRIMARY KEY, title TEXT, subject TEXT)",
        &[],
    )
    .unwrap();
    db.execute("CREATE INDEX ON book (subject)", &[]).unwrap();
    for (id, title, subject) in [
        (1, "Dune", "SCIFI"),
        (2, "Excession", "SCIFI"),
        (3, "Salt", "COOKING"),
    ] {
        db.execute(
            "INSERT INTO book (id, title, subject) VALUES (?, ?, ?)",
            &[
                DbValue::Int(id),
                DbValue::from(title),
                DbValue::from(subject),
            ],
        )
        .unwrap();
    }
    db
}

/// Completion counters are incremented just after the response bytes are
/// written, so a client can observe its response marginally before the
/// counter moves; wait for the counters to settle.
fn settle(server: &ServerHandle, expected_total: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.stats().total_completed() < expected_total && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn each_server(test: impl Fn(&ServerHandle, &str)) {
    let baseline = BaselineServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    test(&baseline, "baseline");
    baseline.shutdown().expect("clean shutdown");

    let staged = StagedServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    test(&staged, "staged");
    staged.shutdown().expect("clean shutdown");
}

#[test]
fn serves_dynamic_template_pages() {
    each_server(|server, which| {
        let resp = fetch(server.addr(), Method::Get, "/books?subject=SCIFI", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{which}");
        let text = resp.text();
        assert!(text.contains("<title>SCIFI</title>"), "{which}: {text}");
        assert!(text.contains("<li>Dune</li>"), "{which}");
        assert!(text.contains("<li>Excession</li>"), "{which}");
        assert!(!text.contains("Salt"), "{which}");
        // Content-Length is exact (the paper's §3.2 point).
        let len: usize = resp.headers.get("content-length").unwrap().parse().unwrap();
        assert_eq!(len, resp.body.len(), "{which}");
    });
}

#[test]
fn serves_static_files() {
    each_server(|server, which| {
        let resp = fetch(server.addr(), Method::Get, "/img/flowers.gif", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{which}");
        assert_eq!(
            resp.headers.get("content-type"),
            Some("image/gif"),
            "{which}"
        );
        assert_eq!(resp.body, b"GIF89a-flowers", "{which}");
    });
}

/// Sends one raw request with extra headers and parses the response —
/// `fetch` has no custom-header support, conditional GETs need it.
fn fetch_with_headers(
    addr: std::net::SocketAddr,
    target: &str,
    headers: &[(&str, &str)],
) -> staged_http::ClientResponse {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut req = format!("GET {target} HTTP/1.1\r\nConnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes()).unwrap();
    staged_http::read_response(&mut stream).unwrap()
}

#[test]
fn conditional_static_requests_get_304() {
    each_server(|server, which| {
        let first = fetch(server.addr(), Method::Get, "/img/flowers.gif", &[]).unwrap();
        assert_eq!(first.status, StatusCode::OK, "{which}");
        let etag = first.headers.get("etag").expect("static 200 carries ETag");
        let last_modified = first
            .headers
            .get("last-modified")
            .expect("static 200 carries Last-Modified");

        // Revalidation by ETag: 304, no body, validators echoed.
        let revalidated = fetch_with_headers(
            server.addr(),
            "/img/flowers.gif",
            &[("If-None-Match", etag)],
        );
        assert_eq!(revalidated.status, StatusCode::NOT_MODIFIED, "{which}");
        assert!(
            revalidated.body.is_empty(),
            "{which}: 304 must have no body"
        );
        assert_eq!(revalidated.headers.get("etag"), Some(etag), "{which}");

        // Revalidation by date.
        let by_date = fetch_with_headers(
            server.addr(),
            "/img/flowers.gif",
            &[("If-Modified-Since", last_modified)],
        );
        assert_eq!(by_date.status, StatusCode::NOT_MODIFIED, "{which}");

        // A mismatched validator still gets the full entity.
        let changed = fetch_with_headers(
            server.addr(),
            "/img/flowers.gif",
            &[("If-None-Match", "\"different\"")],
        );
        assert_eq!(changed.status, StatusCode::OK, "{which}");
        assert_eq!(changed.body, b"GIF89a-flowers", "{which}");
    });
}

#[test]
fn backward_compatible_prerendered_pages() {
    each_server(|server, which| {
        let resp = fetch(server.addr(), Method::Get, "/prerendered", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{which}");
        assert_eq!(resp.text(), "<p>old-style page</p>", "{which}");
    });
}

#[test]
fn missing_routes_and_files_404() {
    each_server(|server, which| {
        let resp = fetch(server.addr(), Method::Get, "/no-such-page", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "{which}");
        let resp = fetch(server.addr(), Method::Get, "/no-such.png", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "{which}");
    });
}

#[test]
fn handler_panics_become_500s_and_server_survives() {
    each_server(|server, which| {
        let resp = fetch(server.addr(), Method::Get, "/explode", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::INTERNAL_SERVER_ERROR, "{which}");
        // The worker (and its DB connection) survived; a normal request
        // still works.
        let resp = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{which}");
        assert_eq!(server.stats().handler_panics.value(), 1, "{which}");
    });
}

#[test]
fn malformed_requests_get_400() {
    use std::io::{Read, Write};
    each_server(|server, which| {
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE REQUEST LINE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{which}: {text}");
    });
}

#[test]
fn completions_recorded_by_class() {
    each_server(|server, which| {
        for _ in 0..3 {
            fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
        }
        fetch(server.addr(), Method::Get, "/img/flowers.gif", &[]).unwrap();
        // Prime the tracker so /slow is classified lengthy, then hit it.
        fetch(server.addr(), Method::Get, "/slow", &[]).unwrap();
        fetch(server.addr(), Method::Get, "/slow", &[]).unwrap();
        settle(server, 6);
        let stats = server.stats();
        assert_eq!(
            stats.completed(staged_core::RequestKind::Static),
            1,
            "{which}"
        );
        assert!(
            stats.completed(staged_core::RequestKind::QuickDynamic) >= 3,
            "{which}"
        );
        assert!(
            stats.completed(staged_core::RequestKind::LengthyDynamic) >= 1,
            "{which}: second /slow should be classified lengthy"
        );
        assert_eq!(stats.total_completed(), 6, "{which}");
    });
}

#[test]
fn concurrent_clients_are_all_served() {
    each_server(|server, which| {
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let path = if i % 2 == 0 {
                            "/books"
                        } else {
                            "/img/flowers.gif"
                        };
                        let resp = fetch(addr, Method::Get, path, &[]).unwrap();
                        assert!(resp.status.is_success());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        settle(server, 40);
        assert_eq!(server.stats().total_completed(), 40, "{which}");
    });
}

#[test]
fn staged_gauges_exposed() {
    let staged = StagedServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    let names = staged.gauge_names();
    for expected in [
        "header", "static", "general", "lengthy", "render", "treserve", "tspare",
    ] {
        assert!(names.contains(&expected), "missing gauge {expected}");
    }
    assert_eq!(
        staged.gauge("treserve"),
        Some(ServerConfig::small().min_reserve)
    );
    assert!(staged.gauge("tspare").unwrap() <= ServerConfig::small().general_workers);
    let f = staged.gauge_fn("general").unwrap();
    assert_eq!(f(), 0);
    staged.shutdown().expect("clean shutdown");
}

#[test]
fn baseline_gauge_exposed() {
    let baseline = BaselineServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    assert_eq!(baseline.gauge_names(), vec!["worker"]);
    assert_eq!(baseline.gauge("worker"), Some(0));
    baseline.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_is_clean_and_idempotent_via_drop() {
    let server = StagedServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    let addr = server.addr();
    fetch(addr, Method::Get, "/books", &[]).unwrap();
    drop(server); // drop path also shuts down
                  // The listener is gone: connecting may succeed (OS backlog) but a
                  // request must not be answered.
    let result = fetch(addr, Method::Get, "/books", &[]);
    assert!(result.is_err(), "server still answering after shutdown");
}
