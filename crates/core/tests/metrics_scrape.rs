//! Scrape tests for the observability endpoints: `GET /metrics` must be
//! valid Prometheus text exposition carrying every family the ISSUE
//! promises, and `GET /debug/traces` must be JSON from the slow-trace
//! ring. This is also the CI scrape check (`.github/workflows/ci.yml`
//! runs exactly this test).

use staged_core::{App, BaselineServer, PageOutcome, ServerConfig, ServerHandle, StagedServer};
use staged_db::{Database, DbValue};
use staged_http::{fetch, Method, Response, StaticFiles, StatusCode};
use staged_metrics::validate_exposition;
use staged_templates::{Context, TemplateStore};
use std::sync::Arc;
use std::time::Duration;

fn demo_app() -> App {
    let templates = Arc::new(TemplateStore::new());
    templates
        .insert("page.html", "<html><body>{{ title }}</body></html>")
        .unwrap();
    let mut statics = StaticFiles::in_memory();
    statics.insert("/logo.png", b"PNG-bytes".to_vec());
    App::builder()
        .templates(templates)
        .static_files(statics)
        .route("/books", "books", |req, db| {
            let subject = req.param("subject").unwrap_or("SCIFI").to_string();
            db.execute(
                "SELECT title FROM book WHERE subject = ?",
                &[DbValue::from(subject.as_str())],
            )?;
            let mut ctx = Context::new();
            ctx.insert("title", subject);
            Ok(PageOutcome::template("page.html", ctx))
        })
        .route("/plain", "plain", |_req, _db| {
            Ok(PageOutcome::Body(Response::text("ok")))
        })
        .build()
}

fn demo_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE book (id INT PRIMARY KEY, title TEXT, subject TEXT)",
        &[],
    )
    .unwrap();
    db.execute(
        "INSERT INTO book (id, title, subject) VALUES (?, ?, ?)",
        &[
            DbValue::Int(1),
            DbValue::from("Dune"),
            DbValue::from("SCIFI"),
        ],
    )
    .unwrap();
    db
}

/// Completion counters move just after the response bytes are written;
/// wait for them so the scrape sees settled values.
fn settle(server: &ServerHandle, expected_total: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.stats().total_completed() < expected_total && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn scrape(server: &ServerHandle) -> String {
    let resp = fetch(server.addr(), Method::Get, "/metrics", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(
        resp.headers.get("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    resp.text()
}

#[test]
fn staged_metrics_exposition_is_valid_and_complete() {
    let server = StagedServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    for _ in 0..3 {
        fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    }
    fetch(server.addr(), Method::Get, "/logo.png", &[]).unwrap();
    fetch(server.addr(), Method::Get, "/plain", &[]).unwrap();
    settle(&server, 5);

    let text = scrape(&server);
    let samples = validate_exposition(&text).expect("exposition must parse");
    assert!(samples > 50, "suspiciously few samples: {samples}\n{text}");

    // Per-stage queue-wait and service-time histograms for every stage.
    for stage in ["header", "static", "general", "lengthy", "render"] {
        assert!(
            text.contains(&format!("stage_queue_depth{{stage=\"{stage}\"}}")),
            "missing queue depth for {stage}:\n{text}"
        );
        assert!(
            text.contains(&format!(
                "stage_queue_wait_seconds_bucket{{stage=\"{stage}\""
            )),
            "missing queue-wait histogram for {stage}"
        );
        assert!(
            text.contains(&format!("stage_service_seconds_bucket{{stage=\"{stage}\"")),
            "missing service-time histogram for {stage}"
        );
    }
    // Scheduler gauges.
    assert!(text.contains("scheduler_t_spare "));
    assert!(text.contains("scheduler_t_reserve "));
    // Shed/panic/reject counters for all five pools.
    for pool in [
        "header-parsing",
        "static",
        "general-dynamic",
        "lengthy-dynamic",
        "render",
    ] {
        for family in [
            "pool_completed_total",
            "pool_panics_total",
            "pool_rejected_total",
            "pool_busy_workers",
        ] {
            assert!(
                text.contains(&format!("{family}{{pool=\"{pool}\"}}")),
                "missing {family} for {pool}"
            );
        }
    }
    // Server counters and trace aggregates.
    assert!(text.contains("requests_completed_total{class=\"static\"} 1"));
    assert!(text.contains("sheds_total{point="));
    assert!(text.contains("errors_total "));
    assert!(text.contains("trace_outcomes_total{outcome=\"served\"}"));
    assert!(text.contains("request_duration_seconds_count"));
    // The per-page collector saw the routed pages.
    assert!(text.contains("page_service_seconds{page=\"books\"}"));

    // A second scrape also parses (the first scrape's own Probe trace
    // and histogram samples are now in the data).
    validate_exposition(&scrape(&server)).expect("second scrape must parse");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn staged_slow_trace_ring_serves_json() {
    let server = StagedServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    for _ in 0..4 {
        fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    }
    settle(&server, 4);

    // Ring admission happens just after the completion counter moves;
    // poll briefly for the first served trace to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let body = loop {
        let resp = fetch(server.addr(), Method::Get, "/debug/traces", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-type"), Some("application/json"));
        let body = resp.text();
        assert!(
            body.starts_with("{\"traces\":["),
            "not a trace dump: {body}"
        );
        if body.starts_with("{\"traces\":[{") || std::time::Instant::now() > deadline {
            break body;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    // Served requests are ring-eligible; probes (/metrics, these
    // /debug/traces polls) are not.
    assert!(body.contains("\"page\":\"books\""), "{body}");
    assert!(body.contains("\"event\":\"enqueued\""), "{body}");
    assert!(body.contains("\"stage\":\"parse\""), "{body}");
    assert!(body.contains("\"total_us\":"), "{body}");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn baseline_metrics_exposition_is_valid() {
    let server = BaselineServer::start(ServerConfig::small(), demo_app(), demo_db()).unwrap();
    fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    fetch(server.addr(), Method::Get, "/logo.png", &[]).unwrap();
    settle(&server, 2);

    let text = scrape(&server);
    validate_exposition(&text).expect("baseline exposition must parse");
    assert!(text.contains("stage_queue_depth{stage=\"worker\"}"));
    assert!(text.contains("stage_queue_wait_seconds_bucket{stage=\"worker\""));
    assert!(text.contains("stage_service_seconds_bucket{stage=\"worker\""));
    assert!(text.contains("pool_completed_total{pool=\"baseline-worker\"} 2"));
    // The baseline has no scheduler and no traces.
    assert!(!text.contains("scheduler_t_spare"));
    assert!(!text.contains("trace_outcomes_total"));

    let resp = fetch(server.addr(), Method::Get, "/debug/traces", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.text(), "{\"traces\":[]}");
    server.shutdown().expect("clean shutdown");
}
