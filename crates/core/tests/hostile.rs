//! Hostile-client tests driving both servers over real TCP: drip-fed
//! headers must be evicted by the lifecycle deadline (with a real
//! `408`) while well-behaved clients keep getting served, the
//! connection governor's per-IP cap must turn away the (N+1)th socket
//! with a `503` and free the slot on close, the keep-alive request
//! quota must close the connection after its budget, and oversized
//! headers/bodies must be answered `431`/`413`, not silently dropped.

use staged_core::{App, BaselineServer, PageOutcome, ServerConfig, ServerHandle, StagedServer};
use staged_db::Database;
use staged_http::{fetch_with_timeout, read_response, Method, Response};
use staged_templates::TemplateStore;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ping_app() -> App {
    App::builder()
        .templates(Arc::new(TemplateStore::new()))
        .route("/ping", "ping", |_req, _db| {
            Ok(PageOutcome::Body(Response::text("pong")))
        })
        .build()
}

fn base_cfg() -> ServerConfig {
    ServerConfig {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ServerConfig::small()
    }
}

fn start_staged(cfg: ServerConfig) -> ServerHandle {
    StagedServer::start(cfg, ping_app(), Arc::new(Database::new())).expect("bind staged")
}

fn start_baseline(cfg: ServerConfig) -> ServerHandle {
    BaselineServer::start(cfg, ping_app(), Arc::new(Database::new())).expect("bind baseline")
}

fn counter(server: &ServerHandle, name: &str, labels: &[(&str, &str)]) -> f64 {
    server.registry().value(name, labels).unwrap_or(0.0)
}

fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Opens a connection and writes only a request line, leaving the
/// header block forever unfinished.
fn half_request(server: &ServerHandle) -> TcpStream {
    let mut sock = TcpStream::connect(server.addr()).expect("connect");
    sock.set_nodelay(true).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    sock.write_all(b"GET /ping HTTP/1.1\r\n").expect("write");
    sock
}

/// Two drip-feeding clients occupy the whole two-thread header pool;
/// the header deadline must evict both with a real `408` quickly enough
/// that a concurrent well-behaved client still gets its page.
#[test]
fn drip_fed_headers_get_408_while_wellbehaved_client_is_served() {
    for start in [
        start_staged as fn(ServerConfig) -> ServerHandle,
        start_baseline,
    ] {
        let mut cfg = base_cfg();
        cfg.limits.header_deadline = Some(Duration::from_millis(200));
        let server = start(cfg);

        let mut drips = [half_request(&server), half_request(&server)];
        let addr = server.addr();
        let wellbehaved = std::thread::spawn(move || {
            fetch_with_timeout(addr, Method::Get, "/ping", &[], Duration::from_secs(3))
        });
        // Drip one byte every 100 ms — well under the 2 s read timeout,
        // so only the lifecycle deadline can kill these connections.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(100));
            for sock in &mut drips {
                let _ = sock.write_all(b"a");
            }
        }
        for sock in &mut drips {
            let resp = read_response(sock).expect("drip client gets a real response");
            assert_eq!(resp.status.as_u16(), 408, "drip-fed header block");
            assert_eq!(resp.headers.get("connection"), Some("close"));
        }
        let resp = wellbehaved
            .join()
            .expect("join")
            .expect("well-behaved client served during the attack");
        assert!(resp.status.is_success(), "got {}", resp.status.as_u16());
        wait_for("slowloris kills counted", || {
            counter(&server, "slowloris_kills_total", &[]) >= 2.0
        });
        server.shutdown().expect("clean shutdown");
    }
}

/// With a per-IP cap of 2, the third concurrent socket from the same
/// address is answered `503` + `Retry-After`; closing one of the first
/// two frees the slot.
#[test]
fn per_ip_cap_turns_away_third_socket_and_frees_slot_on_close() {
    for start in [
        start_staged as fn(ServerConfig) -> ServerHandle,
        start_baseline,
    ] {
        let mut cfg = base_cfg();
        cfg.governor.per_ip_max_connections = 2;
        let server = start(cfg);

        let first = half_request(&server);
        let _second = half_request(&server);
        let mut third = TcpStream::connect(server.addr()).expect("connect");
        third
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let resp = read_response(&mut third).expect("turn-away is a real response");
        assert_eq!(resp.status.as_u16(), 503, "over-cap socket");
        assert!(resp.headers.get("retry-after").is_some());
        assert!(
            counter(
                &server,
                "connections_rejected_total",
                &[("reason", "per-ip-cap")],
            ) >= 1.0
        );

        drop(first);
        wait_for("freed slot admits a new connection", || {
            fetch_with_timeout(
                server.addr(),
                Method::Get,
                "/ping",
                &[],
                Duration::from_secs(1),
            )
            .map(|r| r.status.is_success())
            .unwrap_or(false)
        });
        server.shutdown().expect("clean shutdown");
    }
}

/// With a keep-alive quota of 2, a persistent connection is served
/// exactly twice and then closed; the cap is counted.
#[test]
fn keepalive_request_cap_closes_connection_after_budget() {
    for start in [
        start_staged as fn(ServerConfig) -> ServerHandle,
        start_baseline,
    ] {
        let mut cfg = base_cfg();
        cfg.governor.keepalive_max_requests = 2;
        let server = start(cfg);

        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        sock.set_nodelay(true).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for _ in 0..2 {
            sock.write_all(b"GET /ping HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("write");
            let resp = read_response(&mut sock).expect("served within quota");
            assert!(resp.status.is_success());
        }
        // Budget exhausted: the server hangs up instead of serving a third.
        let _ = sock.write_all(b"GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            read_response(&mut sock).is_err(),
            "third keep-alive request must not be served"
        );
        wait_for("keep-alive cap counted", || {
            counter(&server, "keepalive_capped_total", &[]) >= 1.0
        });
        server.shutdown().expect("clean shutdown");
    }
}

/// An over-long header line is answered `431`, an over-long declared
/// body `413` — explicit rejections with `Connection: close`, not
/// silent drops.
#[test]
fn oversized_header_and_body_get_431_and_413() {
    for start in [
        start_staged as fn(ServerConfig) -> ServerHandle,
        start_baseline,
    ] {
        let mut cfg = base_cfg();
        cfg.limits.max_line = 256;
        cfg.limits.max_body = 512;
        let server = start(cfg);

        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut req = b"GET /ping HTTP/1.1\r\nX-big: ".to_vec();
        req.extend(std::iter::repeat_n(b'a', 300));
        req.extend_from_slice(b"\r\n\r\n");
        sock.write_all(&req).expect("write");
        let resp = read_response(&mut sock).expect("431 is a real response");
        assert_eq!(resp.status.as_u16(), 431, "oversized header line");
        assert_eq!(resp.headers.get("connection"), Some("close"));

        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        sock.write_all(b"POST /ping HTTP/1.1\r\nHost: t\r\nContent-Length: 1024\r\n\r\n")
            .expect("write");
        let resp = read_response(&mut sock).expect("413 is a real response");
        assert_eq!(resp.status.as_u16(), 413, "oversized declared body");
        assert_eq!(resp.headers.get("connection"), Some("close"));
        server.shutdown().expect("clean shutdown");
    }
}
