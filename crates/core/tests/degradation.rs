//! The degradation ladder under a real database outage, over real TCP:
//! fresh renders while healthy, stale copies (`Warning: 110`) while the
//! circuit breaker is open, `503` + `Retry-After` only when no stale
//! copy exists — and full recovery through the breaker's half-open
//! probes once the database heals.

use staged_core::{
    App, BaselineServer, BreakerConfig, BreakerState, PageOutcome, ServerConfig, ServerHandle,
    StagedServer,
};
use staged_db::{Database, DbValue, FaultPlan};
use staged_http::{fetch, Method, StatusCode};
use staged_templates::{Context, TemplateStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const STALE_WARNING: &str = "110 - \"Response is Stale\"";

fn demo_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE book (id INT PRIMARY KEY, title TEXT)", &[])
        .unwrap();
    for (id, title) in [(1, "Dune"), (2, "Excession")] {
        db.execute(
            "INSERT INTO book (id, title) VALUES (?, ?)",
            &[DbValue::Int(id), DbValue::from(title)],
        )
        .unwrap();
    }
    db
}

/// A breaker tuned for test speed: trips after two observed failures,
/// probes again 200 ms later.
fn test_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_samples: 2,
        cooldown: Duration::from_millis(200),
        half_open_probes: 1,
    }
}

/// Two template-rendered query pages — `/books` marked stale-cacheable,
/// `/uncached` not — plus a cache-marked page that is never fetched
/// while healthy (`/never_warm`), to prove the 503 rung.
fn ladder_app(slow: Arc<AtomicBool>) -> App {
    let templates = Arc::new(TemplateStore::new());
    templates
        .insert("books.html", "<ul>{{ count }} books</ul>")
        .unwrap();
    let query = |slow: Option<Arc<AtomicBool>>| {
        move |_req: &staged_http::Request, db: &staged_db::PooledConnection| {
            if let Some(s) = &slow {
                if s.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(120));
                }
            }
            let result = db.execute("SELECT title FROM book ORDER BY title", &[])?;
            let mut ctx = Context::new();
            ctx.insert("count", result.rows.len().to_string());
            Ok(PageOutcome::template("books.html", ctx))
        }
    };
    App::builder()
        .templates(templates)
        .route("/books", "books", query(Some(Arc::clone(&slow))))
        .route("/uncached", "uncached", query(Some(slow)))
        .route("/never_warm", "never_warm", query(None))
        .stale_cacheable("/books")
        .stale_cacheable("/never_warm")
        .build()
}

fn outage() -> FaultPlan {
    FaultPlan::seeded(7).error_rate(1.0)
}

/// Polls `fetch` until `accept` passes or the deadline lapses.
fn fetch_until(
    server: &ServerHandle,
    path: &str,
    what: &str,
    accept: impl Fn(&staged_http::ClientResponse) -> bool,
) -> staged_http::ClientResponse {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(resp) = fetch(server.addr(), Method::Get, path, &[]) {
            if accept(&resp) {
                return resp;
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn healthz_body(server: &ServerHandle) -> String {
    let resp = fetch(server.addr(), Method::Get, "/healthz", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    String::from_utf8(resp.body.clone()).unwrap()
}

#[test]
fn staged_ladder_outage_brownout_recovery() {
    let mut config = ServerConfig::small();
    config.breaker = Some(test_breaker());
    let server = StagedServer::start(
        config,
        ladder_app(Arc::new(AtomicBool::new(false))),
        demo_db(),
    )
    .unwrap();

    // Rung 1 — healthy: a fresh render, no staleness markers, and the
    // response warms the stale cache.
    let fresh = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    assert_eq!(fresh.status, StatusCode::OK);
    assert!(fresh.headers.get("warning").is_none());
    assert_eq!(fresh.body, b"<ul>2 books</ul>");

    // Rung 2 — outage: every query fails, the breaker trips, and the
    // cached page is served stale with the RFC 7234 markers.
    server.set_fault_plan(Some(outage()));
    let stale = fetch_until(&server, "/books", "a stale 200 during the outage", |r| {
        r.status == StatusCode::OK && r.headers.get("warning").is_some()
    });
    assert_eq!(stale.headers.get("warning"), Some(STALE_WARNING));
    assert!(stale.headers.get("age").is_some(), "stale 200 carries Age");
    assert_eq!(stale.body, b"<ul>2 books</ul>");
    assert!(server.stats().degraded.value() >= 1);

    let breaker = server.breaker().expect("breaker configured");
    assert!(breaker.opened_total() >= 1, "breaker must have opened");
    let health = healthz_body(&server);
    assert!(
        health.contains("\"state\":\"open\"") || health.contains("\"state\":\"half-open\""),
        "breaker state visible in /healthz: {health}"
    );
    assert!(health.contains("\"degraded\":"), "{health}");

    // Cache-marked but never warmed: falls to the bottom rung — a
    // well-formed 503 with Retry-After, counted as a stale miss.
    let miss = fetch_until(&server, "/never_warm", "a 503 for the unwarmed page", |r| {
        r.status == StatusCode::SERVICE_UNAVAILABLE
    });
    assert!(miss.headers.get("retry-after").is_some());
    assert!(server.stats().stale_misses.value() >= 1);

    // Rung 3 — recovery: the database heals, a half-open probe
    // succeeds, the breaker closes, and responses are fresh again.
    server.set_fault_plan(None);
    let recovered = fetch_until(&server, "/books", "a fresh 200 after healing", |r| {
        r.status == StatusCode::OK && r.headers.get("warning").is_none()
    });
    assert_eq!(recovered.body, b"<ul>2 books</ul>");
    let wait = Instant::now() + Duration::from_secs(5);
    while breaker.state() != BreakerState::Closed {
        assert!(Instant::now() < wait, "breaker never closed after healing");
        let _ = fetch(server.addr(), Method::Get, "/books", &[]);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        breaker.half_open_total() >= 1,
        "recovery went via half-open"
    );
    assert!(healthz_body(&server).contains("\"state\":\"closed\""));

    for pool in server.pool_snapshots() {
        assert_eq!(pool.panicked, 0, "pool {} lost a worker", pool.name);
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn baseline_breaker_fails_fast_and_recovers_without_stale() {
    let mut config = ServerConfig::small();
    config.breaker = Some(test_breaker());
    let server = BaselineServer::start(
        config,
        ladder_app(Arc::new(AtomicBool::new(false))),
        demo_db(),
    )
    .unwrap();

    let fresh = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    assert_eq!(fresh.status, StatusCode::OK);

    server.set_fault_plan(Some(outage()));
    let shed = fetch_until(&server, "/books", "a breaker-open 503", |r| {
        r.status == StatusCode::SERVICE_UNAVAILABLE
    });
    // No stale cache on the baseline — the paper's comparison model
    // stays untouched; outage requests get the 503 rung directly.
    assert!(shed.headers.get("warning").is_none());
    assert!(shed.headers.get("retry-after").is_some());
    let breaker = server.breaker().expect("breaker configured");
    assert!(breaker.opened_total() >= 1);

    // Open-breaker requests fail fast instead of burning the checkout
    // backoff: a round trip is bounded well under a second.
    let t = Instant::now();
    let fast = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    assert_eq!(fast.status, StatusCode::SERVICE_UNAVAILABLE);
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "open breaker must fail fast, took {:?}",
        t.elapsed()
    );

    server.set_fault_plan(None);
    let recovered = fetch_until(&server, "/books", "a fresh 200 after healing", |r| {
        r.status == StatusCode::OK
    });
    assert!(recovered.headers.get("warning").is_none());
    for pool in server.pool_snapshots() {
        assert_eq!(pool.panicked, 0);
    }
    server.shutdown().expect("clean shutdown");
}

/// Deadline propagation into the render stage: a request whose budget
/// was spent generating data must not be rendered. With a stale copy on
/// hand the server downgrades to it (and closes the connection); the
/// expiry is counted either way.
#[test]
fn expired_render_jobs_downgrade_to_stale_not_fresh_render() {
    let slow = Arc::new(AtomicBool::new(false));
    let mut config = ServerConfig::small();
    config.request_deadline = Some(Duration::from_millis(60));
    let server = StagedServer::start(config, ladder_app(Arc::clone(&slow)), demo_db()).unwrap();

    // Warm the cache while fast.
    let fresh = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
    assert_eq!(fresh.status, StatusCode::OK);

    // Now every `/books` data generation overshoots the whole budget,
    // so the job reaches the render queue already expired.
    slow.store(true, Ordering::SeqCst);
    let resp = fetch_until(&server, "/books", "a stale downgrade on expiry", |r| {
        r.status == StatusCode::OK && r.headers.get("warning").is_some()
    });
    assert_eq!(resp.headers.get("warning"), Some(STALE_WARNING));
    assert_eq!(
        resp.headers.get("connection"),
        Some("close"),
        "an expired request's client may be gone; do not keep it alive"
    );
    assert!(server.stats().deadline_expired.value() >= 1);
    assert!(server.stats().degraded.value() >= 1);

    // The same expiry without a stale copy is a plain 503 — never a
    // fresh render of a request nobody is waiting for.
    let resp = fetch_until(&server, "/uncached", "a 503 on uncached expiry", |r| {
        r.status != StatusCode::OK
    });
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    server.shutdown().expect("clean shutdown");
}

/// Pre-rendered (`PageOutcome::Body`) pages bypass the render stage,
/// but cache-marked HTML 200s must still join the stale ladder.
#[test]
fn prerendered_body_pages_participate_in_stale_ladder() {
    let mut config = ServerConfig::small();
    config.breaker = Some(test_breaker());
    let app = App::builder()
        .route("/pre", "pre", |_req, db| {
            let r = db.execute("SELECT COUNT(*) FROM book", &[])?;
            Ok(PageOutcome::Body(staged_http::Response::html(format!(
                "<p>{} books</p>",
                r.single_int().unwrap_or(0)
            ))))
        })
        .stale_cacheable("/pre")
        .build();
    let server = StagedServer::start(config, app, demo_db()).unwrap();

    let fresh = fetch(server.addr(), Method::Get, "/pre", &[]).unwrap();
    assert_eq!(fresh.status, StatusCode::OK);
    assert!(fresh.headers.get("warning").is_none());

    server.set_fault_plan(Some(outage()));
    let stale = fetch_until(&server, "/pre", "a stale pre-rendered 200", |r| {
        r.status == StatusCode::OK && r.headers.get("warning").is_some()
    });
    assert_eq!(stale.headers.get("warning"), Some(STALE_WARNING));
    assert_eq!(stale.body, b"<p>2 books</p>");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn health_endpoints_report_state_on_both_servers() {
    for which in ["baseline", "staged"] {
        let mut config = ServerConfig::small();
        config.breaker = Some(test_breaker());
        let app = ladder_app(Arc::new(AtomicBool::new(false)));
        let server: ServerHandle = if which == "baseline" {
            BaselineServer::start(config, app, demo_db()).unwrap()
        } else {
            StagedServer::start(config, app, demo_db()).unwrap()
        };

        let health = fetch(server.addr(), Method::Get, "/healthz", &[]).unwrap();
        assert_eq!(health.status, StatusCode::OK, "{which}");
        assert_eq!(
            health.headers.get("content-type"),
            Some("application/json"),
            "{which}"
        );
        let body = String::from_utf8(health.body).unwrap();
        assert!(body.contains("\"phase\":\"ready\""), "{which}: {body}");
        assert!(body.contains("\"state\":\"closed\""), "{which}: {body}");
        assert!(body.contains("\"queues\":{"), "{which}: {body}");
        assert!(body.contains("\"pools\":["), "{which}: {body}");
        assert!(body.contains("\"panicked\":0"), "{which}: {body}");
        if which == "staged" {
            assert!(body.contains("\"t_reserve\":"), "{which}: {body}");
        } else {
            assert!(!body.contains("\"scheduler\""), "{which}: {body}");
        }

        let ready = fetch(server.addr(), Method::Get, "/readyz", &[]).unwrap();
        assert_eq!(ready.status, StatusCode::OK, "{which}");
        assert!(server.readiness().is_ready(), "{which}");

        // Health probes are not completions; the goodput series must
        // not be skewed by monitoring traffic.
        assert_eq!(server.stats().total_completed(), 0, "{which}");
        server.shutdown().expect("clean shutdown");
    }
}
