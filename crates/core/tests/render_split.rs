//! The paper's §3.3 suggested extension: quick/lengthy splitting of the
//! template-rendering stage, tracked per template.

use staged_core::{App, PageOutcome, ServerConfig, StagedServer};
use staged_db::Database;
use staged_http::{fetch, Method, StatusCode};
use staged_templates::{Context, TemplateStore, Value};
use std::sync::Arc;
use std::time::Duration;

fn app_with_two_templates() -> App {
    let templates = Arc::new(TemplateStore::new());
    templates.insert("tiny.html", "<p>{{ n }}</p>").unwrap();
    templates
        .insert(
            "huge.html",
            "<ul>{% for x in xs %}<li>{{ x }} and {{ x|add:1 }}</li>{% endfor %}</ul>",
        )
        .unwrap();
    App::builder()
        .templates(templates)
        // Render weight makes big pages measurably slow to render.
        .render_weight_per_kb(Duration::from_millis(2))
        .route("/tiny", "tiny", |_r, _db| {
            let mut ctx = Context::new();
            ctx.insert("n", 1);
            Ok(PageOutcome::template("tiny.html", ctx))
        })
        .route("/huge", "huge", |_r, _db| {
            let mut ctx = Context::new();
            ctx.insert("xs", Value::List((0..2_000).map(Value::Int).collect()));
            Ok(PageOutcome::template("huge.html", ctx))
        })
        .build()
}

fn config(split: bool) -> ServerConfig {
    ServerConfig {
        split_render: split,
        render_cutoff: Duration::from_millis(5),
        render_workers: 4,
        ..ServerConfig::small()
    }
}

#[test]
fn split_render_exposes_lengthy_gauge_and_serves_both_classes() {
    let server = StagedServer::start(
        config(true),
        app_with_two_templates(),
        Arc::new(Database::new()),
    )
    .unwrap();
    assert!(server.gauge_names().contains(&"render-lengthy"));
    let addr = server.addr();

    // Teach the render tracker that /huge renders slowly.
    let resp = fetch(addr, Method::Get, "/huge", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(resp.body.len() > 20_000);

    // Both template classes keep serving correctly afterwards.
    for _ in 0..3 {
        let tiny = fetch(addr, Method::Get, "/tiny", &[]).unwrap();
        assert_eq!(tiny.text(), "<p>1</p>");
        let huge = fetch(addr, Method::Get, "/huge", &[]).unwrap();
        assert_eq!(huge.status, StatusCode::OK);
    }
    // Completion counters are incremented just after the response is
    // written; wait for them to settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.stats().total_completed() < 7 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.stats().total_completed(), 7);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn split_render_protects_quick_renders_from_slow_ones() {
    let server = StagedServer::start(
        config(true),
        app_with_two_templates(),
        Arc::new(Database::new()),
    )
    .unwrap();
    let addr = server.addr();
    // Classify /huge as render-lengthy.
    fetch(addr, Method::Get, "/huge", &[]).unwrap();

    // Saturate rendering with slow pages…
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || fetch(addr, Method::Get, "/huge", &[]).unwrap()))
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    // …while a quick render completes before that batch is done.
    let tiny = fetch(addr, Method::Get, "/tiny", &[]).unwrap();
    assert_eq!(tiny.status, StatusCode::OK);
    let still_rendering = handles.iter().any(|h| !h.is_finished());
    assert!(
        still_rendering,
        "quick render should overtake the lengthy-render backlog"
    );
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn default_config_has_no_lengthy_render_pool() {
    let server = StagedServer::start(
        config(false),
        app_with_two_templates(),
        Arc::new(Database::new()),
    )
    .unwrap();
    assert!(!server.gauge_names().contains(&"render-lengthy"));
    let resp = fetch(server.addr(), Method::Get, "/huge", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    server.shutdown().expect("clean shutdown");
}
