//! Overload-control and fault-injection tests driving both servers
//! over real TCP: shed `503`s must be well-formed, deadlines must be
//! enforced, and fault-mode runs must finish with live workers and
//! positive goodput.

use staged_core::{
    App, BaselineServer, ListenerChaos, PageOutcome, ServerConfig, ServerHandle, ShedPoint,
    StagedServer,
};
use staged_db::{Database, DbValue, FaultPlan};
use staged_http::{fetch, fetch_with_timeout, Method, Response, StaticFiles, StatusCode};
use staged_templates::TemplateStore;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE book (id INT PRIMARY KEY, title TEXT, subject TEXT)",
        &[],
    )
    .unwrap();
    for (id, title) in [(1, "Dune"), (2, "Excession"), (3, "Salt")] {
        db.execute(
            "INSERT INTO book (id, title, subject) VALUES (?, ?, ?)",
            &[
                DbValue::Int(id),
                DbValue::from(title),
                DbValue::from("SCIFI"),
            ],
        )
        .unwrap();
    }
    db
}

/// An app whose `/block` handler parks until `release` flips, plus a
/// plain `/books` query route and one static file.
fn gated_app(started: Arc<AtomicUsize>, release: Arc<AtomicBool>) -> App {
    let mut statics = StaticFiles::in_memory();
    statics.insert("/img/pixel.gif", b"GIF89a-pixel".to_vec());
    App::builder()
        .templates(Arc::new(TemplateStore::new()))
        .static_files(statics)
        .route("/block", "block", move |_req, _db| {
            started.fetch_add(1, Ordering::SeqCst);
            let wait = Instant::now();
            while !release.load(Ordering::SeqCst) {
                assert!(
                    wait.elapsed() < Duration::from_secs(10),
                    "gate never released"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(PageOutcome::Body(Response::text("unblocked")))
        })
        .route("/books", "books", |_req, db| {
            let result = db.execute("SELECT title FROM book ORDER BY title", &[])?;
            Ok(PageOutcome::Body(Response::text(format!(
                "{} books",
                result.rows.len()
            ))))
        })
        .build()
}

fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Saturates `server`'s dynamic path with `blockers` parked `/block`
/// requests, then fires `extra` more and returns their responses.
fn saturate_and_probe(
    server: &ServerHandle,
    started: &Arc<AtomicUsize>,
    release: &Arc<AtomicBool>,
    blockers: usize,
    extra: usize,
) -> Vec<staged_http::ClientResponse> {
    let addr = server.addr();
    // Park the workers one at a time: with a capacity-1 queue, firing
    // all the blockers at once would shed some of them before an idle
    // worker gets a chance to pop.
    let holders: Vec<_> = (0..blockers)
        .map(|i| {
            let h = std::thread::spawn(move || {
                fetch_with_timeout(addr, Method::Get, "/block", &[], Duration::from_secs(20))
            });
            wait_for("worker to park", || started.load(Ordering::SeqCst) > i);
            h
        })
        .collect();
    // One more request can sit in the single queue slot; give it time to
    // land there before probing.
    let filler = std::thread::spawn(move || {
        fetch_with_timeout(addr, Method::Get, "/block", &[], Duration::from_secs(20))
    });
    std::thread::sleep(Duration::from_millis(150));

    let probes: Vec<_> = (0..extra)
        .map(|_| {
            std::thread::spawn(move || {
                fetch_with_timeout(addr, Method::Get, "/block", &[], Duration::from_secs(20))
            })
        })
        .collect();
    let responses: Vec<_> = probes
        .into_iter()
        .map(|h| h.join().unwrap().expect("shed response must still parse"))
        .collect();

    release.store(true, Ordering::SeqCst);
    for h in holders {
        let resp = h.join().unwrap().expect("parked request must complete");
        assert_eq!(resp.status, StatusCode::OK);
    }
    let _ = filler.join().unwrap();
    responses
}

fn assert_shed_response(resp: &staged_http::ClientResponse, which: &str) {
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE, "{which}");
    let retry: u64 = resp
        .headers
        .get("retry-after")
        .unwrap_or_else(|| panic!("{which}: shed 503 must carry Retry-After"))
        .parse()
        .expect("Retry-After must be integral seconds");
    assert!(retry >= 1, "{which}");
    assert_eq!(
        resp.headers.get("connection"),
        Some("close"),
        "{which}: shed 503 must close the connection"
    );
    // The body (if any) matched Content-Length exactly, or the close was
    // clean EOF — otherwise `fetch` would have errored.
}

#[test]
fn staged_sheds_parseable_503_when_dynamic_queue_fills() {
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let mut config = ServerConfig::small();
    config.general_queue_cap = Some(1);
    let server = StagedServer::start(
        config.clone(),
        gated_app(started.clone(), release.clone()),
        demo_db(),
    )
    .unwrap();

    let responses = saturate_and_probe(&server, &started, &release, config.general_workers, 4);
    let sheds = responses
        .iter()
        .filter(|r| r.status == StatusCode::SERVICE_UNAVAILABLE)
        .count();
    assert!(sheds >= 3, "expected most probes shed, got {sheds}/4");
    for resp in responses
        .iter()
        .filter(|r| r.status == StatusCode::SERVICE_UNAVAILABLE)
    {
        assert_shed_response(resp, "staged");
    }

    // Static requests stay admitted while the dynamic stage is refusing
    // work — the whole point of per-stage queues.
    let stats = server.stats();
    assert!(
        stats.shed(ShedPoint::General) >= 3,
        "sheds recorded per stage"
    );
    assert_eq!(stats.total_sheds(), stats.shed(ShedPoint::General));
    let snapshot = server
        .pool_snapshots()
        .into_iter()
        .find(|p| p.name == "general-dynamic")
        .expect("general pool snapshot");
    assert_eq!(snapshot.rejected, stats.shed(ShedPoint::General));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn staged_static_path_survives_dynamic_saturation() {
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let mut config = ServerConfig::small();
    config.general_queue_cap = Some(1);
    let server = StagedServer::start(
        config.clone(),
        gated_app(started.clone(), release.clone()),
        demo_db(),
    )
    .unwrap();
    let addr = server.addr();

    let holders: Vec<_> = (0..config.general_workers)
        .map(|i| {
            let h = std::thread::spawn(move || {
                fetch_with_timeout(addr, Method::Get, "/block", &[], Duration::from_secs(20))
            });
            wait_for("worker to park", || started.load(Ordering::SeqCst) > i);
            h
        })
        .collect();

    // Every dynamic worker is parked, yet statics are served promptly.
    for _ in 0..5 {
        let resp = fetch(addr, Method::Get, "/img/pixel.gif", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body, b"GIF89a-pixel");
    }
    assert_eq!(server.stats().shed(ShedPoint::StaticStage), 0);

    release.store(true, Ordering::SeqCst);
    for h in holders {
        assert!(h.join().unwrap().unwrap().status.is_success());
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn baseline_sheds_parseable_503_when_worker_queue_fills() {
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let mut config = ServerConfig::small();
    config.baseline_queue_cap = Some(1);
    let server = BaselineServer::start(
        config.clone(),
        gated_app(started.clone(), release.clone()),
        demo_db(),
    )
    .unwrap();

    let responses = saturate_and_probe(&server, &started, &release, config.baseline_workers, 4);
    let sheds = responses
        .iter()
        .filter(|r| r.status == StatusCode::SERVICE_UNAVAILABLE)
        .count();
    assert!(sheds >= 3, "expected most probes shed, got {sheds}/4");
    for resp in responses
        .iter()
        .filter(|r| r.status == StatusCode::SERVICE_UNAVAILABLE)
    {
        assert_shed_response(resp, "baseline");
    }
    // The baseline can only shed at its front door.
    let stats = server.stats();
    assert!(stats.shed(ShedPoint::Listener) >= 3);
    let snapshot = &server.pool_snapshots()[0];
    assert_eq!(snapshot.name, "baseline-worker");
    assert_eq!(snapshot.rejected, stats.shed(ShedPoint::Listener));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn expired_deadlines_answer_503_on_both_servers() {
    for which in ["baseline", "staged"] {
        let mut config = ServerConfig::small();
        config.request_deadline = Some(Duration::ZERO);
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(true));
        let app = gated_app(started, release);
        let server: ServerHandle = if which == "baseline" {
            BaselineServer::start(config, app, demo_db()).unwrap()
        } else {
            StagedServer::start(config, app, demo_db()).unwrap()
        };
        let resp = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE, "{which}");
        assert!(resp.headers.get("retry-after").is_some(), "{which}");
        assert!(
            server.stats().deadline_expired.value() >= 1,
            "{which}: expiry must be counted"
        );
        server.shutdown().expect("clean shutdown");
    }
}

/// A full fault-mode run: query errors, added latency, periodic
/// connection death, and listener chaos all at once. The run must
/// terminate (no hangs), no worker may die, and goodput must stay
/// positive on both servers.
#[test]
fn fault_mode_run_keeps_both_servers_alive() {
    for which in ["baseline", "staged"] {
        let mut config = ServerConfig::small();
        config.fault_plan = Some(
            FaultPlan::seeded(0x0d5e)
                .error_rate(0.05)
                .extra_latency(Duration::from_millis(1))
                .death_period(17),
        );
        config.chaos = Some(ListenerChaos::seeded(0x0d5e).kill_rate(0.1));
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(true));
        let app = gated_app(started, release);
        let server: ServerHandle = if which == "baseline" {
            BaselineServer::start(config, app, demo_db()).unwrap()
        } else {
            StagedServer::start(config, app, demo_db()).unwrap()
        };
        let addr = server.addr();

        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    for n in 0..30 {
                        let path = if (i + n) % 3 == 0 {
                            "/img/pixel.gif"
                        } else {
                            "/books"
                        };
                        if let Ok(resp) =
                            fetch_with_timeout(addr, Method::Get, path, &[], Duration::from_secs(5))
                        {
                            if resp.status.is_success() {
                                ok += 1;
                            }
                        }
                    }
                    ok
                })
            })
            .collect();
        let ok: u64 = clients.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(ok > 0, "{which}: goodput must stay positive under faults");

        let stats = server.stats();
        assert!(
            stats.chaos_killed.value() > 0,
            "{which}: chaos must have fired"
        );
        for pool in server.pool_snapshots() {
            assert_eq!(
                pool.panicked, 0,
                "{which}: pool {} lost a worker",
                pool.name
            );
        }
        // The server is still answering after the storm (statics bypass
        // the fault plan; retry until chaos lets one connection through).
        let alive = (0..20).any(|_| {
            fetch(addr, Method::Get, "/img/pixel.gif", &[]).is_ok_and(|r| r.status.is_success())
        });
        assert!(alive, "{which}: server dead after fault run");
        server.shutdown().expect("clean shutdown");
    }
}

/// Connection death alone: every query eventually rides a fresh
/// connection, so serial requests keep succeeding.
#[test]
fn connection_death_is_recovered_transparently() {
    for which in ["baseline", "staged"] {
        let mut config = ServerConfig::small();
        config.fault_plan = Some(FaultPlan::seeded(9).death_period(4));
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(true));
        let app = gated_app(started, release);
        let server: ServerHandle = if which == "baseline" {
            BaselineServer::start(config, app, demo_db()).unwrap()
        } else {
            StagedServer::start(config, app, demo_db()).unwrap()
        };
        let mut ok = 0;
        for _ in 0..30 {
            let resp = fetch(server.addr(), Method::Get, "/books", &[]).unwrap();
            if resp.status.is_success() {
                ok += 1;
            }
        }
        assert!(
            ok >= 27,
            "{which}: dead connections must be replaced, got {ok}/30"
        );
        for pool in server.pool_snapshots() {
            assert_eq!(pool.panicked, 0, "{which}");
        }
        server.shutdown().expect("clean shutdown");
    }
}
