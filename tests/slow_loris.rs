//! Read-timeout defence: stalled connections must not pin worker
//! threads indefinitely.

use staged_web::core::{App, PageOutcome, ServerConfig, StagedServer};
use staged_web::db::Database;
use staged_web::http::{fetch, Method, Response, StatusCode};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_app() -> App {
    App::builder()
        .route("/ping", "ping", |_r, _db| {
            Ok(PageOutcome::Body(Response::text("pong")))
        })
        .build()
}

#[test]
fn stalled_connections_are_dropped_and_workers_freed() {
    // Small server: only 2 header workers — without the read timeout,
    // two loris connections would block header parsing entirely.
    let config = ServerConfig::small(); // read_timeout = 500ms
    let server = StagedServer::start(config, tiny_app(), Arc::new(Database::new())).unwrap();
    let addr = server.addr();

    // Occupy BOTH header workers with half-written request lines.
    let mut loris1 = TcpStream::connect(addr).unwrap();
    loris1.write_all(b"GET /pi").unwrap();
    let mut loris2 = TcpStream::connect(addr).unwrap();
    loris2.write_all(b"GET /pi").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Both header workers are blocked right now; the timeout frees them.
    std::thread::sleep(Duration::from_millis(600));
    let resp = fetch(addr, Method::Get, "/ping", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(
        server.stats().dropped_connections.value() >= 2,
        "stalled connections should be counted as dropped"
    );
    server.shutdown().expect("clean shutdown");
}

#[test]
fn headers_arriving_in_dribbles_still_parse_within_timeout() {
    let server =
        StagedServer::start(ServerConfig::small(), tiny_app(), Arc::new(Database::new())).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    for chunk in [
        "GET /pi",
        "ng HT",
        "TP/1.1\r\n",
        "Connection: close\r\n",
        "\r\n",
    ] {
        stream.write_all(chunk.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let resp = staged_web::http::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.text(), "pong");
    server.shutdown().expect("clean shutdown");
}
