//! Workspace-level integration tests spanning all crates through the
//! umbrella `staged_web` re-exports.

use staged_web::core::{App, BaselineServer, PageOutcome, RequestKind, ServerConfig, StagedServer};
use staged_web::db::{CostModel, Database, DbValue};
use staged_web::http::{fetch, fetch_with_timeout, Method, Response, StatusCode};
use staged_web::templates::{Context, TemplateStore, Value};
use staged_web::tpcw::{build_app, populate, ScaleConfig};
use std::sync::Arc;
use std::time::Duration;

/// The complete pipeline of the paper in one test: request → header
/// parse → classify → dynamic handler (SQL) → unrendered template →
/// render pool → Content-Length-exact response.
#[test]
fn full_pipeline_request_to_rendered_response() {
    let db = Arc::new(Database::new());
    let scale = ScaleConfig::tiny();
    populate(&db, &scale);
    let app = build_app(&db, &scale);
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();

    let resp = fetch(server.addr(), Method::Get, "/home?c_id=3", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let text = resp.text();
    assert!(text.contains("Promotional items"));
    // Content-Length exactness (§3.2 of the paper).
    let declared: usize = resp.headers.get("content-length").unwrap().parse().unwrap();
    assert_eq!(declared, resp.body.len());
    server.shutdown().expect("clean shutdown");
}

/// The quick/lengthy classifier drives pool selection end to end:
/// after a lengthy page is observed, requests for it flow through the
/// lengthy pool while quick traffic keeps the general pool clear.
#[test]
fn classifier_routes_lengthy_pages_to_lengthy_pool() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    for i in 0..500 {
        db.execute(
            "INSERT INTO t (id, v) VALUES (?, ?)",
            &[DbValue::Int(i), DbValue::Int(i)],
        )
        .unwrap();
    }
    // Full scans cost ~200ms; point lookups are free. The scans must
    // dwarf the 30ms probe window below even when Table 1 spills part
    // of the batch onto the general pool's spare threads.
    db.set_cost_model(CostModel::new(400_000, 0));
    let app = App::builder()
        .route("/scan", "scan", |_r, db| {
            db.execute("SELECT COUNT(*) FROM t WHERE v >= 0", &[])?;
            Ok(PageOutcome::Body(Response::text("scanned")))
        })
        .route("/point", "point", |_r, db| {
            db.execute("SELECT v FROM t WHERE id = 1", &[])?;
            Ok(PageOutcome::Body(Response::text("point")))
        })
        .build();
    let mut config = ServerConfig::small();
    config.lengthy_cutoff = Duration::from_millis(5);
    let server = StagedServer::start(config, app, db).unwrap();
    let addr = server.addr();

    // Teach the classifier, then hit the lengthy page concurrently.
    fetch(addr, Method::Get, "/scan", &[]).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || fetch(addr, Method::Get, "/scan", &[]).unwrap()))
        .collect();
    // Quick requests overtake the scans: the point lookup must finish
    // while lengthy work is still in flight (an ordering assertion,
    // robust to absolute timing noise on a loaded machine).
    std::thread::sleep(Duration::from_millis(30));
    let resp = fetch(addr, Method::Get, "/point", &[]).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let still_scanning = handles.iter().any(|h| !h.is_finished());
    assert!(
        still_scanning,
        "quick request should complete before the batch of lengthy scans"
    );
    for h in handles {
        h.join().unwrap();
    }
    // Completion counters move just after the response bytes are
    // written, so the client can observe its response a beat before
    // the worker increments; poll briefly for the counters to settle.
    // The `stats_completion_follows_send` model test (crates/check,
    // DESIGN.md §15) proves the send→increment ordering on every
    // explored interleaving — the counter always catches up, so this
    // poll converges and its direction is the only sound one.
    let stats = server.stats();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while stats.completed(RequestKind::LengthyDynamic) < 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(stats.completed(RequestKind::LengthyDynamic) >= 4);
    assert!(stats.completed(RequestKind::QuickDynamic) >= 1);
    server.shutdown().expect("clean shutdown");
}

/// Both servers produce byte-identical page bodies for the same request
/// over the same data — the request-processing model must not change
/// application semantics.
#[test]
fn both_servers_render_identical_pages() {
    let scale = ScaleConfig::tiny();
    let targets = [
        "/home?c_id=7",
        "/product_detail?i_id=11&c_id=7",
        "/new_products?subject=HISTORY&c_id=7",
        "/best_sellers?subject=ARTS&c_id=7",
        "/execute_search?type=title&search=Star&c_id=7",
        "/order_display?c_id=7",
        "/search_request?c_id=7",
    ];
    let mut bodies: Vec<Vec<String>> = Vec::new();
    for staged in [false, true] {
        let db = Arc::new(Database::new());
        populate(&db, &scale);
        let app = build_app(&db, &scale);
        let server = if staged {
            StagedServer::start(ServerConfig::small(), app, db).unwrap()
        } else {
            BaselineServer::start(ServerConfig::small(), app, db).unwrap()
        };
        bodies.push(
            targets
                .iter()
                .map(|t| fetch(server.addr(), Method::Get, t, &[]).unwrap().text())
                .collect(),
        );
        server.shutdown().expect("clean shutdown");
    }
    for (i, target) in targets.iter().enumerate() {
        assert_eq!(
            bodies[0][i], bodies[1][i],
            "baseline and staged responses differ for {target}"
        );
    }
}

/// Both servers expose `GET /debug/explain`: after a page is served,
/// its route appears in the registry and `?route=<page>` renders every
/// statement it ran with its query-plan tree.
#[test]
fn both_servers_serve_explain_plans() {
    let scale = ScaleConfig::tiny();
    for staged in [false, true] {
        let db = Arc::new(Database::new());
        populate(&db, &scale);
        let app = build_app(&db, &scale);
        let server = if staged {
            StagedServer::start(ServerConfig::small(), app, db).unwrap()
        } else {
            BaselineServer::start(ServerConfig::small(), app, db).unwrap()
        };
        let addr = server.addr();

        // Unknown routes 404 until the page has been served once.
        let resp = fetch(addr, Method::Get, "/debug/explain?route=best_sellers", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "staged={staged}");

        fetch(addr, Method::Get, "/best_sellers?subject=ARTS&c_id=7", &[]).unwrap();

        let listing = fetch(addr, Method::Get, "/debug/explain", &[]).unwrap();
        assert_eq!(listing.status, StatusCode::OK);
        assert!(listing.text().contains("best_sellers"), "staged={staged}");

        let resp = fetch(addr, Method::Get, "/debug/explain?route=best_sellers", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "staged={staged}");
        let body = resp.text();
        assert!(body.contains("\"route\":\"best_sellers\""), "{body}");
        assert!(body.contains("\"sql\":"), "{body}");
        assert!(body.contains("\"node\":"), "{body}");
        // The best-sellers page runs `MAX(o_id)` (index-endpoint
        // shortcut) and a three-way join; both should be visible.
        assert!(body.contains("index_endpoint"), "staged={staged}: {body}");
        assert!(body.contains("join"), "staged={staged}: {body}");

        // The plan-node timing family is registered and populated
        // (Registry::value reads a histogram's sample count).
        let samples: f64 = staged_web::db::PLAN_NODE_KINDS
            .iter()
            .filter_map(|kind| {
                server
                    .registry()
                    .value("db_plan_node_seconds", &[("node", kind)])
            })
            .sum();
        assert!(samples > 0.0, "staged={staged}: no plan-node samples");

        server.shutdown().expect("clean shutdown");
    }
}

/// The template engine, database, and HTTP stack compose for custom
/// applications, not just the bundled TPC-W one.
#[test]
fn custom_app_composes_all_crates() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE note (id INT PRIMARY KEY, body TEXT)", &[])
        .unwrap();
    let templates = Arc::new(TemplateStore::new());
    templates
        .insert(
            "notes.html",
            "<ul>{% for n in notes %}<li>{{ n }}</li>{% empty %}<li>none</li>{% endfor %}</ul>",
        )
        .unwrap();
    let app = App::builder()
        .templates(templates)
        .route("/add", "add", |req, db| {
            let id = req.param_u64("id").unwrap_or(0) as i64;
            let body = req.param("body").unwrap_or("").to_string();
            db.execute(
                "INSERT INTO note (id, body) VALUES (?, ?)",
                &[DbValue::Int(id), DbValue::from(body.as_str())],
            )?;
            Ok(PageOutcome::Body(Response::text("added")))
        })
        .route("/notes", "notes", |_r, db| {
            let rows = db.execute("SELECT body FROM note ORDER BY id", &[])?;
            let mut ctx = Context::new();
            ctx.insert(
                "notes",
                Value::List(
                    rows.rows
                        .iter()
                        .map(|r| Value::from(r[0].to_string()))
                        .collect(),
                ),
            );
            Ok(PageOutcome::template("notes.html", ctx))
        })
        .build();
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();
    let addr = server.addr();

    let empty = fetch(addr, Method::Get, "/notes", &[]).unwrap();
    assert!(empty.text().contains("<li>none</li>"));
    fetch(addr, Method::Get, "/add?id=1&body=hello+world", &[]).unwrap();
    fetch(
        addr,
        Method::Get,
        "/add?id=2&body=%3Cb%3Ebold%3C%2Fb%3E",
        &[],
    )
    .unwrap();
    let notes = fetch(addr, Method::Get, "/notes", &[]).unwrap().text();
    assert!(notes.contains("<li>hello world</li>"));
    // HTML injection from the database is escaped by the template layer.
    assert!(notes.contains("&lt;b&gt;bold&lt;/b&gt;"));
    assert!(!notes.contains("<b>bold</b>"));
    server.shutdown().expect("clean shutdown");
}

/// Connection-pool accounting holds across a busy multi-client run.
#[test]
fn connection_budget_is_respected_under_load() {
    let db = Arc::new(Database::new());
    let scale = ScaleConfig::tiny();
    populate(&db, &scale);
    let app = build_app(&db, &scale);
    let config = ServerConfig::small();
    let budget = config.db_connections;
    let server = StagedServer::start(config, app, db).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                for k in 0..6 {
                    let target = format!("/product_detail?i_id={}&c_id=1", i * 6 + k + 1);
                    let resp = fetch_with_timeout(
                        addr,
                        Method::Get,
                        &target,
                        &[],
                        Duration::from_secs(30),
                    )
                    .unwrap();
                    assert!(resp.status.is_success());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // All dynamic workers (= all connections) are idle again.
    assert_eq!(server.gauge("general"), Some(0));
    assert_eq!(server.gauge("lengthy"), Some(0));
    assert!(budget >= 5);
    server.shutdown().expect("clean shutdown");
}

/// Failure injection: slow-loris partial requests, oversized requests,
/// and garbage do not wedge the staged server.
#[test]
fn hostile_clients_do_not_wedge_the_server() {
    use std::io::Write;
    let db = Arc::new(Database::new());
    let scale = ScaleConfig::tiny();
    populate(&db, &scale);
    let app = build_app(&db, &scale);
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();
    let addr = server.addr();

    // Slow loris: send half a request line and hang (drop after).
    let mut loris = std::net::TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /home?c_").unwrap();

    // Garbage bytes.
    let mut garbage = std::net::TcpStream::connect(addr).unwrap();
    garbage
        .write_all(b"\x00\x01\x02\x03 nonsense\r\n\r\n")
        .unwrap();

    // An over-long URL.
    let long = format!("/home?junk={}", "x".repeat(64 * 1024));
    let _ = fetch(addr, Method::Get, &long, &[]);

    // Normal traffic still flows.
    for _ in 0..5 {
        let resp = fetch(addr, Method::Get, "/home?c_id=1", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }
    drop(loris);
    drop(garbage);
    server.shutdown().expect("clean shutdown");
}
