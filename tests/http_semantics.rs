//! HTTP protocol semantics across both servers: HEAD, keep-alive
//! pipelining, and POST bodies.

use staged_web::core::{App, BaselineServer, PageOutcome, ServerConfig, StagedServer};
use staged_web::db::Database;
use staged_web::http::{read_response, Response, StaticFiles, StatusCode};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn demo_app() -> App {
    let mut statics = StaticFiles::in_memory();
    statics.insert("/logo.png", vec![7u8; 321]);
    App::builder()
        .static_files(statics)
        .route("/echo", "echo", |req, _db| {
            let body = format!(
                "method={} q={} body={}",
                req.method(),
                req.param("q").unwrap_or("-"),
                String::from_utf8_lossy(&req.body),
            );
            Ok(PageOutcome::Body(Response::text(body)))
        })
        .build()
}

fn each_server(test: impl Fn(std::net::SocketAddr, &str)) {
    let baseline =
        BaselineServer::start(ServerConfig::small(), demo_app(), Arc::new(Database::new()))
            .unwrap();
    test(baseline.addr(), "baseline");
    baseline.shutdown().expect("clean shutdown");
    let staged =
        StagedServer::start(ServerConfig::small(), demo_app(), Arc::new(Database::new())).unwrap();
    test(staged.addr(), "staged");
    staged.shutdown().expect("clean shutdown");
}

#[test]
fn head_returns_headers_but_no_body() {
    each_server(|addr, which| {
        for target in ["/echo?q=1", "/logo.png"] {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    format!("HEAD {target} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
                )
                .unwrap();
            // Read to EOF manually: a HEAD response is headers only, so
            // the generic client (which would wait for Content-Length
            // bytes) does not apply.
            let mut raw = Vec::new();
            std::io::Read::read_to_end(&mut stream, &mut raw).unwrap();
            let text = String::from_utf8_lossy(&raw);
            assert!(
                text.starts_with("HTTP/1.1 200 OK\r\n"),
                "{which} {target}: {text}"
            );
            let header_end = text.find("\r\n\r\n").expect("header terminator") + 4;
            assert!(
                text.to_lowercase().contains("content-length: "),
                "{which} {target}: HEAD keeps Content-Length"
            );
            assert!(
                !text.to_lowercase().contains("content-length: 0"),
                "{which} {target}: Content-Length must describe the body"
            );
            assert_eq!(
                raw.len(),
                header_end,
                "{which} {target}: HEAD must not carry a body"
            );
        }
    });
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    each_server(|addr, which| {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three requests, keep-alive, then close on the last.
        for i in 0..3 {
            let connection = if i == 2 { "close" } else { "keep-alive" };
            stream
                .write_all(
                    format!("GET /echo?q={i} HTTP/1.1\r\nConnection: {connection}\r\n\r\n")
                        .as_bytes(),
                )
                .unwrap();
            let resp = read_response(&mut stream).unwrap();
            assert_eq!(resp.status, StatusCode::OK, "{which} request {i}");
            assert!(
                resp.text().contains(&format!("q={i}")),
                "{which}: wrong response for request {i}: {}",
                resp.text()
            );
        }
    });
}

#[test]
fn keep_alive_mixes_static_and_dynamic() {
    each_server(|addr, which| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /logo.png HTTP/1.1\r\n\r\n").unwrap();
        let first = read_response(&mut stream).unwrap();
        assert_eq!(first.body.len(), 321, "{which}");
        stream
            .write_all(b"GET /echo?q=after HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let second = read_response(&mut stream).unwrap();
        assert!(second.text().contains("q=after"), "{which}");
    });
}

#[test]
fn post_bodies_reach_handlers() {
    each_server(|addr, which| {
        let mut stream = TcpStream::connect(addr).unwrap();
        let payload = "name=ada&job=countess";
        stream
            .write_all(
                format!(
                    "POST /echo HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    payload.len(),
                    payload
                )
                .as_bytes(),
            )
            .unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{which}");
        let text = resp.text();
        assert!(text.contains("method=POST"), "{which}: {text}");
        assert!(text.contains(payload), "{which}: {text}");
    });
}

#[test]
fn http_10_without_keep_alive_closes() {
    each_server(|addr, which| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /echo?q=ten HTTP/1.0\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert!(resp.text().contains("q=ten"), "{which}");
        // The server closed the connection: the next read hits EOF.
        let mut probe = [0u8; 1];
        let n = std::io::Read::read(&mut stream, &mut probe).unwrap_or(0);
        assert_eq!(n, 0, "{which}: HTTP/1.0 connection should be closed");
    });
}

#[test]
fn method_is_case_sensitive_per_rfc() {
    each_server(|addr, which| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"get /echo HTTP/1.1\r\n\r\n").unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST, "{which}");
    });
}
