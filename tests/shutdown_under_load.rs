//! Graceful shutdown while requests are in flight: the drain must
//! complete without deadlock, and in-flight work must not crash the
//! process.

use staged_web::core::{App, PageOutcome, ServerConfig, StagedServer};
use staged_web::db::{CostModel, Database, DbValue};
use staged_web::http::{fetch_with_timeout, Method, Response};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn shutdown_drains_in_flight_requests_without_deadlock() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    for i in 0..200 {
        db.execute(
            "INSERT INTO t (id, v) VALUES (?, ?)",
            &[DbValue::Int(i), DbValue::Int(i)],
        )
        .unwrap();
    }
    db.set_cost_model(CostModel::new(20_000, 0)); // scans ~4ms
    let app = App::builder()
        .route("/work", "work", |_r, db| {
            db.execute("SELECT COUNT(*) FROM t WHERE v >= 0", &[])?;
            Ok(PageOutcome::Body(Response::text("done")))
        })
        .build();
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();
    let addr = server.addr();

    // Clients hammer the server with keep-alive loops until it goes away.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..10)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Errors are expected once shutdown begins; the only
                    // failure mode under test is a hang.
                    let _ =
                        fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(5));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = Instant::now();
    let shutdown_thread = std::thread::spawn(move || server.shutdown());
    // The drain must finish promptly (bounded by in-flight work, not by
    // the continuing client pressure).
    while !shutdown_thread.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "shutdown did not complete within 10s under load"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown_thread.join().unwrap();

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }

    // The port is no longer being served.
    let after = fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(1));
    assert!(after.is_err(), "server still answering after shutdown");
}
