//! Graceful shutdown while requests are in flight: the drain must
//! complete without deadlock, and in-flight work must not crash the
//! process.

use staged_web::core::{App, BaselineServer, PageOutcome, Phase, ServerConfig, StagedServer};
use staged_web::db::{CostModel, Database, DbValue};
use staged_web::http::{fetch_with_timeout, Method, Response, StatusCode};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn shutdown_drains_in_flight_requests_without_deadlock() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    for i in 0..200 {
        db.execute(
            "INSERT INTO t (id, v) VALUES (?, ?)",
            &[DbValue::Int(i), DbValue::Int(i)],
        )
        .unwrap();
    }
    db.set_cost_model(CostModel::new(20_000, 0)); // scans ~4ms
    let app = App::builder()
        .route("/work", "work", |_r, db| {
            db.execute("SELECT COUNT(*) FROM t WHERE v >= 0", &[])?;
            Ok(PageOutcome::Body(Response::text("done")))
        })
        .build();
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();
    let addr = server.addr();

    // Clients hammer the server with keep-alive loops until it goes away.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..10)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Errors are expected once shutdown begins; the only
                    // failure mode under test is a hang.
                    let _ =
                        fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(5));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = Instant::now();
    let shutdown_thread = std::thread::spawn(move || server.shutdown());
    // The drain must finish promptly (bounded by in-flight work, not by
    // the continuing client pressure).
    while !shutdown_thread.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "shutdown did not complete within 10s under load"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown_thread.join().unwrap();

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }

    // The port is no longer being served.
    let after = fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(1));
    assert!(after.is_err(), "server still answering after shutdown");
}

/// Drain-aware shutdown must lose **zero accepted requests**: every
/// request parked in a worker or sitting in a stage queue when shutdown
/// begins still receives its complete `200` — readiness flips to
/// draining first, so a load balancer stops routing new work.
#[test]
fn shutdown_loses_no_accepted_requests() {
    for which in ["baseline", "staged"] {
        let db = Arc::new(Database::new());
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&started);
        let r = Arc::clone(&release);
        let app = App::builder()
            .route("/gate", "gate", move |_req, _db| {
                s.fetch_add(1, Ordering::SeqCst);
                let wait = Instant::now();
                while !r.load(Ordering::SeqCst) {
                    assert!(
                        wait.elapsed() < Duration::from_secs(10),
                        "gate never released"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(PageOutcome::Body(Response::text("drained")))
            })
            .build();
        let config = ServerConfig::small();
        let workers = if which == "baseline" {
            config.baseline_workers
        } else {
            config.general_workers
        };
        let server = if which == "baseline" {
            BaselineServer::start(config, app, db).unwrap()
        } else {
            StagedServer::start(config, app, db).unwrap()
        };
        let addr = server.addr();
        assert_eq!(server.readiness().phase(), Phase::Ready, "{which}");

        // Park every dynamic worker, one at a time so none are shed.
        let mut clients: Vec<_> = (0..workers)
            .map(|i| {
                let h = std::thread::spawn(move || {
                    fetch_with_timeout(addr, Method::Get, "/gate", &[], Duration::from_secs(20))
                });
                let deadline = Instant::now() + Duration::from_secs(5);
                while started.load(Ordering::SeqCst) <= i {
                    assert!(Instant::now() < deadline, "{which}: worker never parked");
                    std::thread::sleep(Duration::from_millis(2));
                }
                h
            })
            .collect();
        // Two more sit in the queue, accepted but not yet dispatched.
        for _ in 0..2 {
            clients.push(std::thread::spawn(move || {
                fetch_with_timeout(addr, Method::Get, "/gate", &[], Duration::from_secs(20))
            }));
        }
        std::thread::sleep(Duration::from_millis(150));

        let readiness = Arc::clone(server.readiness());
        let shutdown_started = Instant::now();
        let shutdown_thread = std::thread::spawn(move || server.shutdown());
        // Readiness flips before the drain completes, while requests
        // are still parked.
        let deadline = Instant::now() + Duration::from_secs(5);
        while readiness.phase() != Phase::Draining {
            assert!(
                Instant::now() < deadline,
                "{which}: readiness never flipped to draining"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        release.store(true, Ordering::SeqCst);

        // Every accepted request — parked or queued — completes.
        for (i, h) in clients.into_iter().enumerate() {
            let resp = h
                .join()
                .unwrap()
                .unwrap_or_else(|e| panic!("{which}: accepted request {i} lost in drain: {e}"));
            assert_eq!(resp.status, StatusCode::OK, "{which}: request {i}");
            assert_eq!(resp.body, b"drained", "{which}: request {i} truncated");
        }
        shutdown_thread.join().unwrap();
        assert!(
            shutdown_started.elapsed() < Duration::from_secs(8),
            "{which}: drain exceeded its deadline"
        );
    }
}
