//! Graceful shutdown while requests are in flight: the drain must
//! complete without deadlock, and in-flight work must not crash the
//! process.

use staged_web::core::{
    App, BaselineServer, DurabilityConfig, PageOutcome, Phase, ServerConfig, StagedServer,
};
use staged_web::db::{CostModel, Database, DbValue};
use staged_web::http::{fetch_with_timeout, Method, Response, StatusCode};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[test]
fn shutdown_drains_in_flight_requests_without_deadlock() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    for i in 0..200 {
        db.execute(
            "INSERT INTO t (id, v) VALUES (?, ?)",
            &[DbValue::Int(i), DbValue::Int(i)],
        )
        .unwrap();
    }
    db.set_cost_model(CostModel::new(20_000, 0)); // scans ~4ms
    let app = App::builder()
        .route("/work", "work", |_r, db| {
            db.execute("SELECT COUNT(*) FROM t WHERE v >= 0", &[])?;
            Ok(PageOutcome::Body(Response::text("done")))
        })
        .build();
    let server = StagedServer::start(ServerConfig::small(), app, db).unwrap();
    let addr = server.addr();

    // Clients hammer the server with keep-alive loops until it goes away.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..10)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Errors are expected once shutdown begins; the only
                    // failure mode under test is a hang.
                    let _ =
                        fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(5));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = Instant::now();
    let shutdown_thread = std::thread::spawn(move || server.shutdown());
    // The drain must finish promptly (bounded by in-flight work, not by
    // the continuing client pressure).
    while !shutdown_thread.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "shutdown did not complete within 10s under load"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown_thread
        .join()
        .unwrap()
        .expect("clean shutdown under load");

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }

    // The port is no longer being served.
    let after = fetch_with_timeout(addr, Method::Get, "/work", &[], Duration::from_secs(1));
    assert!(after.is_err(), "server still answering after shutdown");
}

/// Drain-aware shutdown must lose **zero accepted requests**: every
/// request parked in a worker or sitting in a stage queue when shutdown
/// begins still receives its complete `200` — readiness flips to
/// draining first, so a load balancer stops routing new work.
#[test]
fn shutdown_loses_no_accepted_requests() {
    for which in ["baseline", "staged"] {
        let db = Arc::new(Database::new());
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&started);
        let r = Arc::clone(&release);
        let app = App::builder()
            .route("/gate", "gate", move |_req, _db| {
                s.fetch_add(1, Ordering::SeqCst);
                let wait = Instant::now();
                while !r.load(Ordering::SeqCst) {
                    assert!(
                        wait.elapsed() < Duration::from_secs(10),
                        "gate never released"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(PageOutcome::Body(Response::text("drained")))
            })
            .build();
        let config = ServerConfig::small();
        let workers = if which == "baseline" {
            config.baseline_workers
        } else {
            config.general_workers
        };
        let server = if which == "baseline" {
            BaselineServer::start(config, app, db).unwrap()
        } else {
            StagedServer::start(config, app, db).unwrap()
        };
        let addr = server.addr();
        assert_eq!(server.readiness().phase(), Phase::Ready, "{which}");

        // Park every dynamic worker, one at a time so none are shed.
        let mut clients: Vec<_> = (0..workers)
            .map(|i| {
                let h = std::thread::spawn(move || {
                    fetch_with_timeout(addr, Method::Get, "/gate", &[], Duration::from_secs(20))
                });
                let deadline = Instant::now() + Duration::from_secs(5);
                while started.load(Ordering::SeqCst) <= i {
                    assert!(Instant::now() < deadline, "{which}: worker never parked");
                    std::thread::sleep(Duration::from_millis(2));
                }
                h
            })
            .collect();
        // Two more sit in the queue, accepted but not yet dispatched.
        for _ in 0..2 {
            clients.push(std::thread::spawn(move || {
                fetch_with_timeout(addr, Method::Get, "/gate", &[], Duration::from_secs(20))
            }));
        }
        std::thread::sleep(Duration::from_millis(150));

        let readiness = Arc::clone(server.readiness());
        let shutdown_started = Instant::now();
        let shutdown_thread = std::thread::spawn(move || server.shutdown());
        // Readiness flips before the drain completes, while requests
        // are still parked.
        let deadline = Instant::now() + Duration::from_secs(5);
        while readiness.phase() != Phase::Draining {
            assert!(
                Instant::now() < deadline,
                "{which}: readiness never flipped to draining"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        release.store(true, Ordering::SeqCst);

        // Every accepted request — parked or queued — completes.
        for (i, h) in clients.into_iter().enumerate() {
            let resp = h
                .join()
                .unwrap()
                .unwrap_or_else(|e| panic!("{which}: accepted request {i} lost in drain: {e}"));
            assert_eq!(resp.status, StatusCode::OK, "{which}: request {i}");
            assert_eq!(resp.body, b"drained", "{which}: request {i} truncated");
        }
        shutdown_thread
            .join()
            .unwrap()
            .unwrap_or_else(|e| panic!("{which}: shutdown reported failure: {e}"));
        assert!(
            shutdown_started.elapsed() < Duration::from_secs(8),
            "{which}: drain exceeded its deadline"
        );
    }
}

/// Durable shutdown under write load: every `POST` the server
/// acknowledged with a `200` must be present after reopening the
/// durability directory — and a *graceful* stop checkpoints, so the
/// reopen replays **zero** WAL records.
#[test]
fn graceful_shutdown_loses_no_acknowledged_writes_and_never_replays() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("shutdown-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let db = Arc::new(Database::open(DurabilityConfig::new(&dir)).unwrap());
    db.execute("CREATE TABLE acked (id INT PRIMARY KEY)", &[])
        .unwrap();
    let app = App::builder()
        .route("/write", "write", |req, db| {
            let id: i64 = req.param("id").and_then(|v| v.parse().ok()).unwrap_or(-1);
            db.execute("INSERT INTO acked (id) VALUES (?)", &[DbValue::Int(id)])?;
            Ok(PageOutcome::Body(Response::text("ok")))
        })
        .build();
    let config = ServerConfig {
        durability: Some(DurabilityConfig::new(&dir)),
        ..ServerConfig::small()
    };
    let server = StagedServer::start(config, app, Arc::clone(&db)).unwrap();
    let addr = server.addr();

    // Writers insert unique ids and record each one the server acked
    // with a 200, right up until shutdown cuts them off.
    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let writers: Vec<_> = (0..4i64)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let mut id = w;
                while !stop.load(Ordering::Relaxed) {
                    let path = format!("/write?id={id}");
                    match fetch_with_timeout(addr, Method::Post, &path, &[], Duration::from_secs(5))
                    {
                        Ok(resp) if resp.status == StatusCode::OK => {
                            acked.lock().unwrap().push(id);
                        }
                        // Shed, draining, or connection torn down by
                        // shutdown: not acknowledged, no durability claim.
                        _ => {}
                    }
                    id += 4;
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(200));
    drop(db); // the server's Arc is the only one left
    server.shutdown().expect("graceful durable shutdown");
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    let recovered = Database::open(DurabilityConfig::new(&dir)).unwrap();
    let status = recovered.durability_status().unwrap();
    assert_eq!(
        status.replay_count, 0,
        "graceful shutdown checkpointed, so the reopen must not replay"
    );
    let acked = acked.lock().unwrap();
    assert!(!acked.is_empty(), "load never reached the server");
    for id in acked.iter() {
        let r = recovered
            .execute(
                "SELECT COUNT(*) FROM acked WHERE id = ?",
                &[DbValue::Int(*id)],
            )
            .unwrap();
        assert_eq!(
            r.single_int(),
            Some(1),
            "acknowledged write {id} lost across graceful shutdown"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
