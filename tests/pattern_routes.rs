//! Pattern routing end to end: captures reach handlers as parameters on
//! both servers.

use staged_web::core::{App, BaselineServer, PageOutcome, ServerConfig, StagedServer};
use staged_web::db::Database;
use staged_web::http::{fetch, Method, Response, StatusCode};
use std::sync::Arc;

fn app() -> App {
    App::builder()
        .route("/item/latest", "latest", |_r, _db| {
            Ok(PageOutcome::Body(Response::text("the latest item")))
        })
        .route_pattern("/item/:id", "item", |req, _db| {
            Ok(PageOutcome::Body(Response::text(format!(
                "item={}",
                req.param("id").unwrap_or("?")
            ))))
        })
        .route_pattern("/item/:id/reviews/:n", "review", |req, _db| {
            Ok(PageOutcome::Body(Response::text(format!(
                "item={} review={}",
                req.param("id").unwrap_or("?"),
                req.param("n").unwrap_or("?")
            ))))
        })
        .route_pattern("/docs/*path", "docs", |req, _db| {
            Ok(PageOutcome::Body(Response::text(format!(
                "doc path={}",
                req.param("path").unwrap_or("?")
            ))))
        })
        .build()
}

fn each_server(test: impl Fn(std::net::SocketAddr, &str)) {
    let baseline =
        BaselineServer::start(ServerConfig::small(), app(), Arc::new(Database::new())).unwrap();
    test(baseline.addr(), "baseline");
    baseline.shutdown().expect("clean shutdown");
    let staged =
        StagedServer::start(ServerConfig::small(), app(), Arc::new(Database::new())).unwrap();
    test(staged.addr(), "staged");
    staged.shutdown().expect("clean shutdown");
}

#[test]
fn captures_reach_handlers() {
    each_server(|addr, which| {
        let resp = fetch(addr, Method::Get, "/item/42", &[]).unwrap();
        assert_eq!(resp.text(), "item=42", "{which}");
        let resp = fetch(addr, Method::Get, "/item/9/reviews/2", &[]).unwrap();
        assert_eq!(resp.text(), "item=9 review=2", "{which}");
    });
}

#[test]
fn exact_routes_beat_patterns() {
    each_server(|addr, which| {
        let resp = fetch(addr, Method::Get, "/item/latest", &[]).unwrap();
        assert_eq!(resp.text(), "the latest item", "{which}");
    });
}

#[test]
fn wildcard_handler_is_dynamic_despite_extensions() {
    each_server(|addr, which| {
        // Note: a path with a file extension classifies as *static* at
        // the header-parsing stage (the paper's rule), so wildcard
        // pattern handlers see extension-less paths only.
        let resp = fetch(addr, Method::Get, "/docs/guide/intro", &[]).unwrap();
        assert_eq!(resp.text(), "doc path=guide/intro", "{which}");
    });
}

#[test]
fn query_params_and_captures_coexist() {
    each_server(|addr, which| {
        let resp = fetch(addr, Method::Get, "/item/5?id=override&extra=1", &[]).unwrap();
        // Query parameters come first in the list, so they win lookups.
        assert_eq!(resp.text(), "item=override", "{which}");
    });
}

#[test]
fn unmatched_patterns_404() {
    each_server(|addr, which| {
        let resp = fetch(addr, Method::Get, "/item/5/extra/深", &[]).unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "{which}");
    });
}
