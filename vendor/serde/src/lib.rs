//! Offline stand-in for `serde`'s derive surface.
//!
//! The workspace only *decorates* report/metrics types with
//! `#[derive(Serialize, Deserialize)]` — nothing serialises them (there
//! is no serde_json in the tree). These no-op derives keep those
//! annotations compiling without crates.io access; swapping the real
//! serde back in is a one-line Cargo change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
