//! Offline stand-in for the `proptest` API surface this workspace
//! uses, vendored because the build image has no crates.io access.
//!
//! Supported: the `proptest!` test macro with `#![proptest_config]`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! strategies for integer ranges, tuples, `Just`, `any::<T>()`,
//! `prop_oneof!`, `.prop_map`, `collection::vec`, `sample::select`,
//! and a regex-subset string strategy (char classes, `.`, `{m,n}`,
//! `*`, `+`, `?`).
//!
//! Unsupported (by design, to stay dependency-free): shrinking,
//! failure persistence, and full regex syntax. Inputs are drawn from a
//! generator seeded by the test's module path, so runs are
//! deterministic per test.

#![forbid(unsafe_code)]
// The boxed-closure plumbing mirrors the real crate's signatures.
#![allow(clippy::type_complexity)]

pub mod test_runner {
    //! Case execution: config, RNG, and the error type the assertion
    //! macros produce.

    use std::fmt;

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator state (SplitMix64 over a counter).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// An RNG seeded from the test's fully-qualified name, so each
    /// property sees a distinct but reproducible input sequence.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice between boxed alternative strategies — the
    /// engine behind `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from pre-boxed arms (see [`Union::case`]).
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Boxes one strategy as a union arm.
        pub fn case<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Fn(&mut TestRng) -> V> {
            Box::new(move |rng| s.generate(rng))
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len());
            (self.arms[arm])(rng)
        }
    }

    /// Types with a canonical strategy, for [`any`].
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy producing unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    // ---- regex-subset string strategies -------------------------------

    /// One pattern element: a character set with a repetition count.
    struct Elem {
        set: CharSet,
        min: usize,
        max: usize,
    }

    enum CharSet {
        /// `.` — any char except newline.
        Any,
        OneOf(Vec<char>),
        NoneOf(Vec<char>),
    }

    /// `&str` patterns are regex-subset string strategies, like
    /// proptest's. Supported: literals, `.`, `[...]` classes (ranges,
    /// negation), and `{m,n}` / `{m}` / `*` / `+` / `?` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let elems = parse_pattern(self);
            let mut out = String::new();
            for elem in &elems {
                let n = elem.min + rng.below(elem.max - elem.min + 1);
                for _ in 0..n {
                    out.push(elem.set.pick(rng));
                }
            }
            out
        }
    }

    impl CharSet {
        fn pick(&self, rng: &mut TestRng) -> char {
            // A sprinkle of non-ASCII keeps `.`-style patterns honest
            // about multi-byte handling.
            const EXOTIC: [char; 6] = ['\t', 'é', 'ß', 'λ', '火', '🦀'];
            match self {
                CharSet::Any => {
                    if rng.below(16) == 0 {
                        EXOTIC[rng.below(EXOTIC.len())]
                    } else {
                        char::from(0x20 + rng.below(0x5f) as u8)
                    }
                }
                CharSet::OneOf(chars) => chars[rng.below(chars.len())],
                CharSet::NoneOf(excluded) => loop {
                    let c = char::from(0x20 + rng.below(0x5f) as u8);
                    if !excluded.contains(&c) {
                        return c;
                    }
                },
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Elem> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elems = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Any
                }
                '[' => {
                    i += 1;
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut members = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            let hi = chars[i + 2];
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            for c in lo..=hi {
                                members.push(c);
                            }
                            i += 3;
                        } else {
                            members.push(lo);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    if negated {
                        CharSet::NoneOf(members)
                    } else {
                        CharSet::OneOf(members)
                    }
                }
                '\\' => {
                    // Escaped literal.
                    i += 1;
                    let c = *chars.get(i).expect("dangling escape");
                    i += 1;
                    CharSet::OneOf(vec![c])
                }
                c => {
                    i += 1;
                    CharSet::OneOf(vec![c])
                }
            };
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                Some('+') => {
                    i += 1;
                    (1, 16)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    i += 1;
                    let mut lo = String::new();
                    while chars[i].is_ascii_digit() {
                        lo.push(chars[i]);
                        i += 1;
                    }
                    let lo: usize = lo.parse().expect("bad repetition");
                    let hi = if chars[i] == ',' {
                        i += 1;
                        let mut hi = String::new();
                        while chars[i].is_ascii_digit() {
                            hi.push(chars[i]);
                            i += 1;
                        }
                        hi.parse().expect("bad repetition")
                    } else {
                        lo
                    };
                    assert_eq!(chars[i], '}', "unterminated repetition in {pattern:?}");
                    i += 1;
                    (lo, hi)
                }
                _ => (1, 1),
            };
            elems.push(Elem { set, min, max });
        }
        elems
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly picks one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs in scope.

    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs `Config::cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e,
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r,
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Skips the rest of the case unless `cond` holds (counts as a pass —
/// this stub does not re-draw rejected cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::case($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn string_pattern_subset() {
        let mut rng = rng_for("string_pattern_subset");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = "/[ -~]{0,10}".generate(&mut rng);
            assert!(t.starts_with('/'));
            assert!(t.chars().count() <= 11);
            assert!(t.chars().skip(1).all(|c| (' '..='~').contains(&c)));

            let n = "[^{}%#]*".generate(&mut rng);
            assert!(!n.contains(['{', '}', '%', '#']), "{n:?}");
        }
    }

    #[test]
    fn ranges_tuples_and_oneof_generate_in_bounds() {
        let mut rng = rng_for("ranges_tuples");
        let strat = prop_oneof![(0i64..10).prop_map(Some), Just(None)];
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
            let (a, b) = (1usize..4, "[0-9]{2}").generate(&mut rng);
            assert!((1..4).contains(&a));
            assert_eq!(b.len(), 2);
        }
        assert!(some > 20 && none > 20, "both arms hit: {some}/{none}");
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = rng_for("collection_vec");
        for _ in 0..100 {
            let v = crate::collection::vec(0i64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, asserts work, cases run.
        #[test]
        fn macro_smoke(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, 100);
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
