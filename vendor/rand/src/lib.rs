//! A stand-in for the `rand` API surface this workspace uses
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`/`gen`),
//! vendored because the build image has no crates.io access.
//!
//! The generator is a SplitMix64 counter — statistically fine for
//! workload synthesis and test-data population, **not** cryptographic.
//! Sequences differ from upstream `rand`'s `StdRng`, so seeds
//! reproduce runs against this crate, not against upstream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the workspace only constructs
/// it via [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's deterministic RNG: SplitMix64 over a counter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Types a generator can produce directly via [`Rng::gen`].
pub trait FromRandom {
    /// Derives a value from one raw 64-bit draw.
    fn from_random(raw: u64) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types with a uniform sampler — the element type of
/// [`Rng::gen_range`] ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = f64::from_random(rng.next_u64());
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Blanket impls over
/// [`SampleUniform`] (matching upstream rand's shape) keep type
/// inference working when the result type is pinned by the use site,
/// e.g. `slice[rng.gen_range(0..n)]`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// The draw interface: `gen_range` over int/float ranges plus raw
/// `gen` for [`FromRandom`] types.
pub trait Rng {
    /// Produces the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a value of type `T` from one raw draw.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self.next_u64())
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::from_random(self.next_u64()) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_produces_all_u8_eventually() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 256];
        for _ in 0..40_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5i64..5);
    }
}
