//! A drop-in stand-in for the `parking_lot` API surface this workspace
//! uses, implemented on `std::sync`. Vendored because the build image
//! has no crates.io access; the semantics match what the workspace
//! relies on:
//!
//! - `Mutex`/`RwLock` with **non-poisoning** locks (a panicked holder
//!   does not wedge later callers, matching parking_lot),
//! - `const fn new` so locks can live in `static`s,
//! - `Condvar::wait`/`wait_for` taking `&mut MutexGuard` (parking_lot's
//!   signature, adapted onto std's guard-consuming wait).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (std-backed, non-poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex; `const` so it can initialise a `static`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike
    /// `std::sync::Mutex`, a poisoned lock is entered anyway —
    /// parking_lot has no poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
            lock: &self.0,
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.0.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            lock: &self.0,
        })
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar`] can take it out and put a fresh one back (std's wait
/// consumes the guard; parking_lot's mutates it in place), plus a
/// backref to the lock so [`MutexGuard::unlocked`] can re-acquire.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a std::sync::Mutex<T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily unlocks the mutex, runs `f`, then re-acquires it
    /// before returning (parking_lot's `MutexGuard::unlocked`). The
    /// guard is valid again once this returns.
    pub fn unlocked<R>(&mut self, f: impl FnOnce() -> R) -> R {
        drop(self.inner.take());
        let r = f();
        self.inner = Some(self.lock.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A reader-writer lock (std-backed, non-poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock; `const` so it can initialise a `static`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable whose `wait` mutates the guard in place
/// (parking_lot's signature).
#[derive(Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// mutex behind `guard`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`wait`](Condvar::wait) but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter; returns whether a thread was woken (always
    /// reported `true` here — std does not expose the count).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters; returns the number woken (std does not expose
    /// the count, so this reports `0`).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Builds a result directly — used by wrappers (e.g. a model-mode
    /// condvar) that decide the timeout outcome themselves.
    pub const fn from_timed_out(timed_out: bool) -> Self {
        WaitTimeoutResult { timed_out }
    }

    /// `true` if the wait ended by timing out rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn guard_unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = Arc::clone(&m);
        g.unlocked(|| {
            // Another thread can take the lock while we are "unlocked".
            std::thread::spawn(move || *m2.lock() += 5).join().unwrap();
        });
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
