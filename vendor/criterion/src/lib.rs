//! Offline stand-in for the `criterion` surface the workspace's
//! benches use: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`, `black_box`, `criterion_group!`/`criterion_main!`.
//!
//! It is a plain timing harness — warm up, run a fixed wall-clock
//! window, print mean ns/iter — with none of criterion's statistics.
//! Numbers are indicative, not rigorous; the real crate can be swapped
//! back in with a one-line Cargo change when registry access exists.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this stub exists so benches compile and give
        // ballpark numbers, not publication-grade statistics.
        Criterion {
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints mean ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement: self.criterion.measurement,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("  {id:<40} {ns:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("  {id:<40} (no measurement)"),
        }
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Runs the measured closure.
pub struct Bencher {
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Calls `routine` repeatedly for the measurement window and
    /// records mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: fills caches and gives a per-iter estimate.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < self.measurement / 10 {
            black_box(routine());
            warm_iters += 1;
        }

        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
            // Re-check the clock only every few iterations for very
            // fast routines? Not needed: Instant::now is ~20ns, fine
            // for a ballpark harness.
        }
        let _ = warm_iters;
        self.report = Some((iters, start.elapsed()));
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bencher_runs_routine_and_reports() {
        let calls = AtomicU64::new(0);
        let mut criterion = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = criterion.benchmark_group("test");
        group.bench_function("count_calls", |b| {
            b.iter(|| calls.fetch_add(1, Ordering::Relaxed))
        });
        group.finish();
        assert!(calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
